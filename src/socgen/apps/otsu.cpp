#include "socgen/apps/otsu.hpp"

#include "socgen/common/error.hpp"

namespace socgen::apps {

// ---------------------------------------------------------------------------
// Software references

std::uint8_t grayFromPacked(std::uint32_t packed) {
    const std::uint32_t r = (packed >> 16) & 0xFF;
    const std::uint32_t g = (packed >> 8) & 0xFF;
    const std::uint32_t b = packed & 0xFF;
    return static_cast<std::uint8_t>((r * 77 + g * 150 + b * 29) >> 8);
}

GrayImage grayScaleRef(const RgbImage& image) {
    GrayImage gray(image.width(), image.height());
    for (unsigned y = 0; y < image.height(); ++y) {
        for (unsigned x = 0; x < image.width(); ++x) {
            gray.set(x, y, grayFromPacked(image.packedAt(x, y)));
        }
    }
    return gray;
}

std::array<std::uint32_t, 256> histogramRef(const GrayImage& image) {
    std::array<std::uint32_t, 256> hist{};
    for (std::uint8_t px : image.pixels()) {
        ++hist[px];
    }
    return hist;
}

std::uint32_t otsuThresholdRef(const std::array<std::uint32_t, 256>& hist,
                               std::uint64_t totalPixels) {
    // Integer Otsu, expressed exactly as the hardware kernel computes it
    // (guarded divisions, predicated updates) so SW and HW agree bit for
    // bit. Valid for totalPixels < 2^24.
    std::uint64_t sumAll = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        sumAll += i * hist[i];
    }
    std::uint64_t wB = 0;
    std::uint64_t sumB = 0;
    std::uint64_t best = 0;
    std::uint32_t threshold = 0;
    for (std::uint64_t t = 0; t < 256; ++t) {
        const std::uint64_t h = hist[t];
        wB += h;
        sumB += t * h;
        const std::uint64_t wF = totalPixels - wB;
        const bool valid = wB != 0 && wF != 0;
        const std::uint64_t mB = sumB / (wB == 0 ? 1 : wB);
        const std::uint64_t mF = (sumAll - sumB) / (wF == 0 ? 1 : wF);
        const std::uint64_t d = mB > mF ? mB - mF : mF - mB;
        const std::uint64_t between = wB * wF * d * d;
        if (valid && between > best) {
            best = between;
            threshold = static_cast<std::uint32_t>(t);
        }
    }
    return threshold;
}

GrayImage binarizeRef(const GrayImage& image, std::uint32_t threshold) {
    GrayImage out(image.width(), image.height());
    for (std::size_t i = 0; i < image.pixels().size(); ++i) {
        out.pixels()[i] = image.pixels()[i] > threshold ? 255 : 0;
    }
    return out;
}

GrayImage otsuFilterRef(const RgbImage& image) {
    const GrayImage gray = grayScaleRef(image);
    const auto hist = histogramRef(gray);
    const std::uint32_t threshold = otsuThresholdRef(hist, gray.pixelCount());
    return binarizeRef(gray, threshold);
}

// ---------------------------------------------------------------------------
// HLS kernels

hls::Kernel makeGrayScaleKernel(std::int64_t pixelCount) {
    using namespace hls;
    KernelBuilder kb("grayScale");
    const PortId in = kb.streamIn("imageIn", 32);
    const PortId outCh = kb.streamOut("imageOutCH", 8);
    const PortId outSeg = kb.streamOut("imageOutSEG", 8);
    const VarId i = kb.var("i", 32);
    const VarId px = kb.var("px", 32);
    const VarId r = kb.var("r", 8);
    const VarId g = kb.var("g", 8);
    const VarId b = kb.var("b", 8);
    const VarId gray = kb.var("gray", 8);

    kb.forLoop(i, kb.c(pixelCount));
    kb.assign(px, kb.read(in));
    kb.assign(r, kb.bin(BinOp::And, kb.shr(kb.v(px), kb.c(16)), kb.c(255)));
    kb.assign(g, kb.bin(BinOp::And, kb.shr(kb.v(px), kb.c(8)), kb.c(255)));
    kb.assign(b, kb.bin(BinOp::And, kb.v(px), kb.c(255)));
    kb.assign(gray, kb.shr(kb.add(kb.add(kb.mul(kb.v(r), kb.c(77)),
                                         kb.mul(kb.v(g), kb.c(150))),
                                  kb.mul(kb.v(b), kb.c(29))),
                           kb.c(8)));
    kb.write(outCh, kb.v(gray));
    kb.write(outSeg, kb.v(gray));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeHistogramKernel(std::int64_t pixelCount) {
    using namespace hls;
    KernelBuilder kb("computeHistogram");
    const PortId in = kb.streamIn("grayScaleImage", 8);
    const PortId out = kb.streamOut("histogram", 32);
    const ArrayId hist = kb.array("hist", 256, 32);
    const VarId i = kb.var("i", 32);
    const VarId px = kb.var("px", 8);

    // Clear the table (BRAM contents persist across invocations).
    kb.forLoop(i, kb.c(256));
    kb.arrayStore(hist, kb.v(i), kb.c(0));
    kb.endLoop();

    kb.forLoop(i, kb.c(pixelCount));
    kb.assign(px, kb.read(in));
    kb.arrayStore(hist, kb.v(px), kb.add(kb.load(hist, kb.v(px)), kb.c(1)));
    kb.endLoop();

    kb.forLoop(i, kb.c(256));
    kb.write(out, kb.load(hist, kb.v(i)));
    kb.endLoop();
    return kb.build();
}

hls::Kernel makeOtsuKernel(std::int64_t pixelCount) {
    using namespace hls;
    KernelBuilder kb("halfProbability");
    const PortId in = kb.streamIn("histogram", 32);
    const PortId out = kb.streamOut("probability", 32);
    const ArrayId hist = kb.array("hist", 256, 32);
    const VarId i = kb.var("i", 32);
    const VarId h = kb.var("h", 32);
    const VarId sumAll = kb.var("sumAll", 64);
    const VarId wB = kb.var("wB", 32);
    const VarId wF = kb.var("wF", 32);
    const VarId sumB = kb.var("sumB", 64);
    const VarId mB = kb.var("mB", 64);
    const VarId mF = kb.var("mF", 64);
    const VarId d = kb.var("d", 32);
    const VarId between = kb.var("between", 64);
    const VarId best = kb.var("best", 64);
    const VarId thr = kb.var("thr", 32);
    const VarId valid = kb.var("valid", 1);
    const VarId better = kb.var("better", 1);

    // Pass 1: capture the histogram and the total intensity sum.
    kb.assign(sumAll, kb.c(0));
    kb.forLoop(i, kb.c(256));
    kb.assign(h, kb.read(in));
    kb.arrayStore(hist, kb.v(i), kb.v(h));
    kb.assign(sumAll, kb.add(kb.v(sumAll), kb.mul(kb.v(i), kb.v(h))));
    kb.endLoop();

    // Pass 2: maximise the between-class variance.
    kb.assign(wB, kb.c(0));
    kb.assign(sumB, kb.c(0));
    kb.assign(best, kb.c(0));
    kb.assign(thr, kb.c(0));
    kb.forLoop(i, kb.c(256));
    kb.assign(h, kb.load(hist, kb.v(i)));
    kb.assign(wB, kb.add(kb.v(wB), kb.v(h)));
    kb.assign(sumB, kb.add(kb.v(sumB), kb.mul(kb.v(i), kb.v(h))));
    kb.assign(wF, kb.sub(kb.c(pixelCount), kb.v(wB)));
    kb.assign(valid, kb.bin(BinOp::And, kb.ne(kb.v(wB), kb.c(0)),
                            kb.ne(kb.v(wF), kb.c(0))));
    kb.assign(mB, kb.div(kb.v(sumB), kb.bin(BinOp::Max, kb.v(wB), kb.c(1))));
    kb.assign(mF, kb.div(kb.sub(kb.v(sumAll), kb.v(sumB)),
                         kb.bin(BinOp::Max, kb.v(wF), kb.c(1))));
    kb.assign(d, kb.select(kb.gt(kb.v(mB), kb.v(mF)), kb.sub(kb.v(mB), kb.v(mF)),
                           kb.sub(kb.v(mF), kb.v(mB))));
    kb.assign(between,
              kb.mul(kb.mul(kb.mul(kb.v(wB), kb.v(wF)), kb.v(d)), kb.v(d)));
    kb.assign(better, kb.bin(BinOp::And, kb.v(valid),
                             kb.gt(kb.v(between), kb.v(best))));
    kb.assign(best, kb.select(kb.v(better), kb.v(between), kb.v(best)));
    kb.assign(thr, kb.select(kb.v(better), kb.v(i), kb.v(thr)));
    kb.endLoop();

    kb.write(out, kb.v(thr));
    return kb.build();
}

hls::Kernel makeBinarizationKernel(std::int64_t pixelCount) {
    using namespace hls;
    KernelBuilder kb("segment");
    const PortId gray = kb.streamIn("grayScaleImage", 8);
    const PortId thresh = kb.streamIn("otsuThreshold", 32);
    const PortId out = kb.streamOut("segmentedGrayImage", 8);
    const VarId t = kb.var("t", 32);
    const VarId i = kb.var("i", 32);
    const VarId g = kb.var("g", 8);

    kb.assign(t, kb.read(thresh));
    kb.forLoop(i, kb.c(pixelCount));
    kb.assign(g, kb.read(gray));
    kb.write(out, kb.select(kb.gt(kb.v(g), kb.v(t)), kb.c(255), kb.c(0)));
    kb.endLoop();
    return kb.build();
}

// ---------------------------------------------------------------------------
// Directives

hls::Directives grayScaleDirectives() {
    hls::Directives d;
    d.maxMulUnits = 1;  // three small constant multiplies share one DSP
    return d;
}

hls::Directives histogramDirectives() {
    hls::Directives d;
    return d;
}

hls::Directives otsuDirectives() {
    hls::Directives d;
    d.maxMulUnits = 1;  // the variance products share one 32-bit multiplier
    d.maxDivUnits = 1;  // one iterative divider for both mean divisions
    return d;
}

hls::Directives binarizationDirectives() {
    hls::Directives d;
    return d;
}

// ---------------------------------------------------------------------------
// Software cycle models (ARM Cortex-A9 expressed in PL-clock cycles)

std::uint64_t grayScaleSwCycles(std::uint64_t pixels) {
    return 18 * pixels + 400;  // load, unpack, 3 MACs, shift, store
}

std::uint64_t histogramSwCycles(std::uint64_t pixels) {
    return 10 * pixels + 300 + 256;  // load, increment (cache-unfriendly)
}

std::uint64_t otsuSwCycles(std::uint64_t pixels) {
    (void)pixels;  // operates on the 256-bin histogram only
    return 256 * 58 + 600;  // two divisions + products per bin
}

std::uint64_t binarizationSwCycles(std::uint64_t pixels) {
    return 9 * pixels + 300;
}

std::uint64_t imageIoSwCycles(std::uint64_t pixels) {
    return 2 * pixels + 1000;  // file/SD transfer amortised
}

} // namespace socgen::apps
