#pragma once

#include "socgen/apps/image.hpp"
#include "socgen/hls/directives.hpp"
#include "socgen/hls/ir.hpp"

#include <array>
#include <cstdint>

namespace socgen::apps {

/// -- Software reference implementations of the case-study tasks -----------
///
/// These are the "original source code" the GPP runs (paper Section VI-A)
/// and the ground truth the hardware pipelines are verified against. All
/// arithmetic is integer/unsigned and matches the kernel IR bit for bit,
/// so a generated system's output image is expected to be identical.

/// grayScale: packed 0x00RRGGBB -> 8-bit luma: (77 r + 150 g + 29 b) >> 8.
[[nodiscard]] std::uint8_t grayFromPacked(std::uint32_t packed);
[[nodiscard]] GrayImage grayScaleRef(const RgbImage& image);

/// histogram: 256-bin intensity histogram.
[[nodiscard]] std::array<std::uint32_t, 256> histogramRef(const GrayImage& image);

/// otsuMethod: exhaustive between-class-variance maximisation (integer
/// form; ties resolved toward the lower threshold).
[[nodiscard]] std::uint32_t otsuThresholdRef(const std::array<std::uint32_t, 256>& hist,
                                             std::uint64_t totalPixels);

/// binarization: g > threshold ? 255 : 0.
[[nodiscard]] GrayImage binarizeRef(const GrayImage& image, std::uint32_t threshold);

/// Full software pipeline (Figure 7: original -> filtered).
[[nodiscard]] GrayImage otsuFilterRef(const RgbImage& image);

/// -- HLS kernels of the four hardware tasks (paper Table I columns) --------
///
/// Each kernel is the IR equivalent of the Vivado-HLS-synthesizable C the
/// paper supplies per node. Image dimensions are compile-time constants
/// of the kernel (exact trip counts), as in the case study.

/// Port names follow the Arch4 listing of the paper (Listing 4):
/// grayScale: is imageIn, is imageOutCH, is imageOutSEG.
[[nodiscard]] hls::Kernel makeGrayScaleKernel(std::int64_t pixelCount);

/// computeHistogram: is grayScaleImage, is histogram.
[[nodiscard]] hls::Kernel makeHistogramKernel(std::int64_t pixelCount);

/// halfProbability (the otsuMethod core): is histogram, is probability.
[[nodiscard]] hls::Kernel makeOtsuKernel(std::int64_t pixelCount);

/// segment (the binarization core): is grayScaleImage, is otsuThreshold,
/// is segmentedGrayImage.
[[nodiscard]] hls::Kernel makeBinarizationKernel(std::int64_t pixelCount);

/// Per-kernel HLS directives calibrated for the case study (DSP unit
/// limits matching Table II's DSP column, trip-count hints).
[[nodiscard]] hls::Directives grayScaleDirectives();
[[nodiscard]] hls::Directives histogramDirectives();
[[nodiscard]] hls::Directives otsuDirectives();
[[nodiscard]] hls::Directives binarizationDirectives();

/// -- Software task cycle models (ARM Cortex-A9 @ PL clock) -----------------
///
/// Used by the PS model when a task stays in software and by the DSE cost
/// function. Derived from per-pixel operation counts.
[[nodiscard]] std::uint64_t grayScaleSwCycles(std::uint64_t pixels);
[[nodiscard]] std::uint64_t histogramSwCycles(std::uint64_t pixels);
[[nodiscard]] std::uint64_t otsuSwCycles(std::uint64_t pixels);
[[nodiscard]] std::uint64_t binarizationSwCycles(std::uint64_t pixels);
[[nodiscard]] std::uint64_t imageIoSwCycles(std::uint64_t pixels);

} // namespace socgen::apps
