#include "socgen/rtl/sim_batch.hpp"

#include "socgen/common/strings.hpp"
#include "socgen/rtl/netlist_sim.hpp"

#include <algorithm>

namespace socgen::rtl {

void SimBatch::setInputAll(std::string_view port, std::uint64_t value) {
    for (unsigned lane = 0; lane < laneCount(); ++lane) {
        setInput(port, lane, value);
    }
}

// ---------------------------------------------------------------------------
// SimBatchLane
// ---------------------------------------------------------------------------

SimBatchLane::SimBatchLane(SimBatch& batch, unsigned lane) : batch_(batch), lane_(lane) {
    require(lane < batch.laneCount(), "batch lane out of range");
}

void SimBatchLane::setInput(std::string_view port, std::uint64_t value) {
    batch_.setInput(port, lane_, value);
}

void SimBatchLane::evaluate() {
    throw SimulationError("batch lane view cannot advance one lane; step the SimBatch");
}

void SimBatchLane::step() {
    throw SimulationError("batch lane view cannot advance one lane; step the SimBatch");
}

std::uint64_t SimBatchLane::output(std::string_view port) const {
    return batch_.output(port, lane_);
}

std::uint64_t SimBatchLane::netValue(NetId id) const { return batch_.netValue(id, lane_); }

std::vector<std::uint64_t> SimBatchLane::memoryContents(CellId id) const {
    return batch_.memoryContents(id, lane_);
}

void SimBatchLane::reset() {
    throw SimulationError("batch lane view cannot reset one lane; reset the SimBatch");
}

std::uint64_t SimBatchLane::cycleCount() const { return batch_.cycleCount(); }

// ---------------------------------------------------------------------------
// BatchCompiledSim
// ---------------------------------------------------------------------------

namespace {

[[nodiscard]] std::uint64_t allLanesMask(unsigned lanes) {
    return lanes >= 64 ? ~0ULL : (1ULL << lanes) - 1ULL;
}

} // namespace

BatchCompiledSim::BatchCompiledSim(const Netlist& netlist, const SimConfig& config)
    : netlist_(netlist), prog_(compileProgram(netlist)), lanes_(resolveSimLanes(config.batchLanes)),
      threads_(resolveSimThreads(config.threads)),
      grain_(std::max(1u, config.parallelGrainOps)) {
    if (threads_ > 1) {
        pool_ = std::make_unique<BandPool>(threads_);
        chunkChanged_.resize(static_cast<std::size_t>(threads_) * 2);
        chunkOps_.assign(chunkChanged_.size(), 0);
    }
    vals_.assign(prog_.netCount * lanes_, 0);
    state_.assign(prog_.seqOps.size() * lanes_, 0);
    mems_.reserve(prog_.memDepths.size());
    for (const std::size_t depth : prog_.memDepths) {
        mems_.emplace_back(depth * lanes_, 0);
    }
    pending_.assign(prog_.ops.size(), 0);
    worklist_.assign(prog_.levels.size(), {});
    seqDirtyFlag_.assign(prog_.seqOps.size(), 0);
    laneActive_ = allLanesMask(lanes_);
    faults_.resize(lanes_);
    markAllOpsDirty();
}

void BatchCompiledSim::markAllOpsDirty() {
    for (std::uint32_t idx = 0; idx < prog_.ops.size(); ++idx) {
        pending_[idx] = 1;
        worklist_[prog_.opLevel[idx]].push_back(idx);
    }
}

void BatchCompiledSim::markConsumers(std::uint32_t net) {
    const std::uint32_t first = prog_.consumerFirst[net];
    const std::uint32_t last = prog_.consumerFirst[net + 1];
    for (std::uint32_t i = first; i < last; ++i) {
        const std::uint32_t op = prog_.consumers[i];
        if (pending_[op] == 0) {
            pending_[op] = 1;
            worklist_[prog_.opLevel[op]].push_back(op);
        }
    }
}

bool BatchCompiledSim::evalOpLanes(const CompiledOp& op) {
    // The switch is hoisted outside the lane loop so each case body is a
    // tight word-op loop over contiguous lane-strided slots — the form
    // the auto-vectorizer handles. `diff` accumulates XOR of old and new
    // words across lanes, so change detection costs no branches.
    std::uint64_t* d = &vals_[static_cast<std::size_t>(op.dst) * lanes_];
    const std::uint64_t* a = &vals_[static_cast<std::size_t>(op.a) * lanes_];
    const std::uint64_t* b = &vals_[static_cast<std::size_t>(op.b) * lanes_];
    const std::uint64_t mask = op.mask;
    const unsigned lanes = lanes_;
    std::uint64_t diff = 0;
    switch (op.code) {
    case CellKind::Const:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = op.imm;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Not:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = ~a[l] & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::And:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] & b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Or:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] | b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Xor:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] ^ b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Add:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] + b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Sub:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] - b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Mul:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] * b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Div:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (b[l] == 0 ? ~0ULL : a[l] / b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Mod:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (b[l] == 0 ? a[l] : a[l] % b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Shl:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (b[l] >= 64 ? 0 : a[l] << b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Shr:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (b[l] >= 64 ? 0 : a[l] >> b[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Eq:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] == b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Ne:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] != b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Lt:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] < b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Le:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] <= b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Gt:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] > b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Ge:
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] >= b[l] ? 1ULL : 0ULL) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    case CellKind::Mux: {
        const std::uint64_t* c = &vals_[static_cast<std::size_t>(op.c) * lanes_];
        for (unsigned l = 0; l < lanes; ++l) {
            const std::uint64_t v = (a[l] == 0 ? b[l] : c[l]) & mask;
            diff |= d[l] ^ v;
            d[l] = v;
        }
        break;
    }
    default:
        throw SimulationError("compiled-sim: evalOpLanes on sequential op");
    }
    return diff != 0;
}

void BatchCompiledSim::publishSeqOutputs() {
    if (seqDirty_.empty()) {
        return;
    }
    for (const std::uint32_t idx : seqDirty_) {
        seqDirtyFlag_[idx] = 0;
        const CompiledSeqOp& op = prog_.seqOps[idx];
        std::uint64_t* out = &vals_[static_cast<std::size_t>(op.out) * lanes_];
        const std::uint64_t* st = &state_[static_cast<std::size_t>(idx) * lanes_];
        bool changed = false;
        for (unsigned l = 0; l < lanes_; ++l) {
            // Faulted lanes stay frozen at their pre-fault net values,
            // matching a scalar run halted by the throw.
            if (((laneActive_ >> l) & 1) == 0) {
                continue;
            }
            const std::uint64_t v = st[l] & op.mask;
            if (out[l] != v) {
                out[l] = v;
                changed = true;
            }
        }
        if (changed) {
            markConsumers(op.out);
        }
    }
    seqDirty_.clear();
}

void BatchCompiledSim::evaluateBandParallel(std::vector<std::uint32_t>& bucket) {
    // Same chunked-band scheme as the scalar engine: same-level ops are
    // independent, so workers write disjoint lane slots; consumer marking
    // is deferred past the fence and replayed in chunk order.
    const std::size_t size = bucket.size();
    const std::size_t maxChunks = chunkChanged_.size();
    const std::size_t chunkSize = std::max<std::size_t>(1, (size + maxChunks - 1) / maxChunks);
    const auto chunkCount = static_cast<std::uint32_t>((size + chunkSize - 1) / chunkSize);
    pool_->run(chunkCount, [&](std::uint32_t chunk) {
        const std::size_t first = chunk * chunkSize;
        const std::size_t last = std::min(size, first + chunkSize);
        auto& changed = chunkChanged_[chunk];
        std::uint64_t evaluated = 0;
        for (std::size_t i = first; i < last; ++i) {
            const std::uint32_t idx = bucket[i];
            pending_[idx] = 0;
            const CompiledOp& op = prog_.ops[idx];
            ++evaluated;
            if (evalOpLanes(op)) {
                changed.push_back(op.dst);
            }
        }
        chunkOps_[chunk] = evaluated;
    });
    for (std::uint32_t chunk = 0; chunk < chunkCount; ++chunk) {
        opsEvaluated_ += chunkOps_[chunk];
        chunkOps_[chunk] = 0;
        for (const std::uint32_t dst : chunkChanged_[chunk]) {
            markConsumers(dst);
        }
        chunkChanged_[chunk].clear();
    }
}

void BatchCompiledSim::evaluate() {
    publishSeqOutputs();
    for (std::size_t level = 0; level < worklist_.size(); ++level) {
        auto& bucket = worklist_[level];
        if (pool_ != nullptr && bucket.size() >= grain_) {
            evaluateBandParallel(bucket);
        } else {
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                const std::uint32_t idx = bucket[i];
                pending_[idx] = 0;
                const CompiledOp& op = prog_.ops[idx];
                ++opsEvaluated_;
                if (evalOpLanes(op)) {
                    markConsumers(op.dst);
                }
            }
        }
        bucket.clear();
    }
}

void BatchCompiledSim::step() {
    evaluate();
    for (std::uint32_t idx = 0; idx < prog_.seqOps.size(); ++idx) {
        const CompiledSeqOp& op = prog_.seqOps[idx];
        std::uint64_t* st = &state_[static_cast<std::size_t>(idx) * lanes_];
        bool changed = false;
        switch (op.kind) {
        case CompiledSeqKind::RegAlways: {
            const std::uint64_t* d = &vals_[static_cast<std::size_t>(op.d) * lanes_];
            for (unsigned l = 0; l < lanes_; ++l) {
                if (((laneActive_ >> l) & 1) == 0) {
                    continue;
                }
                const std::uint64_t next = d[l] & op.mask;
                if (st[l] != next) {
                    st[l] = next;
                    changed = true;
                }
            }
            break;
        }
        case CompiledSeqKind::RegEnable: {
            const std::uint64_t* d = &vals_[static_cast<std::size_t>(op.d) * lanes_];
            const std::uint64_t* en = &vals_[static_cast<std::size_t>(op.en) * lanes_];
            for (unsigned l = 0; l < lanes_; ++l) {
                if (((laneActive_ >> l) & 1) == 0 || en[l] == 0) {
                    continue;
                }
                const std::uint64_t next = d[l] & op.mask;
                if (st[l] != next) {
                    st[l] = next;
                    changed = true;
                }
            }
            break;
        }
        case CompiledSeqKind::Bram: {
            auto& mem = mems_[op.mem];
            const std::size_t depth = prog_.memDepths[op.mem];
            const std::uint64_t* ad = &vals_[static_cast<std::size_t>(op.d) * lanes_];
            const std::uint64_t* wd = &vals_[static_cast<std::size_t>(op.en) * lanes_];
            const std::uint64_t* we = &vals_[static_cast<std::size_t>(op.we) * lanes_];
            for (unsigned l = 0; l < lanes_; ++l) {
                if (((laneActive_ >> l) & 1) == 0) {
                    continue;
                }
                const auto addr = static_cast<std::size_t>(ad[l]);
                if (addr >= depth) {
                    // The scalar engines throw here, before touching state
                    // or memory; the lane records the identical message and
                    // the pre-increment cycle, then freezes (later seq ops
                    // in this sweep skip it, exactly like the throw did).
                    faultLane(l, cycles_,
                              format("bram '%s' address %zu out of range %zu",
                                     netlist_.cell(op.cell).name.c_str(), addr, depth));
                    continue;
                }
                if (we[l] != 0) {
                    mem[addr * lanes_ + l] = wd[l] & op.mask;
                }
                const std::uint64_t next = mem[addr * lanes_ + l];  // read-after-write
                if (st[l] != next) {
                    st[l] = next;
                    changed = true;
                }
            }
            break;
        }
        case CompiledSeqKind::Fsm: {
            for (unsigned l = 0; l < lanes_; ++l) {
                if (((laneActive_ >> l) & 1) == 0) {
                    continue;
                }
                bool anyStatus = op.statusCount == 0;
                for (std::uint32_t s = 0; s < op.statusCount && !anyStatus; ++s) {
                    const std::uint32_t net = prog_.fsmStatus[op.statusFirst + s];
                    anyStatus = vals_[static_cast<std::size_t>(net) * lanes_ + l] != 0;
                }
                if (anyStatus && st[l] + 1 < static_cast<std::uint64_t>(op.param)) {
                    st[l] = st[l] + 1;
                    changed = true;
                }
            }
            break;
        }
        }
        if (changed && seqDirtyFlag_[idx] == 0) {
            seqDirtyFlag_[idx] = 1;
            seqDirty_.push_back(idx);
        }
    }
    ++cycles_;
}

void BatchCompiledSim::setInput(std::string_view port, unsigned lane, std::uint64_t value) {
    require(lane < lanes_, "batch lane out of range");
    if (((laneActive_ >> lane) & 1) == 0) {
        return;  // faulted lanes are frozen — a scalar run halted here
    }
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    if (p.dir != PortDir::In) {
        throw SimulationError(format("cannot drive output port '%s'",
                                     std::string(port).c_str()));
    }
    const std::uint64_t v = value & compiledMaskForWidth(p.width);
    std::uint64_t& slot = vals_[static_cast<std::size_t>(p.net) * lanes_ + lane];
    if (slot != v) {
        slot = v;
        markConsumers(p.net);
    }
}

std::uint64_t BatchCompiledSim::output(std::string_view port, unsigned lane) const {
    require(lane < lanes_, "batch lane out of range");
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    return vals_[static_cast<std::size_t>(p.net) * lanes_ + lane];
}

std::uint64_t BatchCompiledSim::netValue(NetId id, unsigned lane) const {
    require(id < prog_.netCount, "net id out of range");
    require(lane < lanes_, "batch lane out of range");
    return vals_[static_cast<std::size_t>(id) * lanes_ + lane];
}

std::vector<std::uint64_t> BatchCompiledSim::memoryContents(CellId id, unsigned lane) const {
    require(id < netlist_.cells().size(), "cell id out of range");
    require(lane < lanes_, "batch lane out of range");
    for (const CompiledSeqOp& op : prog_.seqOps) {
        if (op.cell == id && op.kind == CompiledSeqKind::Bram) {
            const std::size_t depth = prog_.memDepths[op.mem];
            const auto& mem = mems_[op.mem];
            std::vector<std::uint64_t> out(depth, 0);
            for (std::size_t addr = 0; addr < depth; ++addr) {
                out[addr] = mem[addr * lanes_ + lane];
            }
            return out;
        }
    }
    return {};
}

bool BatchCompiledSim::laneFaulted(unsigned lane) const {
    require(lane < lanes_, "batch lane out of range");
    return faults_[lane].faulted;
}

std::uint64_t BatchCompiledSim::laneFaultCycle(unsigned lane) const {
    require(lane < lanes_, "batch lane out of range");
    return faults_[lane].cycle;
}

const std::string& BatchCompiledSim::laneFaultMessage(unsigned lane) const {
    require(lane < lanes_, "batch lane out of range");
    return faults_[lane].message;
}

void BatchCompiledSim::faultLane(unsigned lane, std::uint64_t cycle, std::string message) {
    laneActive_ &= ~(1ULL << lane);
    LaneFault& fault = faults_[lane];
    fault.faulted = true;
    fault.cycle = cycle;
    // Store the exact what() text a scalar run's SimulationError carries
    // (including its "sim: " prefix) so both SimBatch implementations
    // report byte-identical fault messages.
    fault.message = SimulationError(message).what();
}

void BatchCompiledSim::reset() {
    std::fill(state_.begin(), state_.end(), 0);
    for (auto& mem : mems_) {
        std::fill(mem.begin(), mem.end(), 0);
    }
    cycles_ = 0;
    laneActive_ = allLanesMask(lanes_);
    for (LaneFault& fault : faults_) {
        fault = LaneFault{};
    }
    for (std::uint32_t idx = 0; idx < prog_.seqOps.size(); ++idx) {
        if (seqDirtyFlag_[idx] == 0) {
            seqDirtyFlag_[idx] = 1;
            seqDirty_.push_back(idx);
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar farm fallback
// ---------------------------------------------------------------------------

namespace {

/// One independent scalar Simulator per lane, stepped round-robin. The
/// always-available SimBatch strategy: any netlist the event-driven
/// engine handles runs here, and lane faults are the lane simulator's
/// own SimulationError captured instead of propagated.
class ScalarFarm final : public SimBatch {
public:
    ScalarFarm(const Netlist& netlist, unsigned lanes, const SimConfig& laneConfig)
        : faults_(lanes) {
        sims_.reserve(lanes);
        for (unsigned lane = 0; lane < lanes; ++lane) {
            sims_.push_back(makeSimulator(netlist, laneConfig));
        }
    }

    [[nodiscard]] std::string_view backendName() const override { return "scalar-farm"; }
    [[nodiscard]] unsigned laneCount() const override {
        return static_cast<unsigned>(sims_.size());
    }

    void setInput(std::string_view port, unsigned lane, std::uint64_t value) override {
        checkLane(lane);
        if (!faults_[lane].faulted) {
            sims_[lane]->setInput(port, value);
        }
    }

    void evaluate() override {
        for (unsigned lane = 0; lane < sims_.size(); ++lane) {
            if (!faults_[lane].faulted) {
                guarded(lane, [&] { sims_[lane]->evaluate(); });
            }
        }
    }

    void step() override {
        for (unsigned lane = 0; lane < sims_.size(); ++lane) {
            if (!faults_[lane].faulted) {
                guarded(lane, [&] { sims_[lane]->step(); });
            }
        }
        ++cycles_;
    }

    [[nodiscard]] std::uint64_t output(std::string_view port, unsigned lane) const override {
        checkLane(lane);
        return sims_[lane]->output(port);
    }

    [[nodiscard]] std::uint64_t netValue(NetId id, unsigned lane) const override {
        checkLane(lane);
        return sims_[lane]->netValue(id);
    }

    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id,
                                                            unsigned lane) const override {
        checkLane(lane);
        return sims_[lane]->memoryContents(id);
    }

    [[nodiscard]] bool laneFaulted(unsigned lane) const override {
        checkLane(lane);
        return faults_[lane].faulted;
    }

    [[nodiscard]] std::uint64_t laneFaultCycle(unsigned lane) const override {
        checkLane(lane);
        return faults_[lane].cycle;
    }

    [[nodiscard]] const std::string& laneFaultMessage(unsigned lane) const override {
        checkLane(lane);
        return faults_[lane].message;
    }

    void reset() override {
        for (auto& sim : sims_) {
            sim->reset();
        }
        for (auto& fault : faults_) {
            fault = Fault{};
        }
        cycles_ = 0;
    }

    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

private:
    struct Fault {
        bool faulted = false;
        std::uint64_t cycle = 0;
        std::string message;
    };

    void checkLane(unsigned lane) const {
        require(lane < sims_.size(), "batch lane out of range");
    }

    template <typename Fn>
    void guarded(unsigned lane, Fn&& fn) {
        try {
            fn();
        } catch (const SimulationError& error) {
            // The lane simulator throws before advancing its cycle
            // counter, so its cycleCount() is the fault cycle.
            Fault& fault = faults_[lane];
            fault.faulted = true;
            fault.cycle = sims_[lane]->cycleCount();
            fault.message = error.what();
        }
    }

    std::vector<std::unique_ptr<Simulator>> sims_;
    std::vector<Fault> faults_;
    std::uint64_t cycles_ = 0;
};

} // namespace

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<SimBatch> makeSimBatch(const Netlist& netlist, const SimConfig& config) {
    SimBackend backend = config.backend;
    if (backend == SimBackend::Auto) {
        backend = simBackendFromEnv(SimBackend::Auto);
    }
    const unsigned lanes = resolveSimLanes(config.batchLanes);
    // Farm lanes are independent scalar engines; one worker pool per lane
    // would oversubscribe the host for nothing, so they run serial.
    SimConfig laneConfig = config;
    laneConfig.threads = 1;
    laneConfig.batchLanes = 0;
    switch (backend) {
    case SimBackend::EventDriven:
        laneConfig.backend = SimBackend::EventDriven;
        return std::make_unique<ScalarFarm>(netlist, lanes, laneConfig);
    case SimBackend::Compiled:
        return std::make_unique<BatchCompiledSim>(netlist, config);
    case SimBackend::Codegen:
        // A farm of generated-code lanes: the module is compiled once
        // (shared via the in-process registry), each lane is its own
        // State instance. Per-lane construction goes through
        // makeSimulator, so the Codegen → Compiled → EventDriven chain
        // applies to batches too.
        laneConfig.backend = SimBackend::Codegen;
        return std::make_unique<ScalarFarm>(netlist, lanes, laneConfig);
    case SimBackend::Auto:
        break;
    }
    try {
        return std::make_unique<BatchCompiledSim>(netlist, config);
    } catch (const UnsupportedNetlistError&) {
        laneConfig.backend = SimBackend::EventDriven;
        return std::make_unique<ScalarFarm>(netlist, lanes, laneConfig);
    }
}

std::unique_ptr<SimBatch> makeSimBatch(const Netlist& netlist, unsigned lanes,
                                       SimBackend backend) {
    SimConfig config;
    config.backend = backend;
    config.batchLanes = lanes;
    return makeSimBatch(netlist, config);
}

} // namespace socgen::rtl
