#pragma once

#include "socgen/rtl/sim_backend.hpp"

#include <string>
#include <vector>

namespace socgen::rtl {

/// Value-change-dump (VCD) tracer for any RTL Simulator backend:
/// sample() once per clock cycle, then render() the standard VCD text
/// loadable in GTKWave — the debugging artifact a hardware designer
/// expects from a generated core.
class VcdTrace {
public:
    /// Traces every module port, plus any extra nets given by id.
    VcdTrace(const Netlist& netlist, const Simulator& simulator,
             std::vector<NetId> extraNets = {});

    /// Records the current values (call after evaluate()/step()).
    void sample();

    /// Complete VCD file contents.
    [[nodiscard]] std::string render() const;

    [[nodiscard]] std::size_t sampleCount() const { return samples_; }

private:
    struct Signal {
        NetId net;
        std::string name;
        unsigned width;
        std::string id;  ///< VCD short identifier
        std::vector<std::uint64_t> values;
        std::uint64_t last = ~0ull;  ///< last recorded value (for change detection)
        std::vector<std::pair<std::size_t, std::uint64_t>> changes;
    };

    const Netlist& netlist_;
    const Simulator& simulator_;
    std::vector<Signal> signals_;
    std::size_t samples_ = 0;
};

} // namespace socgen::rtl
