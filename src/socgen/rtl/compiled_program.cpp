#include "socgen/rtl/compiled_program.hpp"

#include "socgen/common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace socgen::rtl {

namespace {

/// Cell kinds denied via SOCGEN_COMPILED_SIM_DENY (test hook for the
/// Auto-fallback rule). Comma-separated, case-insensitive kind names.
bool kindDeniedByEnv(CellKind kind) {
    const char* env = std::getenv("SOCGEN_COMPILED_SIM_DENY");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    std::string upper;
    for (const char* p = env; *p != '\0'; ++p) {
        upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
    }
    const std::string name(cellKindName(kind));
    std::size_t pos = 0;
    while (pos < upper.size()) {
        const std::size_t comma = upper.find(',', pos);
        const std::size_t end = comma == std::string::npos ? upper.size() : comma;
        std::size_t first = pos;
        std::size_t last = end;
        while (first < last && std::isspace(static_cast<unsigned char>(upper[first]))) {
            ++first;
        }
        while (last > first && std::isspace(static_cast<unsigned char>(upper[last - 1]))) {
            --last;
        }
        if (upper.compare(first, last - first, name) == 0) {
            return true;
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return false;
}

} // namespace

CompiledProgram compileProgram(const Netlist& netlist) {
    // Every current kind has a lowering; the deny hook (and future kinds
    // without one) reports UnsupportedNetlistError so Auto falls back.
    for (const Cell& c : netlist.cells()) {
        if (kindDeniedByEnv(c.kind)) {
            throw UnsupportedNetlistError(
                format("netlist %s: cell kind %s has no compiled lowering",
                       netlist.name().c_str(), std::string(cellKindName(c.kind)).c_str()));
        }
    }

    CompiledProgram program;
    program.netCount = netlist.nets().size();

    // Levelize: longest combinational path from a source (input port,
    // constant, or sequential output) to each combinational cell.
    const std::vector<CellId> topo = netlist.topoOrder();
    std::vector<std::uint32_t> cellLevel(netlist.cells().size(), 0);
    std::uint32_t maxLevel = 0;
    for (CellId id : topo) {
        const Cell& c = netlist.cell(id);
        std::uint32_t level = 0;
        for (NetId in : c.inputs) {
            const CellId driver = netlist.net(in).driver;
            if (driver != kInvalid && isCombinational(netlist.cell(driver).kind)) {
                level = std::max(level, cellLevel[driver] + 1);
            }
        }
        cellLevel[id] = level;
        maxLevel = std::max(maxLevel, level);
    }

    // Flatten combinational cells into ops sorted by (level, topo pos):
    // a stable sort of a valid topological order by level is still a
    // valid evaluation order, and groups each level contiguously.
    std::vector<CellId> byLevel = topo;
    std::stable_sort(byLevel.begin(), byLevel.end(), [&](CellId x, CellId y) {
        return cellLevel[x] < cellLevel[y];
    });
    program.ops.reserve(byLevel.size());
    program.opLevel.reserve(byLevel.size());
    std::vector<std::uint32_t> opOfCell(netlist.cells().size(), kInvalid);
    for (CellId id : byLevel) {
        const Cell& c = netlist.cell(id);
        CompiledOp op;
        op.code = c.kind;
        op.dst = c.outputs[0];
        op.mask = compiledMaskForWidth(c.width);
        if (!c.inputs.empty()) {
            op.a = c.inputs[0];
        }
        if (c.inputs.size() > 1) {
            op.b = c.inputs[1];
        }
        if (c.inputs.size() > 2) {
            op.c = c.inputs[2];
        }
        if (c.kind == CellKind::Const) {
            op.imm = static_cast<std::uint64_t>(c.param) & op.mask;
        }
        opOfCell[id] = static_cast<std::uint32_t>(program.ops.size());
        program.ops.push_back(op);
        program.opLevel.push_back(cellLevel[id]);
    }
    program.levels.assign(maxLevel + 1, {0, 0});
    for (std::uint32_t idx = 0; idx < program.ops.size(); ++idx) {
        auto& [first, count] = program.levels[program.opLevel[idx]];
        if (count == 0) {
            first = idx;
        }
        ++count;
    }

    // Consumer CSR: for each net, the combinational ops reading it.
    std::vector<std::uint32_t> counts(netlist.nets().size(), 0);
    for (CellId id : byLevel) {
        for (NetId in : netlist.cell(id).inputs) {
            ++counts[in];
        }
    }
    program.consumerFirst.assign(netlist.nets().size() + 1, 0);
    for (std::size_t net = 0; net < counts.size(); ++net) {
        program.consumerFirst[net + 1] = program.consumerFirst[net] + counts[net];
    }
    program.consumers.assign(program.consumerFirst.back(), 0);
    std::vector<std::uint32_t> cursor(program.consumerFirst.begin(),
                                      program.consumerFirst.end() - 1);
    for (CellId id : byLevel) {
        for (NetId in : netlist.cell(id).inputs) {
            program.consumers[cursor[in]++] = opOfCell[id];
        }
    }

    // Sequential update program, in CellId order (matching the
    // event-driven engine's clock-edge sweep).
    for (CellId id = 0; id < netlist.cells().size(); ++id) {
        const Cell& c = netlist.cell(id);
        if (isCombinational(c.kind)) {
            continue;
        }
        CompiledSeqOp op;
        op.cell = id;
        op.out = c.outputs[0];
        op.mask = compiledMaskForWidth(c.width);
        op.param = c.param;
        switch (c.kind) {
        case CellKind::Reg:
            op.kind = c.inputs.size() < 2 ? CompiledSeqKind::RegAlways
                                          : CompiledSeqKind::RegEnable;
            op.d = c.inputs[0];
            if (c.inputs.size() > 1) {
                op.en = c.inputs[1];
            }
            break;
        case CellKind::Bram:
            op.kind = CompiledSeqKind::Bram;
            op.d = c.inputs[0];   // addr
            op.en = c.inputs[1];  // wdata
            op.we = c.inputs[2];
            op.mem = static_cast<std::uint32_t>(program.memDepths.size());
            program.memDepths.push_back(static_cast<std::size_t>(c.param));
            break;
        case CellKind::Fsm:
            op.kind = CompiledSeqKind::Fsm;
            op.statusFirst = static_cast<std::uint32_t>(program.fsmStatus.size());
            op.statusCount = static_cast<std::uint32_t>(c.inputs.size());
            for (NetId in : c.inputs) {
                program.fsmStatus.push_back(in);
            }
            break;
        default:
            throw UnsupportedNetlistError(
                format("netlist %s: sequential cell kind %s has no compiled lowering",
                       netlist.name().c_str(), std::string(cellKindName(c.kind)).c_str()));
        }
        program.seqOps.push_back(op);
    }

    for (const auto& port : netlist.ports()) {
        program.portsByName.emplace(port.name, &port);
    }
    return program;
}

} // namespace socgen::rtl
