#pragma once

#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/netlist.hpp"

#include <string>
#include <string_view>

namespace socgen::rtl {

/// Base of the generated-C++ backend's failures. Derives from
/// SimulationError (it is a simulator-construction failure), but is a
/// distinct branch from UnsupportedNetlistError: "codegen cannot run
/// here" (no compiler, compile failed, dlopen failed) degrades to the
/// interpreter, which *can* run the same program, whereas an
/// unsupported construct fails both compiled paths.
class CodegenError : public SimulationError {
public:
    explicit CodegenError(const std::string& message)
        : SimulationError("codegen: " + message) {}
};

/// No usable host C++ compiler: SOCGEN_CXX points at nothing runnable
/// and no auto-detected candidate responds to --version.
class CodegenUnavailableError : public CodegenError {
public:
    explicit CodegenUnavailableError(const std::string& message)
        : CodegenError("no host compiler: " + message) {}
};

/// The emitted translation unit failed to compile. Carries the
/// compiler's merged stdout+stderr so the diagnostic names the actual
/// error line, not just "exit status 1".
class CodegenCompileError : public CodegenError {
public:
    CodegenCompileError(const std::string& message, std::string compilerOutput)
        : CodegenError(message), compilerOutput_(std::move(compilerOutput)) {}

    [[nodiscard]] const std::string& compilerOutput() const { return compilerOutput_; }

private:
    std::string compilerOutput_;
};

/// Bump on ANY change to the emitted source or its ABI: the artifact
/// key folds this in, so stale cached shared objects can never be
/// loaded by a newer emitter.
inline constexpr std::string_view kCodegenEmitterVersion = "socgen-codegen-v1";

/// One emitted translation unit for one netlist.
struct CodegenUnit {
    std::string source;        ///< self-contained C++17, deterministic bytes
    Digest128 sourceDigest;    ///< digest of `source`
    Digest128 netlistDigest;   ///< structural digest of the input netlist
};

/// Structural digest of a netlist: name, nets, cells (kind, width,
/// pins, param), ports. Two structurally identical netlists share a
/// digest, so they share one cached shared object.
[[nodiscard]] Digest128 netlistDigest(const Netlist& netlist);

/// Emits the C++ translation unit implementing `prog` (the levelized
/// program of `netlist`): one straight-line function per level band,
/// word-packed two-state storage, the interpreter's exact operator and
/// deferred-seq-publication semantics, exported behind a small
/// extern "C" ABI (socgen_cg_*). Byte-deterministic: the same netlist
/// emits the same bytes on every run of every process.
[[nodiscard]] CodegenUnit emitCodegenUnit(const Netlist& netlist,
                                          const CompiledProgram& prog);

/// The host toolchain codegen compiles with.
struct CodegenToolchain {
    std::string compiler;  ///< executable (SOCGEN_CXX or auto-detected)
    std::string identity;  ///< path + version banner line, folded into keys
};

/// Resolves the host compiler: SOCGEN_CXX when set, otherwise the first
/// of c++ / g++ / clang++ that answers --version. The probe result is
/// memoized per SOCGEN_CXX value. Throws CodegenUnavailableError when
/// nothing is runnable.
[[nodiscard]] CodegenToolchain resolveCodegenToolchain();

/// No-throw probe for gating tests and benches.
[[nodiscard]] bool codegenToolchainAvailable();

/// Cache key of the compiled shared object: (emitter version, source
/// digest — which covers the netlist digest embedded in the source —
/// and compiler identity). 32 hex characters.
[[nodiscard]] std::string codegenArtifactKey(const CodegenUnit& unit,
                                             std::string_view compilerIdentity);

/// Compiles `sourcePath` into the shared object `outPath` and returns
/// the compiler's merged stdout+stderr. Throws CodegenCompileError
/// (message embeds the output) on a non-zero exit.
std::string compileSharedObject(const CodegenToolchain& toolchain,
                                const std::string& sourcePath,
                                const std::string& outPath);

} // namespace socgen::rtl
