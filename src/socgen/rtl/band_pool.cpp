#include "socgen/rtl/band_pool.hpp"

namespace socgen::rtl {

BandPool::BandPool(unsigned threads) {
    for (unsigned i = 1; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

BandPool::~BandPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void BandPool::claimChunks(Job& job) {
    while (true) {
        const std::uint32_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= job.chunks) {
            return;
        }
        job.fn(chunk);
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.chunks) {
            // Last chunk: wake the caller blocked in run(). Lock/unlock
            // pairs with the caller's wait to avoid a missed notify.
            { const std::lock_guard<std::mutex> lock(job.doneMutex); }
            job.doneCv.notify_all();
        }
    }
}

void BandPool::run(std::uint32_t chunkCount,
                   const std::function<void(std::uint32_t)>& fn) {
    if (chunkCount == 0) {
        return;
    }
    if (workers_.empty() || chunkCount == 1) {
        for (std::uint32_t chunk = 0; chunk < chunkCount; ++chunk) {
            fn(chunk);
        }
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->chunks = chunkCount;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        current_ = job;
        ++generation_;
    }
    wake_.notify_all();
    // The caller claims chunks like any worker: on a single-core host it
    // typically drains the whole band before a worker even schedules.
    claimChunks(*job);
    std::unique_lock<std::mutex> lock(job->doneMutex);
    job->doneCv.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) == job->chunks;
    });
}

void BandPool::workerLoop() {
    std::uint64_t seen = 0;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) {
                return;
            }
            seen = generation_;
            job = current_;
        }
        claimChunks(*job);
    }
}

} // namespace socgen::rtl
