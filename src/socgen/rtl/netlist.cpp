#include "socgen/rtl/netlist.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::rtl {

std::string_view cellKindName(CellKind kind) {
    switch (kind) {
    case CellKind::Const: return "CONST";
    case CellKind::Not: return "NOT";
    case CellKind::And: return "AND";
    case CellKind::Or: return "OR";
    case CellKind::Xor: return "XOR";
    case CellKind::Add: return "ADD";
    case CellKind::Sub: return "SUB";
    case CellKind::Mul: return "MUL";
    case CellKind::Div: return "DIV";
    case CellKind::Mod: return "MOD";
    case CellKind::Shl: return "SHL";
    case CellKind::Shr: return "SHR";
    case CellKind::Eq: return "EQ";
    case CellKind::Ne: return "NE";
    case CellKind::Lt: return "LT";
    case CellKind::Le: return "LE";
    case CellKind::Gt: return "GT";
    case CellKind::Ge: return "GE";
    case CellKind::Mux: return "MUX";
    case CellKind::Reg: return "REG";
    case CellKind::Bram: return "BRAM";
    case CellKind::Fsm: return "FSM";
    }
    return "?";
}

bool isCombinational(CellKind kind) {
    switch (kind) {
    case CellKind::Reg:
    case CellKind::Bram:
    case CellKind::Fsm:
        return false;
    default:
        return true;
    }
}

PinSpec pinSpec(CellKind kind) {
    switch (kind) {
    case CellKind::Const: return {0, 1};
    case CellKind::Not: return {1, 1};
    case CellKind::And:
    case CellKind::Or:
    case CellKind::Xor:
    case CellKind::Add:
    case CellKind::Sub:
    case CellKind::Mul:
    case CellKind::Div:
    case CellKind::Mod:
    case CellKind::Shl:
    case CellKind::Shr:
    case CellKind::Eq:
    case CellKind::Ne:
    case CellKind::Lt:
    case CellKind::Le:
    case CellKind::Gt:
    case CellKind::Ge: return {2, 1};
    case CellKind::Mux: return {3, 1};
    case CellKind::Reg: return {-1, 1};  // d [, en]
    case CellKind::Bram: return {3, 1};  // addr, wdata, we
    case CellKind::Fsm: return {-1, 1};
    }
    return {0, 0};
}

NetId Netlist::addNet(std::string name, unsigned width) {
    nets_.push_back(Net{std::move(name), width, kInvalid});
    return static_cast<NetId>(nets_.size() - 1);
}

CellId Netlist::addCell(std::string name, CellKind kind, unsigned width,
                        std::vector<NetId> inputs, std::vector<NetId> outputs,
                        std::int64_t param) {
    const auto id = static_cast<CellId>(cells_.size());
    for (NetId out : outputs) {
        require(out < nets_.size(), "cell output net out of range");
        if (nets_[out].driver != kInvalid) {
            throw Error(format("netlist %s: net '%s' has multiple drivers", name_.c_str(),
                               nets_[out].name.c_str()));
        }
        nets_[out].driver = id;
    }
    cells_.push_back(
        Cell{std::move(name), kind, width, std::move(inputs), std::move(outputs), param});
    return id;
}

void Netlist::addPort(std::string name, PortDir dir, unsigned width, NetId net) {
    require(net < nets_.size(), "port net out of range");
    ports_.push_back(Port{std::move(name), dir, width, net});
}

const Net& Netlist::net(NetId id) const {
    require(id < nets_.size(), "net id out of range");
    return nets_[id];
}

const Cell& Netlist::cell(CellId id) const {
    require(id < cells_.size(), "cell id out of range");
    return cells_[id];
}

const Port& Netlist::port(std::string_view name) const {
    for (const auto& p : ports_) {
        if (p.name == name) {
            return p;
        }
    }
    throw Error(format("netlist %s: no port named '%s'", name_.c_str(),
                       std::string(name).c_str()));
}

bool Netlist::hasPort(std::string_view name) const {
    return std::any_of(ports_.begin(), ports_.end(),
                       [&](const Port& p) { return p.name == name; });
}

std::size_t Netlist::countKind(CellKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(cells_.begin(), cells_.end(),
                      [&](const Cell& c) { return c.kind == kind; }));
}

void Netlist::check() const {
    // Input-port nets are externally driven.
    std::vector<bool> externallyDriven(nets_.size(), false);
    for (const auto& p : ports_) {
        if (p.net >= nets_.size()) {
            throw Error(format("netlist %s: port '%s' references missing net", name_.c_str(),
                               p.name.c_str()));
        }
        if (p.dir == PortDir::In) {
            externallyDriven[p.net] = true;
        }
    }
    for (std::size_t i = 0; i < nets_.size(); ++i) {
        const auto& n = nets_[i];
        if (n.driver == kInvalid && !externallyDriven[i]) {
            throw Error(
                format("netlist %s: net '%s' is undriven", name_.c_str(), n.name.c_str()));
        }
        if (n.driver != kInvalid && externallyDriven[i]) {
            throw Error(format("netlist %s: input-port net '%s' also driven by cell",
                               name_.c_str(), n.name.c_str()));
        }
        // Nets wider than 64 bits are structurally valid up to 128 (the
        // HDL emitters render any range); both simulation engines track
        // the low 64 bits of such a net and agree on that truncation —
        // the diff-sim wide-bus corpus pins it. Wider than 128 is a
        // generator bug, not a representable design.
        if (n.width == 0 || n.width > 128) {
            throw Error(format("netlist %s: net '%s' has unsupported width %u", name_.c_str(),
                               n.name.c_str(), n.width));
        }
    }
    for (const auto& c : cells_) {
        const PinSpec spec = pinSpec(c.kind);
        if (spec.inputs >= 0 && static_cast<int>(c.inputs.size()) != spec.inputs) {
            throw Error(format("netlist %s: cell '%s' (%s) expects %d inputs, has %zu",
                               name_.c_str(), c.name.c_str(),
                               std::string(cellKindName(c.kind)).c_str(), spec.inputs,
                               c.inputs.size()));
        }
        if (spec.inputs < 0 && c.inputs.empty()) {
            throw Error(format("netlist %s: cell '%s' needs at least one input", name_.c_str(),
                               c.name.c_str()));
        }
        if (static_cast<int>(c.outputs.size()) != spec.outputs) {
            throw Error(format("netlist %s: cell '%s' expects %d outputs, has %zu",
                               name_.c_str(), c.name.c_str(), spec.outputs, c.outputs.size()));
        }
        for (NetId in : c.inputs) {
            if (in >= nets_.size()) {
                throw Error(format("netlist %s: cell '%s' input references missing net",
                                   name_.c_str(), c.name.c_str()));
            }
        }
    }
    (void)topoOrder();  // throws on combinational cycles
}

std::vector<CellId> Netlist::topoOrder() const {
    // Kahn's algorithm restricted to combinational cells; sequential cell
    // outputs are treated as sources (they hold state across the cycle).
    std::vector<int> pendingInputs(cells_.size(), 0);
    std::vector<std::vector<CellId>> consumers(nets_.size());
    for (CellId id = 0; id < cells_.size(); ++id) {
        const auto& c = cells_[id];
        if (!isCombinational(c.kind)) {
            continue;
        }
        for (NetId in : c.inputs) {
            const CellId driver = nets_[in].driver;
            if (driver != kInvalid && isCombinational(cells_[driver].kind)) {
                ++pendingInputs[id];
                consumers[in].push_back(id);
            }
        }
    }
    std::vector<CellId> order;
    order.reserve(cells_.size());
    std::vector<CellId> ready;
    for (CellId id = 0; id < cells_.size(); ++id) {
        if (isCombinational(cells_[id].kind) && pendingInputs[id] == 0) {
            ready.push_back(id);
        }
    }
    std::size_t combinationalCount = 0;
    for (const auto& c : cells_) {
        if (isCombinational(c.kind)) {
            ++combinationalCount;
        }
    }
    while (!ready.empty()) {
        const CellId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (NetId out : cells_[id].outputs) {
            for (CellId consumer : consumers[out]) {
                if (--pendingInputs[consumer] == 0) {
                    ready.push_back(consumer);
                }
            }
        }
    }
    if (order.size() != combinationalCount) {
        throw Error(format("netlist %s: combinational cycle detected", name_.c_str()));
    }
    return order;
}

} // namespace socgen::rtl
