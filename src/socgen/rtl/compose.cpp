#include "socgen/rtl/compose.hpp"

#include "socgen/common/error.hpp"

#include <vector>

namespace socgen::rtl {

std::map<std::string, NetId> flattenInto(Netlist& dst, const Netlist& src,
                                         std::string_view prefix,
                                         const std::map<std::string, NetId>& portBind) {
    const std::string pfx(prefix);

    // Port-net remaps requested by the caller, validated against the
    // instance's signature up front.
    std::map<NetId, NetId> remap;  // src net -> dst net
    struct Alias {
        NetId canonical;  ///< dst net the shared src net resolves to
        NetId extra;      ///< additional dst net that must carry the value
        unsigned width;
        std::string port;
    };
    std::vector<Alias> aliases;
    for (const auto& [portName, dstNet] : portBind) {
        if (!src.hasPort(portName)) {
            throw Error("flatten: instance '" + src.name() + "' has no port '" + portName +
                        "'");
        }
        const Port& port = src.port(portName);
        if (dst.net(dstNet).width != port.width) {
            throw Error("flatten: port '" + portName + "' of '" + src.name() + "' is " +
                        std::to_string(port.width) + " bit(s) but the bound net '" +
                        dst.net(dstNet).name + "' is " +
                        std::to_string(dst.net(dstNet).width));
        }
        const auto [it, fresh] = remap.emplace(port.net, dstNet);
        if (!fresh && it->second != dstNet) {
            if (port.dir == PortDir::Out) {
                // Two output ports exposing the same internal net (e.g. a
                // kernel writing two streams from one FSM state shares the
                // tvalid select net between both ports): keep the first
                // mapping canonical and fan the extra binding out through
                // a buffer so both parent nets carry the value.
                aliases.push_back(Alias{it->second, dstNet, port.width, portName});
                continue;
            }
            throw Error("flatten: port '" + portName + "' of '" + src.name() +
                        "' shares a net with another bound port mapped elsewhere");
        }
    }

    // Copy nets (bound ones resolve to the parent net, everything else is
    // a fresh prefixed net).
    std::vector<NetId> netMap(src.nets().size(), kInvalid);
    for (NetId id = 0; id < src.nets().size(); ++id) {
        const auto bound = remap.find(id);
        if (bound != remap.end()) {
            netMap[id] = bound->second;
        } else {
            netMap[id] = dst.addNet(pfx + src.net(id).name, src.net(id).width);
        }
    }

    // Copy cells with remapped pins; addCell re-derives net drivers in
    // dst, which is what wires a bound output port to the parent net.
    for (const Cell& cell : src.cells()) {
        std::vector<NetId> inputs;
        inputs.reserve(cell.inputs.size());
        for (const NetId in : cell.inputs) {
            inputs.push_back(netMap[in]);
        }
        std::vector<NetId> outputs;
        outputs.reserve(cell.outputs.size());
        for (const NetId out : cell.outputs) {
            outputs.push_back(netMap[out]);
        }
        dst.addCell(pfx + cell.name, cell.kind, cell.width, std::move(inputs),
                    std::move(outputs), cell.param);
    }

    // Fan shared output ports out to their extra parent nets (x | x = x).
    for (const Alias& alias : aliases) {
        dst.addCell(pfx + "alias_" + alias.port, CellKind::Or, alias.width,
                    {alias.canonical, alias.canonical}, {alias.extra});
    }

    std::map<std::string, NetId> portNets;
    for (const Port& port : src.ports()) {
        portNets[port.name] = netMap[port.net];
    }
    // Aliased ports resolve to their own bound net, not the canonical one.
    for (const Alias& alias : aliases) {
        portNets[alias.port] = alias.extra;
    }
    return portNets;
}

} // namespace socgen::rtl
