#include "socgen/rtl/codegen_sim.hpp"

#include "socgen/common/blob_store.hpp"
#include "socgen/common/env.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/rtl/codegen_emit.hpp"

#include <filesystem>
#include <map>
#include <mutex>
#include <utility>

#include <dlfcn.h>
#include <unistd.h>

namespace socgen::rtl {
namespace {

/// Objects in the shared-object store carry their own magic so a file
/// renamed in from the HLS artifact store fails validation.
constexpr const char* kSoStoreMagic = "SOCGENSO1";

} // namespace

/// One loaded shared object: the dlopen handle plus its resolved
/// extern "C" entry points. Shared by every CodegenSim of the same
/// (netlist, compiler) in this process via the module registry; the
/// handle is dlclosed only when the last simulator using it is gone.
class CodegenModule {
public:
    CodegenModule(void* handle, std::string key) : handle_(handle), key_(std::move(key)) {}

    ~CodegenModule() {
        if (handle_ != nullptr) {
            ::dlclose(handle_);
        }
    }

    CodegenModule(const CodegenModule&) = delete;
    CodegenModule& operator=(const CodegenModule&) = delete;

    using AbiFn = int (*)();
    using DigestFn = const char* (*)();
    using NetCountFn = unsigned long long (*)();
    using CreateFn = void* (*)();
    using DestroyFn = void (*)(void*);
    using ValsFn = unsigned long long* (*)(void*);
    using MemFn = unsigned long long* (*)(void*, unsigned long long);
    using EvalFn = void (*)(void*);
    using StepFn = long long (*)(void*, unsigned long long*);
    using ResetFn = void (*)(void*);

    AbiFn abi = nullptr;
    DigestFn digest = nullptr;
    NetCountFn netCount = nullptr;
    CreateFn create = nullptr;
    DestroyFn destroy = nullptr;
    ValsFn vals = nullptr;
    MemFn mem = nullptr;
    EvalFn eval = nullptr;
    StepFn step = nullptr;
    ResetFn reset = nullptr;

    [[nodiscard]] const std::string& key() const { return key_; }

private:
    void* handle_ = nullptr;
    std::string key_;
};

namespace {

std::mutex g_mutex;
CodegenStats g_stats;
std::map<std::string, std::shared_ptr<CodegenModule>> g_registry;

template <typename Fn>
Fn resolveSymbol(void* handle, const char* name) {
    // dlsym legitimately returns function pointers through void*; the
    // union-free cast below is the POSIX-sanctioned idiom.
    void* sym = ::dlsym(handle, name);
    if (sym == nullptr) {
        throw CodegenError(format("shared object lacks symbol %s", name));
    }
    return reinterpret_cast<Fn>(sym);
}

std::shared_ptr<CodegenModule> openModule(const std::string& libPath,
                                          const std::string& key) {
    // RTLD_LOCAL: every generated object exports the same socgen_cg_*
    // names, so symbols must never enter the global namespace where a
    // second netlist's module would alias the first.
    void* handle = ::dlopen(libPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle == nullptr) {
        const char* why = ::dlerror();
        throw CodegenError(format("dlopen %s: %s", libPath.c_str(),
                                  why != nullptr ? why : "unknown error"));
    }
    auto module = std::make_shared<CodegenModule>(handle, key);
    module->abi = resolveSymbol<CodegenModule::AbiFn>(handle, "socgen_cg_abi");
    module->digest = resolveSymbol<CodegenModule::DigestFn>(handle, "socgen_cg_digest");
    module->netCount =
        resolveSymbol<CodegenModule::NetCountFn>(handle, "socgen_cg_net_count");
    module->create = resolveSymbol<CodegenModule::CreateFn>(handle, "socgen_cg_create");
    module->destroy =
        resolveSymbol<CodegenModule::DestroyFn>(handle, "socgen_cg_destroy");
    module->vals = resolveSymbol<CodegenModule::ValsFn>(handle, "socgen_cg_vals");
    module->mem = resolveSymbol<CodegenModule::MemFn>(handle, "socgen_cg_mem");
    module->eval = resolveSymbol<CodegenModule::EvalFn>(handle, "socgen_cg_eval");
    module->step = resolveSymbol<CodegenModule::StepFn>(handle, "socgen_cg_step");
    module->reset = resolveSymbol<CodegenModule::ResetFn>(handle, "socgen_cg_reset");
    if (module->abi() != 1) {
        throw CodegenError(format("shared object %s has ABI %d, host expects 1",
                                  libPath.c_str(), module->abi()));
    }
    return module;
}

/// Emits, compiles (or fetches), loads, and cross-checks the module for
/// one netlist. The single lock serializes compiles within the process —
/// N lanes over one netlist pay one compile, not N.
std::shared_ptr<CodegenModule> acquireModule(const Netlist& netlist,
                                             const CompiledProgram& prog) {
    const CodegenUnit unit = emitCodegenUnit(netlist, prog);
    const CodegenToolchain toolchain = resolveCodegenToolchain();
    const std::string key = codegenArtifactKey(unit, toolchain.identity);

    const std::lock_guard<std::mutex> lock(g_mutex);
    ++g_stats.sourcesEmitted;
    const auto it = g_registry.find(key);
    if (it != g_registry.end()) {
        ++g_stats.registryHits;
        return it->second;
    }

    const std::string cacheDir = codegenCacheDir();
    const BlobStore store(cacheDir + "/store", kSoStoreMagic);
    const std::string libPath = cacheDir + "/lib/" + key + ".so";

    std::optional<std::string> soBytes = store.load(key);
    if (soBytes.has_value()) {
        ++g_stats.storeHits;
        writeFileAtomic(libPath, *soBytes);
    } else {
        // Cold path: compile to a private temp name, persist the bytes in
        // the digest-verified store, then publish the loadable object by
        // rename — so a crash mid-compile never leaves a torn .so where
        // dlopen looks, and a corrupted store object (quarantined by
        // load() above) is transparently rebuilt here.
        const std::string srcPath = cacheDir + "/src/" + key + ".cpp";
        writeFileAtomic(srcPath, unit.source);
        // The compiler cannot create lib/ itself (the warm path gets it
        // for free from writeFileAtomic).
        std::error_code mkdirEc;
        std::filesystem::create_directories(cacheDir + "/lib", mkdirEc);
        const std::string buildPath =
            libPath + ".build" + std::to_string(static_cast<long>(::getpid()));
        (void)compileSharedObject(toolchain, srcPath, buildPath);
        ++g_stats.compiles;
        const std::string bytes = readTextFile(buildPath);
        store.store(key, bytes);
        std::error_code ec;
        std::filesystem::rename(buildPath, libPath, ec);
        if (ec) {
            throw CodegenError(format("publishing %s: %s", libPath.c_str(),
                                      ec.message().c_str()));
        }
    }

    std::shared_ptr<CodegenModule> module = openModule(libPath, key);
    // Cross-check the loaded code against the netlist we are about to
    // drive through it: a key collision or a tampered lib/ extraction
    // must fail loudly, not simulate the wrong design.
    if (std::string(module->digest()) != unit.netlistDigest.hex()) {
        throw CodegenError(format("shared object %s was generated for netlist digest "
                                  "%s, expected %s",
                                  libPath.c_str(), module->digest(),
                                  unit.netlistDigest.hex().c_str()));
    }
    if (module->netCount() != prog.netCount) {
        throw CodegenError(format("shared object %s models %llu nets, expected %zu",
                                  libPath.c_str(), module->netCount(), prog.netCount));
    }
    g_registry.emplace(key, module);
    return module;
}

} // namespace

CodegenStats codegenStats() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    return g_stats;
}

void codegenTestReset() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_stats = CodegenStats{};
    g_registry.clear();
}

std::string codegenCacheDir() {
    if (const std::optional<std::string> dir = envString("SOCGEN_CODEGEN_CACHE_DIR");
        dir.has_value()) {
        return *dir;
    }
    return (std::filesystem::temp_directory_path() / "socgen-codegen").string();
}

CodegenSim::CodegenSim(const Netlist& netlist) : CodegenSim(netlist, SimConfig{}) {}

CodegenSim::CodegenSim(const Netlist& netlist, const SimConfig& config)
    : netlist_(netlist), prog_(compileProgram(netlist)) {
    // The generated code is straight-line and single-threaded; the
    // threads/grain knobs are compiled-interpreter concerns.
    (void)config;
    module_ = acquireModule(netlist_, prog_);
    state_ = module_->create();
    vals_ = module_->vals(state_);
}

CodegenSim::~CodegenSim() {
    if (state_ != nullptr) {
        module_->destroy(state_);
    }
}

const std::string& CodegenSim::artifactKey() const { return module_->key(); }

void CodegenSim::setInput(std::string_view port, std::uint64_t value) {
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    if (p.dir != PortDir::In) {
        throw SimulationError(format("cannot drive output port '%s'",
                                     std::string(port).c_str()));
    }
    vals_[p.net] = value & compiledMaskForWidth(p.width);
}

void CodegenSim::evaluate() { module_->eval(state_); }

void CodegenSim::step() {
    unsigned long long faultAddr = 0;
    const long long fault = module_->step(state_, &faultAddr);
    if (fault >= 0) {
        const CompiledSeqOp& op = prog_.seqOps[static_cast<std::size_t>(fault)];
        throw SimulationError(format("bram '%s' address %zu out of range %zu",
                                     netlist_.cell(op.cell).name.c_str(),
                                     static_cast<std::size_t>(faultAddr),
                                     prog_.memDepths[op.mem]));
    }
    ++cycles_;
}

std::uint64_t CodegenSim::output(std::string_view port) const {
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    return vals_[p.net];
}

std::uint64_t CodegenSim::netValue(NetId id) const {
    require(id < prog_.netCount, "net id out of range");
    return vals_[id];
}

std::vector<std::uint64_t> CodegenSim::memoryContents(CellId id) const {
    require(id < netlist_.cells().size(), "cell id out of range");
    for (const CompiledSeqOp& op : prog_.seqOps) {
        if (op.cell == id && op.kind == CompiledSeqKind::Bram) {
            const unsigned long long* base = module_->mem(state_, op.mem);
            const std::size_t depth = prog_.memDepths[op.mem];
            return std::vector<std::uint64_t>(base, base + depth);
        }
    }
    return {};
}

void CodegenSim::reset() {
    module_->reset(state_);
    cycles_ = 0;
}

} // namespace socgen::rtl
