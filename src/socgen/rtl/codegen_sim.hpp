#pragma once

#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::rtl {

class CodegenModule;

/// Process-lifetime counters for the codegen pipeline, for tests and
/// benches to assert cache behaviour (e.g. warm-flow recompiles == 0).
struct CodegenStats {
    std::uint64_t sourcesEmitted = 0;  ///< translation units emitted
    std::uint64_t compiles = 0;        ///< host-compiler invocations
    std::uint64_t storeHits = 0;       ///< shared objects served from the store
    std::uint64_t registryHits = 0;    ///< modules reused already-loaded
};
[[nodiscard]] CodegenStats codegenStats();

/// Test hook: zeroes the stats and drops the in-process module registry
/// so the next CodegenSim must go back to the store (or the compiler).
/// Already-constructed simulators keep their modules alive.
void codegenTestReset();

/// Root of the shared-object cache: SOCGEN_CODEGEN_CACHE_DIR when set,
/// otherwise a fixed directory under the system temp dir. Holds the
/// BlobStore (`store/`), emitted sources (`src/`), and extracted
/// loadable objects (`lib/`).
[[nodiscard]] std::string codegenCacheDir();

/// The generated-C++ backend: the third RTL engine (DESIGN.md §15).
/// Construction emits a C++ translation unit from the netlist's
/// levelized program, compiles it with the host toolchain, and dlopens
/// the shared object — with the object cached in a digest-verified
/// BlobStore keyed by (emitter version, source digest, compiler
/// identity), so a warm process pays one dlopen and a warm machine pays
/// zero recompiles. The hot path then runs native straight-line code:
/// no per-op dispatch, no operand indirection.
///
/// Construction throws CodegenUnavailableError (no host compiler),
/// CodegenCompileError (emitted TU rejected), CodegenError (bad module)
/// or UnsupportedNetlistError (construct neither compiled backend can
/// lower). makeSimulator(SimBackend::Codegen) catches these and
/// degrades Codegen → Compiled → EventDriven; constructing CodegenSim
/// directly is the strict, no-fallback form.
class CodegenSim final : public Simulator {
public:
    explicit CodegenSim(const Netlist& netlist);
    CodegenSim(const Netlist& netlist, const SimConfig& config);
    ~CodegenSim() override;

    CodegenSim(const CodegenSim&) = delete;
    CodegenSim& operator=(const CodegenSim&) = delete;

    [[nodiscard]] std::string_view backendName() const override { return "codegen"; }
    void setInput(std::string_view port, std::uint64_t value) override;
    void evaluate() override;
    void step() override;
    [[nodiscard]] std::uint64_t output(std::string_view port) const override;
    [[nodiscard]] std::uint64_t netValue(NetId id) const override;
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id) const override;
    void reset() override;
    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

    /// The shared object's cache key (32 hex chars).
    [[nodiscard]] const std::string& artifactKey() const;

private:
    const Netlist& netlist_;
    CompiledProgram prog_;
    std::shared_ptr<CodegenModule> module_;
    void* state_ = nullptr;
    unsigned long long* vals_ = nullptr;  ///< flat net array inside the module
    std::uint64_t cycles_ = 0;
};

} // namespace socgen::rtl
