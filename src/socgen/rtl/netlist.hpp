#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// Index types into a Netlist's internal tables. A value of `kInvalid`
/// means "not connected".
using NetId = std::uint32_t;
using CellId = std::uint32_t;
inline constexpr std::uint32_t kInvalid = 0xffffffffU;

enum class PortDir { In, Out };

/// Primitive cell kinds. These are the leaves the HLS code generator maps
/// scheduled operations onto; the synthesis model prices each kind in
/// LUT/FF/BRAM/DSP (see hls/resources.hpp).
enum class CellKind {
    Const,  ///< constant driver; `param` holds the value
    Not,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,    ///< maps to DSP48 slices
    Div,    ///< iterative divider (LUT-heavy)
    Mod,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Mux,    ///< inputs: sel, a (sel==0), b (sel!=0)
    Reg,    ///< inputs: d, en (optional); clocked
    Bram,   ///< inputs: addr, wdata, we; output: rdata; `param` = depth
    Fsm,    ///< control FSM placeholder; `param` = number of states
};

[[nodiscard]] std::string_view cellKindName(CellKind kind);

/// True for cells whose output depends only on current-cycle inputs.
[[nodiscard]] bool isCombinational(CellKind kind);

struct Net {
    std::string name;
    unsigned width = 1;
    CellId driver = kInvalid;       ///< driving cell (kInvalid for input ports)
};

struct Cell {
    std::string name;
    CellKind kind = CellKind::Const;
    unsigned width = 1;             ///< datapath width of the operation
    std::vector<NetId> inputs;
    std::vector<NetId> outputs;
    std::int64_t param = 0;         ///< Const value / Bram depth / Fsm states
};

struct Port {
    std::string name;
    PortDir dir = PortDir::In;
    unsigned width = 1;
    NetId net = kInvalid;
};

/// A flat structural netlist for one generated hardware module. The HLS
/// code generator produces one Netlist per accelerator; the VHDL emitter
/// and netlist simulator consume it.
class Netlist {
public:
    explicit Netlist(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    NetId addNet(std::string name, unsigned width);
    CellId addCell(std::string name, CellKind kind, unsigned width,
                   std::vector<NetId> inputs, std::vector<NetId> outputs,
                   std::int64_t param = 0);
    void addPort(std::string name, PortDir dir, unsigned width, NetId net);

    [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }
    [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
    [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }

    [[nodiscard]] const Net& net(NetId id) const;
    [[nodiscard]] const Cell& cell(CellId id) const;

    /// Finds a port by name; throws socgen::Error if absent.
    [[nodiscard]] const Port& port(std::string_view name) const;
    [[nodiscard]] bool hasPort(std::string_view name) const;

    /// Number of cells of a given kind.
    [[nodiscard]] std::size_t countKind(CellKind kind) const;

    /// Structural sanity: every net (except input-port nets) has exactly
    /// one driver, cell pin counts match their kind, no dangling ids.
    /// Throws socgen::Error with a description of the first violation.
    void check() const;

    /// Combinational cells in topological (evaluation) order. Throws on a
    /// combinational cycle.
    [[nodiscard]] std::vector<CellId> topoOrder() const;

private:
    std::string name_;
    std::vector<Net> nets_;
    std::vector<Cell> cells_;
    std::vector<Port> ports_;
};

/// Expected input/output pin counts for a cell kind ({-1,…} = variadic).
struct PinSpec {
    int inputs;   ///< -1 means "one or more"
    int outputs;
};
[[nodiscard]] PinSpec pinSpec(CellKind kind);

} // namespace socgen::rtl
