#include "socgen/rtl/primitives.hpp"

#include "socgen/common/strings.hpp"

namespace socgen::rtl {

NetId NetlistBuilder::freshNet(std::string_view base, unsigned width) {
    return netlist_.addNet(format("%.*s_%u", static_cast<int>(base.size()), base.data(),
                                  counter_++),
                           width);
}

std::string NetlistBuilder::freshCellName(std::string_view base) {
    return format("%.*s_c%u", static_cast<int>(base.size()), base.data(), counter_++);
}

NetId NetlistBuilder::inputPort(std::string name, unsigned width) {
    const NetId net = netlist_.addNet(name, width);
    netlist_.addPort(std::move(name), PortDir::In, width, net);
    return net;
}

void NetlistBuilder::outputPort(std::string name, NetId net) {
    netlist_.addPort(std::move(name), PortDir::Out, netlist_.net(net).width, net);
}

NetId NetlistBuilder::constant(std::int64_t value, unsigned width) {
    const NetId out = freshNet("const", width);
    netlist_.addCell(freshCellName("const"), CellKind::Const, width, {}, {out}, value);
    return out;
}

NetId NetlistBuilder::unary(CellKind kind, NetId a, unsigned width) {
    const NetId out = freshNet(cellKindName(kind), width);
    netlist_.addCell(freshCellName(cellKindName(kind)), kind, width, {a}, {out});
    return out;
}

NetId NetlistBuilder::binary(CellKind kind, NetId a, NetId b, unsigned width) {
    const NetId out = freshNet(cellKindName(kind), width);
    netlist_.addCell(freshCellName(cellKindName(kind)), kind, width, {a, b}, {out});
    return out;
}

NetId NetlistBuilder::mux(NetId sel, NetId whenZero, NetId whenNonZero, unsigned width) {
    const NetId out = freshNet("mux", width);
    netlist_.addCell(freshCellName("mux"), CellKind::Mux, width, {sel, whenZero, whenNonZero},
                     {out});
    return out;
}

NetId NetlistBuilder::reg(NetId d, NetId en, unsigned width, std::string_view name) {
    const NetId out = freshNet(name.empty() ? "reg" : name, width);
    std::vector<NetId> inputs{d};
    if (en != kInvalid) {
        inputs.push_back(en);
    }
    netlist_.addCell(freshCellName(name.empty() ? "reg" : name), CellKind::Reg, width,
                     std::move(inputs), {out});
    return out;
}

NetId NetlistBuilder::bram(NetId addr, NetId wdata, NetId we, unsigned width,
                           std::int64_t depth, std::string_view name) {
    const NetId out = freshNet(name.empty() ? "bram" : name, width);
    netlist_.addCell(freshCellName(name.empty() ? "bram" : name), CellKind::Bram, width,
                     {addr, wdata, we}, {out}, depth);
    return out;
}

NetId NetlistBuilder::fsm(std::vector<NetId> statusInputs, std::int64_t states,
                          std::string_view name) {
    const NetId out = freshNet(name.empty() ? "fsm" : name, 16);
    netlist_.addCell(freshCellName(name.empty() ? "fsm" : name), CellKind::Fsm, 16,
                     std::move(statusInputs), {out}, states);
    return out;
}

Netlist makeCounter(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId en = b.inputPort("en", 1);
    // count register feeds an adder that feeds it back.
    const NetId one = b.constant(1, width);
    // Build the feedback by creating the register net first via a two-step:
    // reg output net is created by reg(); but its input is the adder that
    // consumes the reg output. Create a placeholder net for the reg output
    // is not possible with the builder, so wire it manually.
    Netlist& n = b.netlist();
    const NetId q = n.addNet("count_q", width);
    const NetId sum = n.addNet("count_next", width);
    n.addCell("count_add", CellKind::Add, width, {q, one}, {sum});
    n.addCell("count_reg", CellKind::Reg, width, {sum, en}, {q});
    n.addPort("count", PortDir::Out, width, q);
    return std::move(b.netlist());
}

Netlist makeAdder(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId a = b.inputPort("a", width);
    const NetId bb = b.inputPort("b", width);
    const NetId sum = b.binary(CellKind::Add, a, bb, width);
    b.outputPort("sum", sum);
    return std::move(b.netlist());
}

Netlist makeMac(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId a = b.inputPort("a", width);
    const NetId bb = b.inputPort("b", width);
    const NetId en = b.inputPort("en", 1);
    Netlist& n = b.netlist();
    const NetId acc = n.addNet("acc_q", width);
    const NetId prod = b.binary(CellKind::Mul, a, bb, width);
    const NetId next = n.addNet("acc_next", width);
    n.addCell("acc_add", CellKind::Add, width, {acc, prod}, {next});
    n.addCell("acc_reg", CellKind::Reg, width, {next, en}, {acc});
    n.addPort("acc", PortDir::Out, width, acc);
    return std::move(b.netlist());
}

} // namespace socgen::rtl
