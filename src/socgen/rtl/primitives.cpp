#include "socgen/rtl/primitives.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::rtl {

NetId NetlistBuilder::freshNet(std::string_view base, unsigned width) {
    return netlist_.addNet(format("%.*s_%u", static_cast<int>(base.size()), base.data(),
                                  counter_++),
                           width);
}

std::string NetlistBuilder::freshCellName(std::string_view base) {
    return format("%.*s_c%u", static_cast<int>(base.size()), base.data(), counter_++);
}

NetId NetlistBuilder::inputPort(std::string name, unsigned width) {
    const NetId net = netlist_.addNet(name, width);
    netlist_.addPort(std::move(name), PortDir::In, width, net);
    return net;
}

void NetlistBuilder::outputPort(std::string name, NetId net) {
    netlist_.addPort(std::move(name), PortDir::Out, netlist_.net(net).width, net);
}

NetId NetlistBuilder::constant(std::int64_t value, unsigned width) {
    const NetId out = freshNet("const", width);
    netlist_.addCell(freshCellName("const"), CellKind::Const, width, {}, {out}, value);
    return out;
}

NetId NetlistBuilder::unary(CellKind kind, NetId a, unsigned width) {
    const NetId out = freshNet(cellKindName(kind), width);
    netlist_.addCell(freshCellName(cellKindName(kind)), kind, width, {a}, {out});
    return out;
}

NetId NetlistBuilder::binary(CellKind kind, NetId a, NetId b, unsigned width) {
    const NetId out = freshNet(cellKindName(kind), width);
    netlist_.addCell(freshCellName(cellKindName(kind)), kind, width, {a, b}, {out});
    return out;
}

NetId NetlistBuilder::mux(NetId sel, NetId whenZero, NetId whenNonZero, unsigned width) {
    const NetId out = freshNet("mux", width);
    netlist_.addCell(freshCellName("mux"), CellKind::Mux, width, {sel, whenZero, whenNonZero},
                     {out});
    return out;
}

NetId NetlistBuilder::reg(NetId d, NetId en, unsigned width, std::string_view name) {
    const NetId out = freshNet(name.empty() ? "reg" : name, width);
    std::vector<NetId> inputs{d};
    if (en != kInvalid) {
        inputs.push_back(en);
    }
    netlist_.addCell(freshCellName(name.empty() ? "reg" : name), CellKind::Reg, width,
                     std::move(inputs), {out});
    return out;
}

NetId NetlistBuilder::bram(NetId addr, NetId wdata, NetId we, unsigned width,
                           std::int64_t depth, std::string_view name) {
    const NetId out = freshNet(name.empty() ? "bram" : name, width);
    netlist_.addCell(freshCellName(name.empty() ? "bram" : name), CellKind::Bram, width,
                     {addr, wdata, we}, {out}, depth);
    return out;
}

NetId NetlistBuilder::fsm(std::vector<NetId> statusInputs, std::int64_t states,
                          std::string_view name) {
    const NetId out = freshNet(name.empty() ? "fsm" : name, 16);
    netlist_.addCell(freshCellName(name.empty() ? "fsm" : name), CellKind::Fsm, 16,
                     std::move(statusInputs), {out}, states);
    return out;
}

Netlist makeCounter(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId en = b.inputPort("en", 1);
    // count register feeds an adder that feeds it back.
    const NetId one = b.constant(1, width);
    // Build the feedback by creating the register net first via a two-step:
    // reg output net is created by reg(); but its input is the adder that
    // consumes the reg output. Create a placeholder net for the reg output
    // is not possible with the builder, so wire it manually.
    Netlist& n = b.netlist();
    const NetId q = n.addNet("count_q", width);
    const NetId sum = n.addNet("count_next", width);
    n.addCell("count_add", CellKind::Add, width, {q, one}, {sum});
    n.addCell("count_reg", CellKind::Reg, width, {sum, en}, {q});
    n.addPort("count", PortDir::Out, width, q);
    return std::move(b.netlist());
}

Netlist makeAdder(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId a = b.inputPort("a", width);
    const NetId bb = b.inputPort("b", width);
    const NetId sum = b.binary(CellKind::Add, a, bb, width);
    b.outputPort("sum", sum);
    return std::move(b.netlist());
}

Netlist makeMac(std::string name, unsigned width) {
    NetlistBuilder b(std::move(name));
    const NetId a = b.inputPort("a", width);
    const NetId bb = b.inputPort("b", width);
    const NetId en = b.inputPort("en", 1);
    Netlist& n = b.netlist();
    const NetId acc = n.addNet("acc_q", width);
    const NetId prod = b.binary(CellKind::Mul, a, bb, width);
    const NetId next = n.addNet("acc_next", width);
    n.addCell("acc_add", CellKind::Add, width, {acc, prod}, {next});
    n.addCell("acc_reg", CellKind::Reg, width, {next, en}, {acc});
    n.addPort("acc", PortDir::Out, width, acc);
    return std::move(b.netlist());
}

Netlist makeFifo(std::string name, unsigned width, std::uint32_t depth,
                 std::uint32_t initialTokens) {
    require(depth >= 1, "fifo depth must be >= 1");
    require(initialTokens <= depth, "fifo initial tokens exceed depth");
    // Pointer/occupancy arithmetic in 16 bits (depths are FIFO-sized, not
    // memory-sized; deep buffers belong in BRAM-backed channels).
    require(depth <= 0xFFFF, "fifo depth exceeds 16-bit bookkeeping");
    constexpr unsigned kPtrW = 16;

    NetlistBuilder b(std::move(name));
    Netlist& n = b.netlist();

    const NetId inData = b.inputPort("in_tdata", width);
    const NetId inValid = b.inputPort("in_tvalid", 1);
    const NetId outReady = b.inputPort("out_tready", 1);

    // State registers (feedback, so the nets are created by hand like
    // makeCounter's): occupancy count, write pointer, read pointer.
    const NetId countQ = n.addNet("count_q", kPtrW);
    const NetId wptrQ = n.addNet("wptr_q", kPtrW);
    const NetId rptrQ = n.addNet("rptr_q", kPtrW);

    // Registers reset to zero, so non-zero initial occupancy is modelled
    // by a one-shot "primed" flag: until the first clock edge the count
    // and write pointer read as their initial-token values, afterwards as
    // the registered state (which the first edge computes *from* the
    // initial values, making the hand-off seamless).
    NetId effCount = countQ;
    NetId effWptr = wptrQ;
    if (initialTokens > 0) {
        const NetId primedQ = n.addNet("primed_q", 1);
        const NetId one1 = b.constant(1, 1);
        n.addCell("primed_reg", CellKind::Reg, 1, {one1}, {primedQ});
        const NetId initCount = b.constant(static_cast<std::int64_t>(initialTokens), kPtrW);
        const NetId initWptr =
            b.constant(static_cast<std::int64_t>(initialTokens % depth), kPtrW);
        effCount = b.mux(primedQ, initCount, countQ, kPtrW);
        effWptr = b.mux(primedQ, initWptr, wptrQ, kPtrW);
    }

    const NetId depthC = b.constant(static_cast<std::int64_t>(depth), kPtrW);
    const NetId zeroC = b.constant(0, kPtrW);

    const NetId inReady = b.binary(CellKind::Lt, effCount, depthC, 1);
    const NetId outValid = b.binary(CellKind::Ne, effCount, zeroC, 1);
    const NetId push = b.binary(CellKind::And, inValid, inReady, 1);
    const NetId pop = b.binary(CellKind::And, outReady, outValid, 1);

    // count' = count + push - pop (no over/underflow: push implies
    // count < depth, pop implies count > 0).
    const NetId countPlus = b.binary(CellKind::Add, effCount, push, kPtrW);
    const NetId countNext = b.binary(CellKind::Sub, countPlus, pop, kPtrW);
    n.addCell("count_reg", CellKind::Reg, kPtrW, {countNext}, {countQ});

    const NetId wptrPlus = b.binary(CellKind::Add, effWptr, push, kPtrW);
    const NetId wptrNext = b.binary(CellKind::Mod, wptrPlus, depthC, kPtrW);
    n.addCell("wptr_reg", CellKind::Reg, kPtrW, {wptrNext}, {wptrQ});

    const NetId rptrPlus = b.binary(CellKind::Add, rptrQ, pop, kPtrW);
    const NetId rptrNext = b.binary(CellKind::Mod, rptrPlus, depthC, kPtrW);
    n.addCell("rptr_reg", CellKind::Reg, kPtrW, {rptrNext}, {rptrQ});

    // One register slot per entry: written when the write pointer selects
    // it during a push; the read face muxes the slot the read pointer
    // selects. Slots reset to zero, which is exactly the value the
    // initial tokens must carry.
    std::vector<NetId> slots;
    slots.reserve(depth);
    for (std::uint32_t s = 0; s < depth; ++s) {
        const NetId slotC = b.constant(static_cast<std::int64_t>(s), kPtrW);
        const NetId wSel = b.binary(CellKind::Eq, effWptr, slotC, 1);
        const NetId we = b.binary(CellKind::And, push, wSel, 1);
        const NetId slotQ =
            n.addNet(format("slot%u_q", static_cast<unsigned>(s)), width);
        n.addCell(format("slot%u_reg", static_cast<unsigned>(s)), CellKind::Reg, width,
                  {inData, we}, {slotQ});
        slots.push_back(slotQ);
    }
    NetId outData = slots[0];
    for (std::uint32_t s = 1; s < depth; ++s) {
        const NetId slotC = b.constant(static_cast<std::int64_t>(s), kPtrW);
        const NetId rSel = b.binary(CellKind::Eq, rptrQ, slotC, 1);
        outData = b.mux(rSel, outData, slots[s], width);
    }

    b.outputPort("in_tready", inReady);
    b.outputPort("out_tdata", outData);
    b.outputPort("out_tvalid", outValid);
    return std::move(b.netlist());
}

} // namespace socgen::rtl
