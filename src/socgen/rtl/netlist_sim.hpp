#pragma once

#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// Two-phase (evaluate / clock) simulator for a structural Netlist.
/// Values are unsigned, truncated to each net's width. Used to validate
/// generated RTL against the HLS functional model on small kernels, and
/// by unit tests on hand-built circuits.
class NetlistSimulator {
public:
    explicit NetlistSimulator(const Netlist& netlist);

    /// Drives an input port for subsequent evaluations.
    void setInput(std::string_view port, std::uint64_t value);

    /// Settles combinational logic with current inputs and state.
    void evaluate();

    /// evaluate() then advance registers/BRAMs/FSMs by one clock edge.
    void step();

    /// Value of an output (or any) port after the last evaluate()/step().
    [[nodiscard]] std::uint64_t output(std::string_view port) const;

    /// Raw net value (post-evaluation); mainly for tests.
    [[nodiscard]] std::uint64_t netValue(NetId id) const;

    /// Resets all sequential state to zero.
    void reset();

    [[nodiscard]] std::uint64_t cycleCount() const { return cycles_; }

private:
    [[nodiscard]] std::uint64_t truncate(std::uint64_t value, unsigned width) const;
    [[nodiscard]] std::uint64_t evalCell(const Cell& cell) const;

    const Netlist& netlist_;
    std::vector<CellId> order_;                  ///< combinational evaluation order
    std::vector<std::uint64_t> netValues_;
    std::vector<std::uint64_t> state_;           ///< per-cell sequential state
    std::vector<std::vector<std::uint64_t>> brams_;  ///< per-cell memory (empty if not Bram)
    std::uint64_t cycles_ = 0;
};

} // namespace socgen::rtl
