#pragma once

#include "socgen/rtl/netlist.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <cstdint>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// Two-phase (evaluate / clock) event-driven simulator for a structural
/// Netlist: every cycle walks the cell tables and re-evaluates every
/// cell. Values are unsigned, truncated to each net's width. This is the
/// reference backend: it covers every construct, and the compiled
/// backend (CompiledSim) is differentially tested against it. Used to
/// validate generated RTL against the HLS functional model on small
/// kernels, and by unit tests on hand-built circuits.
class NetlistSimulator final : public Simulator {
public:
    explicit NetlistSimulator(const Netlist& netlist);

    [[nodiscard]] std::string_view backendName() const override { return "event"; }

    /// Drives an input port for subsequent evaluations.
    void setInput(std::string_view port, std::uint64_t value) override;

    /// Settles combinational logic with current inputs and state.
    void evaluate() override;

    /// evaluate() then advance registers/BRAMs/FSMs by one clock edge.
    void step() override;

    /// Value of an output (or any) port after the last evaluate()/step().
    [[nodiscard]] std::uint64_t output(std::string_view port) const override;

    /// Raw net value (post-evaluation); mainly for tests.
    [[nodiscard]] std::uint64_t netValue(NetId id) const override;

    /// Contents of a Bram cell's memory (empty for non-Bram cells).
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id) const override;

    /// Resets all sequential state to zero.
    void reset() override;

    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

private:
    [[nodiscard]] std::uint64_t truncate(std::uint64_t value, unsigned width) const;
    [[nodiscard]] std::uint64_t evalCell(const Cell& cell) const;

    const Netlist& netlist_;
    std::vector<CellId> order_;                  ///< combinational evaluation order
    std::vector<std::uint64_t> netValues_;
    std::vector<std::uint64_t> state_;           ///< per-cell sequential state
    std::vector<std::vector<std::uint64_t>> brams_;  ///< per-cell memory (empty if not Bram)
    std::uint64_t cycles_ = 0;
};

} // namespace socgen::rtl
