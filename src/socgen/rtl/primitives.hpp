#pragma once

#include "socgen/rtl/netlist.hpp"

namespace socgen::rtl {

/// Convenience layer over Netlist for building datapaths: each call adds
/// one cell plus its output net with a derived name. Used by the HLS code
/// generator and by tests that hand-build reference circuits.
class NetlistBuilder {
public:
    explicit NetlistBuilder(std::string name) : netlist_(std::move(name)) {}

    Netlist& netlist() { return netlist_; }
    [[nodiscard]] const Netlist& netlist() const { return netlist_; }

    /// Adds a module input/output port backed by a fresh net.
    NetId inputPort(std::string name, unsigned width);
    void outputPort(std::string name, NetId net);

    NetId constant(std::int64_t value, unsigned width);
    NetId unary(CellKind kind, NetId a, unsigned width);
    NetId binary(CellKind kind, NetId a, NetId b, unsigned width);
    NetId mux(NetId sel, NetId whenZero, NetId whenNonZero, unsigned width);

    /// Clocked register, optional enable (kInvalid = always enabled).
    NetId reg(NetId d, NetId en, unsigned width, std::string_view name = "");

    /// Synchronous single-port RAM; returns the read-data net.
    NetId bram(NetId addr, NetId wdata, NetId we, unsigned width, std::int64_t depth,
               std::string_view name = "");

    /// Control FSM placeholder cell with `states` states; inputs are the
    /// status signals it samples, output is the current-state net.
    NetId fsm(std::vector<NetId> statusInputs, std::int64_t states,
              std::string_view name = "");

private:
    NetId freshNet(std::string_view base, unsigned width);
    std::string freshCellName(std::string_view base);

    Netlist netlist_;
    unsigned counter_ = 0;
};

/// Reference circuits used by tests and as integration glue.

/// width-bit free-running counter with synchronous enable; returns the
/// finished netlist. Demonstrates Reg feedback through combinational logic.
Netlist makeCounter(std::string name, unsigned width);

/// Combinational a+b adder module with ports a, b, sum.
Netlist makeAdder(std::string name, unsigned width);

/// Registered multiply-accumulate: acc <= acc + a*b when en.
Netlist makeMac(std::string name, unsigned width);

/// Synchronous FIFO with AXI-Stream handshakes on both faces — the
/// channel primitive instantiated between the processes of a dataflow
/// network. Ports: in_tdata/in_tvalid/in_tready (write face),
/// out_tdata/out_tvalid/out_tready (read face). Register-slot storage
/// (one Reg per entry plus a read mux) so a push and a pop can land in
/// the same cycle; `initialTokens` entries read as zero-valued tokens
/// already queued at reset (must be <= depth). Depth must be >= 1.
Netlist makeFifo(std::string name, unsigned width, std::uint32_t depth,
                 std::uint32_t initialTokens = 0);

} // namespace socgen::rtl
