#pragma once

#include "socgen/rtl/netlist.hpp"

#include <string>

namespace socgen::rtl {

/// Emits a synthesizable-style Verilog-2001 module for a structural
/// netlist. Vivado HLS produces both VHDL and Verilog for each solution;
/// socgen mirrors that: the flow ships `<core>.vhd` and `<core>.v` for
/// every generated accelerator.
class VerilogEmitter {
public:
    [[nodiscard]] std::string emit(const Netlist& netlist) const;
};

} // namespace socgen::rtl
