#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace socgen::rtl {

/// Persistent worker pool for partitioned level-band evaluation.
///
/// One pool is owned by a simulator instance and reused for every band
/// of every cycle, so the thread-spawn cost is paid once at
/// construction. run() splits a band into `chunkCount` chunks and
/// invokes `fn(chunk)` for every chunk exactly once; chunks are claimed
/// dynamically (atomic counter), and the *calling* thread participates
/// first — on a loaded or single-core host the caller simply drains all
/// chunks itself and returns without ever sleeping, so fan-out degrades
/// to inline evaluation instead of a context-switch storm.
///
/// Determinism contract: which thread runs a chunk is unspecified, so
/// callers must only write to chunk-private state (plus disjoint
/// per-net slots) during run() and merge in chunk-index order after it
/// returns. run() returns only after every chunk finished.
class BandPool {
public:
    /// Spawns `threads - 1` workers (the caller is the remaining one).
    /// threads <= 1 means no workers: run() executes inline.
    explicit BandPool(unsigned threads);
    ~BandPool();

    BandPool(const BandPool&) = delete;
    BandPool& operator=(const BandPool&) = delete;

    [[nodiscard]] unsigned threadCount() const { return workers_.size() + 1; }

    /// Invokes fn(chunk) for chunk in [0, chunkCount), each exactly once.
    void run(std::uint32_t chunkCount, const std::function<void(std::uint32_t)>& fn);

private:
    /// One band dispatch. Heap-allocated and held by shared_ptr so a
    /// worker that wakes up late can still safely observe an exhausted
    /// job after run() has returned.
    struct Job {
        std::function<void(std::uint32_t)> fn;
        std::uint32_t chunks = 0;
        std::atomic<std::uint32_t> next{0};
        std::atomic<std::uint32_t> done{0};
        std::mutex doneMutex;
        std::condition_variable doneCv;
    };

    void workerLoop();
    static void claimChunks(Job& job);

    std::mutex mutex_;
    std::condition_variable wake_;
    std::shared_ptr<Job> current_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace socgen::rtl
