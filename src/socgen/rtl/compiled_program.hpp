#pragma once

#include "socgen/common/error.hpp"
#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace socgen::rtl {

/// Raised by the compiled-program builder when the netlist contains a
/// construct it cannot lower. makeSimulator(SimBackend::Auto) catches
/// exactly this type and falls back to the event-driven engine.
class UnsupportedNetlistError : public SimulationError {
public:
    explicit UnsupportedNetlistError(const std::string& message)
        : SimulationError("compiled-sim: " + message) {}
};

/// One combinational evaluation op: fixed layout, resolved net slots,
/// precomputed width mask, sorted by level in CompiledProgram::ops.
struct CompiledOp {
    CellKind code = CellKind::Const;
    std::uint32_t dst = 0;              ///< output net slot
    std::uint32_t a = 0, b = 0, c = 0;  ///< input net slots
    std::uint64_t mask = 0;             ///< width mask of the driving cell
    std::uint64_t imm = 0;              ///< pre-masked Const value
};

enum class CompiledSeqKind : std::uint8_t { RegAlways, RegEnable, Bram, Fsm };

/// One sequential update op, applied at the clock edge in CellId order
/// (matching the event-driven engine's sweep).
struct CompiledSeqOp {
    CompiledSeqKind kind = CompiledSeqKind::RegAlways;
    std::uint32_t cell = 0;         ///< originating CellId
    std::uint32_t out = 0;          ///< output net slot
    std::uint32_t d = 0;            ///< Reg d / Bram addr
    std::uint32_t en = 0;           ///< Reg en / Bram wdata
    std::uint32_t we = 0;           ///< Bram we
    std::uint64_t mask = 0;
    std::int64_t param = 0;         ///< Fsm state count
    std::uint32_t mem = 0;          ///< index into memDepths (Bram only)
    std::uint32_t statusFirst = 0;  ///< Fsm status slots in fsmStatus
    std::uint32_t statusCount = 0;
};

/// The immutable result of levelizing one Netlist: a linear evaluation
/// program over a flat value array. Shared by every compiled executor —
/// the scalar CompiledSim and the lane-batched BatchCompiledSim are two
/// execution strategies over the same program, so compiling once pins
/// the evaluation semantics for both.
/// Transparent hash so port lookups by string_view do not allocate a
/// temporary std::string — setInput is called once per port per lane
/// per cycle on the hot stimulus path.
struct PortNameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

struct CompiledProgram {
    std::vector<CompiledOp> ops;                ///< sorted by level
    std::vector<std::uint32_t> opLevel;         ///< level of each op
    std::vector<std::pair<std::uint32_t, std::uint32_t>> levels;  ///< [first, count) into ops
    std::vector<std::uint32_t> consumers;       ///< CSR payload: op indices
    std::vector<std::uint32_t> consumerFirst;   ///< per net, index into consumers
    std::vector<CompiledSeqOp> seqOps;
    std::vector<std::uint32_t> fsmStatus;       ///< flattened Fsm status slots
    std::vector<std::size_t> memDepths;         ///< per Bram mem index
    std::size_t netCount = 0;
    std::unordered_map<std::string, const Port*, PortNameHash, std::equal_to<>>
        portsByName;  ///< into the Netlist
};

[[nodiscard]] inline std::uint64_t compiledMaskForWidth(unsigned width) {
    return width >= 64 ? ~0ULL : (1ULL << width) - 1ULL;
}

/// Levelizes `netlist` (kept by reference; must outlive the program).
/// Throws UnsupportedNetlistError when a cell kind cannot be lowered
/// (including kinds denied via the SOCGEN_COMPILED_SIM_DENY test hook)
/// and socgen::Error on structural problems (combinational cycles).
[[nodiscard]] CompiledProgram compileProgram(const Netlist& netlist);

} // namespace socgen::rtl
