#pragma once

#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// Which RTL simulation engine executes a Netlist.
///
///  - EventDriven: the original two-phase interpreter (NetlistSimulator).
///    Walks the cell tables every cycle; slow but covers everything.
///  - Compiled: the levelized backend (CompiledSim). The netlist is
///    compiled once into a linear evaluation program over a flat value
///    array; quiescent subgraphs are skipped via dirty tracking.
///  - Codegen: the generated-C++ backend (CodegenSim). The levelized
///    program is emitted as a C++ translation unit, compiled by the
///    host toolchain, and dlopened; requires a usable compiler and
///    degrades Codegen → Compiled → EventDriven via makeSimulator
///    (see DESIGN.md §15).
///  - Auto: Compiled when the netlist is supported, EventDriven
///    otherwise (the fallback rule; see DESIGN.md §10). Codegen is
///    opt-in (SOCGEN_SIM_BACKEND=codegen or an explicit request) so a
///    plain flow never pays a host-compiler invocation unasked.
enum class SimBackend { Auto, EventDriven, Compiled, Codegen };

[[nodiscard]] std::string_view simBackendName(SimBackend backend);

/// Parses "auto" / "event" / "compiled" / "codegen" (also accepts
/// "event-driven"); throws socgen::Error on anything else.
[[nodiscard]] SimBackend simBackendFromString(std::string_view text);

/// Resolves the SOCGEN_SIM_BACKEND environment override: returns the
/// parsed env value when the variable is set and non-empty, otherwise
/// `fallback`. Throws socgen::Error on an unparsable value.
[[nodiscard]] SimBackend simBackendFromEnv(SimBackend fallback = SimBackend::Auto);

/// Resolves what `makeSimulator(netlist, requested)` would pick before
/// the unsupported-construct fallback: Auto consults SOCGEN_SIM_BACKEND,
/// and an unresolved Auto means Compiled. Artifact fingerprints that
/// cover sim-derived outputs fold this resolved name in, so switching
/// the backend can never replay a journal written under the other one.
[[nodiscard]] SimBackend resolveSimBackend(SimBackend requested = SimBackend::Auto);

/// Hard ceiling on worker threads and batch lanes (lanes are packed one
/// per bit of a 64-bit lane-activity word).
inline constexpr unsigned kMaxSimThreads = 64;
inline constexpr unsigned kMaxSimLanes = 64;

/// Resolves the partitioned-evaluation thread count: 0 (Auto) consults
/// the SOCGEN_SIM_THREADS environment override and falls back to 1
/// (serial) when unset or unparsable; any request is clamped to
/// kMaxSimThreads. Like the backend, the resolved value is what flow
/// fingerprints fold in.
[[nodiscard]] unsigned resolveSimThreads(unsigned requested = 0);

/// Resolves the batched-stimulus lane count: 0 (Auto) means a single
/// lane; any request is clamped to kMaxSimLanes. Fingerprint-relevant
/// for the same reason as the thread count.
[[nodiscard]] unsigned resolveSimLanes(unsigned requested = 0);

/// Engine configuration accepted by makeSimulator()/makeSimBatch().
/// Every knob has an Auto (zero) value that degrades gracefully: Auto
/// backend falls back per the unsupported-construct rule, threads=0
/// resolves through SOCGEN_SIM_THREADS then serial, batchLanes=0 means
/// a single lane. The event-driven engine ignores threads entirely —
/// the knobs widen the compiled backend, they never change semantics
/// (enforced by the diff-sim thread-parity and lane suites).
struct SimConfig {
    SimBackend backend = SimBackend::Auto;
    /// Worker threads for partitioned level-band evaluation (compiled
    /// backend only). 0 = SOCGEN_SIM_THREADS env override, then 1.
    unsigned threads = 0;
    /// Stimulus lanes for makeSimBatch (1..64). 0 = 1 lane.
    unsigned batchLanes = 0;
    /// Minimum pending ops in a level band before it fans out to the
    /// worker pool; smaller bands evaluate inline on the calling thread
    /// (a condvar round-trip costs more than a few dozen op evals).
    /// Tests pin this to 1 to force the parallel path on any band.
    unsigned parallelGrainOps = 256;
};

/// One hop of the graceful backend degradation chain, reported through
/// the process-wide fallback hook: makeSimulator was asked for
/// `requested` but built `chosen` instead, for `reason` (no host
/// compiler, unsupported construct, ...). Structured so services can
/// count and surface degradations instead of grepping warning logs.
struct SimBackendFallback {
    std::string netlist;    ///< Netlist::name()
    SimBackend requested = SimBackend::Auto;
    SimBackend chosen = SimBackend::Auto;
    std::string reason;
};

using SimBackendFallbackHook = std::function<void(const SimBackendFallback&)>;

/// Installs the fallback observer and returns the previous one (install
/// nullptr to restore the default, which logs a warning). Process-wide;
/// tests swap it in and out around a case.
SimBackendFallbackHook setSimBackendFallbackHook(SimBackendFallbackHook hook);

/// Common interface of the RTL simulation backends. Semantics are
/// pinned by the event-driven engine and enforced by the differential
/// suite (tests/test_rtl_diff_sim.cpp): any observable divergence
/// between backends is a bug.
class Simulator {
public:
    virtual ~Simulator() = default;

    /// "event", "compiled", or "codegen" — which engine actually runs.
    [[nodiscard]] virtual std::string_view backendName() const = 0;

    /// Drives an input port for subsequent evaluations.
    virtual void setInput(std::string_view port, std::uint64_t value) = 0;

    /// Settles combinational logic with current inputs and state.
    virtual void evaluate() = 0;

    /// evaluate() then advance registers/BRAMs/FSMs by one clock edge.
    virtual void step() = 0;

    /// Value of an output (or any) port after the last evaluate()/step().
    [[nodiscard]] virtual std::uint64_t output(std::string_view port) const = 0;

    /// Raw net value (post-evaluation); mainly for tests and tracing.
    [[nodiscard]] virtual std::uint64_t netValue(NetId id) const = 0;

    /// Contents of a Bram cell's memory (empty for non-Bram cells).
    /// Used by the differential suite to compare final memory state.
    [[nodiscard]] virtual std::vector<std::uint64_t> memoryContents(CellId id) const = 0;

    /// Resets all sequential state to zero (inputs are retained).
    virtual void reset() = 0;

    [[nodiscard]] virtual std::uint64_t cycleCount() const = 0;
};

/// Builds a simulator for `netlist`:
///  - Compiled: compiles; throws socgen::Error if unsupported.
///  - EventDriven: the interpreter, always available.
///  - Codegen: the generated-C++ backend, degrading gracefully through
///    the chain Codegen → Compiled → EventDriven; each hop fires the
///    fallback hook with a structured reason. Use CodegenSim directly
///    for strict (throwing) construction.
///  - Auto: env override first (SOCGEN_SIM_BACKEND), then Compiled with
///    automatic fallback to EventDriven when compilation reports an
///    unsupported construct.
[[nodiscard]] std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist,
                                                       SimBackend backend = SimBackend::Auto);

/// Same selection rule, with the full engine configuration (threads,
/// band grain). The event-driven fallback ignores the extra knobs.
[[nodiscard]] std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist,
                                                       const SimConfig& config);

} // namespace socgen::rtl
