#pragma once

#include "socgen/rtl/netlist.hpp"

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// Which RTL simulation engine executes a Netlist.
///
///  - EventDriven: the original two-phase interpreter (NetlistSimulator).
///    Walks the cell tables every cycle; slow but covers everything.
///  - Compiled: the levelized backend (CompiledSim). The netlist is
///    compiled once into a linear evaluation program over a flat value
///    array; quiescent subgraphs are skipped via dirty tracking.
///  - Auto: Compiled when the netlist is supported, EventDriven
///    otherwise (the fallback rule; see DESIGN.md §10).
enum class SimBackend { Auto, EventDriven, Compiled };

[[nodiscard]] std::string_view simBackendName(SimBackend backend);

/// Parses "auto" / "event" / "compiled" (also accepts "event-driven");
/// throws socgen::Error on anything else.
[[nodiscard]] SimBackend simBackendFromString(std::string_view text);

/// Resolves the SOCGEN_SIM_BACKEND environment override: returns the
/// parsed env value when the variable is set and non-empty, otherwise
/// `fallback`. Throws socgen::Error on an unparsable value.
[[nodiscard]] SimBackend simBackendFromEnv(SimBackend fallback = SimBackend::Auto);

/// Resolves what `makeSimulator(netlist, requested)` would pick before
/// the unsupported-construct fallback: Auto consults SOCGEN_SIM_BACKEND,
/// and an unresolved Auto means Compiled. Artifact fingerprints that
/// cover sim-derived outputs fold this resolved name in, so switching
/// the backend can never replay a journal written under the other one.
[[nodiscard]] SimBackend resolveSimBackend(SimBackend requested = SimBackend::Auto);

/// Common interface of the two RTL simulation backends. Semantics are
/// pinned by the event-driven engine and enforced by the differential
/// suite (tests/test_rtl_diff_sim.cpp): any observable divergence
/// between backends is a bug.
class Simulator {
public:
    virtual ~Simulator() = default;

    /// "event" or "compiled" — which engine actually runs.
    [[nodiscard]] virtual std::string_view backendName() const = 0;

    /// Drives an input port for subsequent evaluations.
    virtual void setInput(std::string_view port, std::uint64_t value) = 0;

    /// Settles combinational logic with current inputs and state.
    virtual void evaluate() = 0;

    /// evaluate() then advance registers/BRAMs/FSMs by one clock edge.
    virtual void step() = 0;

    /// Value of an output (or any) port after the last evaluate()/step().
    [[nodiscard]] virtual std::uint64_t output(std::string_view port) const = 0;

    /// Raw net value (post-evaluation); mainly for tests and tracing.
    [[nodiscard]] virtual std::uint64_t netValue(NetId id) const = 0;

    /// Contents of a Bram cell's memory (empty for non-Bram cells).
    /// Used by the differential suite to compare final memory state.
    [[nodiscard]] virtual std::vector<std::uint64_t> memoryContents(CellId id) const = 0;

    /// Resets all sequential state to zero (inputs are retained).
    virtual void reset() = 0;

    [[nodiscard]] virtual std::uint64_t cycleCount() const = 0;
};

/// Builds a simulator for `netlist`:
///  - Compiled: compiles; throws socgen::Error if unsupported.
///  - EventDriven: the interpreter, always available.
///  - Auto: env override first (SOCGEN_SIM_BACKEND), then Compiled with
///    automatic fallback to EventDriven when compilation reports an
///    unsupported construct.
[[nodiscard]] std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist,
                                                       SimBackend backend = SimBackend::Auto);

} // namespace socgen::rtl
