#include "socgen/rtl/codegen_emit.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/subprocess.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

namespace socgen::rtl {
namespace {

std::string u64(std::uint64_t v) {
    return std::to_string(static_cast<unsigned long long>(v));
}

std::string hex64(std::uint64_t v) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
    return buf;
}

/// `st.v[<slot>]` — every net is one word of the flat value array.
std::string slot(std::uint32_t net) { return "st.v[" + u64(net) + "]"; }

/// The masked expression for one combinational op — textually the same
/// arithmetic as CompiledSim::evalOp, so the two compiled executors
/// cannot drift: any change must be made in both and is caught by the
/// three-way differential suite.
std::string opExpr(const CompiledOp& op) {
    const std::string a = slot(op.a);
    const std::string b = slot(op.b);
    const std::string mask = hex64(op.mask) + "ULL";
    switch (op.code) {
    case CellKind::Const: return u64(op.imm) + "ULL";
    case CellKind::Not: return "~" + a + " & " + mask;
    case CellKind::And: return "(" + a + " & " + b + ") & " + mask;
    case CellKind::Or: return "(" + a + " | " + b + ") & " + mask;
    case CellKind::Xor: return "(" + a + " ^ " + b + ") & " + mask;
    case CellKind::Add: return "(" + a + " + " + b + ") & " + mask;
    case CellKind::Sub: return "(" + a + " - " + b + ") & " + mask;
    case CellKind::Mul: return "(" + a + " * " + b + ") & " + mask;
    case CellKind::Div:
        return "(" + b + " == 0ULL ? ~0ULL : " + a + " / " + b + ") & " + mask;
    case CellKind::Mod:
        return "(" + b + " == 0ULL ? " + a + " : " + a + " % " + b + ") & " + mask;
    case CellKind::Shl:
        return "(" + b + " >= 64ULL ? 0ULL : " + a + " << " + b + ") & " + mask;
    case CellKind::Shr:
        return "(" + b + " >= 64ULL ? 0ULL : " + a + " >> " + b + ") & " + mask;
    case CellKind::Eq: return "(" + a + " == " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Ne: return "(" + a + " != " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Lt: return "(" + a + " < " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Le: return "(" + a + " <= " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Gt: return "(" + a + " > " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Ge: return "(" + a + " >= " + b + " ? 1ULL : 0ULL) & " + mask;
    case CellKind::Mux:
        return "(" + a + " == 0ULL ? " + b + " : " + slot(op.c) + ") & " + mask;
    default:
        throw CodegenError("cannot emit sequential kind " +
                           std::string(cellKindName(op.code)));
    }
}

} // namespace

Digest128 netlistDigest(const Netlist& netlist) {
    HashStream h;
    h.field(std::string_view("socgen-netlist-v1"));
    h.field(netlist.name());
    h.field(static_cast<std::uint64_t>(netlist.nets().size()));
    for (const Net& net : netlist.nets()) {
        h.field(net.name);
        h.field(static_cast<std::uint64_t>(net.width));
        h.field(static_cast<std::uint64_t>(net.driver));
    }
    h.field(static_cast<std::uint64_t>(netlist.cells().size()));
    for (const Cell& cell : netlist.cells()) {
        h.field(cell.name);
        h.field(static_cast<std::uint64_t>(cell.kind));
        h.field(static_cast<std::uint64_t>(cell.width));
        h.field(static_cast<std::uint64_t>(cell.inputs.size()));
        for (const NetId id : cell.inputs) {
            h.field(static_cast<std::uint64_t>(id));
        }
        h.field(static_cast<std::uint64_t>(cell.outputs.size()));
        for (const NetId id : cell.outputs) {
            h.field(static_cast<std::uint64_t>(id));
        }
        h.field(cell.param);
    }
    h.field(static_cast<std::uint64_t>(netlist.ports().size()));
    for (const Port& port : netlist.ports()) {
        h.field(port.name);
        h.field(static_cast<std::uint64_t>(port.dir));
        h.field(static_cast<std::uint64_t>(port.width));
        h.field(static_cast<std::uint64_t>(port.net));
    }
    return h.digest();
}

CodegenUnit emitCodegenUnit(const Netlist& netlist, const CompiledProgram& prog) {
    const Digest128 digest = netlistDigest(netlist);

    // Per-Bram base offsets into the single flat mem[] array.
    std::vector<std::size_t> memOffset(prog.memDepths.size(), 0);
    std::size_t memTotal = 0;
    for (std::size_t i = 0; i < prog.memDepths.size(); ++i) {
        memOffset[i] = memTotal;
        memTotal += prog.memDepths[i];
    }

    std::string src;
    src.reserve(4096 + prog.ops.size() * 48);
    src += "// Generated simulator for netlist '" + netlist.name() + "'. Do not edit.\n";
    src += "// emitter: ";
    src += kCodegenEmitterVersion;
    src += "\n// netlist-digest: " + digest.hex() + "\n\n";

    // All-ULL storage and arithmetic: the interpreter's word type is
    // uint64_t, and on every supported platform unsigned long long is
    // exactly that — spelled out here so the extern "C" ABI needs no
    // <cstdint> agreement between host and generated code.
    src += "namespace {\n\n";
    src += "struct State {\n";
    src += "    unsigned long long v[" + u64(std::max<std::size_t>(1, prog.netCount)) +
           "];\n";
    src += "    unsigned long long s[" +
           u64(std::max<std::size_t>(1, prog.seqOps.size())) + "];\n";
    src += "    unsigned long long mem[" + u64(std::max<std::size_t>(1, memTotal)) +
           "];\n";
    src += "};\n\n";

    // One straight-line function per level band; ops within a band are
    // mutually independent, so source order (the interpreter's op order)
    // is just a canonical order, not a dependency.
    for (std::size_t level = 0; level < prog.levels.size(); ++level) {
        src += "inline void band_" + u64(level) + "(State& st) {\n";
        const auto [first, count] = prog.levels[level];
        for (std::uint32_t i = first; i < first + count; ++i) {
            const CompiledOp& op = prog.ops[i];
            src += "    " + slot(op.dst) + " = " + opExpr(op) + ";\n";
        }
        if (count == 0) {
            src += "    (void)st;\n";
        }
        src += "}\n\n";
    }

    // evaluate(): publish every sequential output (they are the sources
    // of the comb graph; deferred from the previous edge), then settle
    // all bands in level order — a full recompute reaches the same fixed
    // point the interpreter's dirty-tracking sweep does.
    src += "void evalAll(State& st) {\n";
    for (std::size_t i = 0; i < prog.seqOps.size(); ++i) {
        const CompiledSeqOp& op = prog.seqOps[i];
        src += "    " + slot(op.out) + " = st.s[" + u64(i) + "] & " + hex64(op.mask) +
               "ULL;\n";
    }
    for (std::size_t level = 0; level < prog.levels.size(); ++level) {
        src += "    band_" + u64(level) + "(st);\n";
    }
    if (prog.seqOps.empty() && prog.levels.empty()) {
        src += "    (void)st;\n";
    }
    src += "}\n\n";

    // step(): evaluate, then the clock edge — sequential updates in
    // CellId order, exactly the interpreter's sweep. A Bram address
    // overflow stops the sweep and reports (seq index, address) to the
    // host, which raises the backend-identical SimulationError; updates
    // before the fault stay applied, matching the interpreter's throw
    // point mid-sweep.
    src += "long long stepOnce(State& st, unsigned long long* faultAddr) {\n";
    src += "    evalAll(st);\n";
    bool usesFaultAddr = false;
    for (std::size_t i = 0; i < prog.seqOps.size(); ++i) {
        const CompiledSeqOp& op = prog.seqOps[i];
        const std::string si = "st.s[" + u64(i) + "]";
        const std::string mask = hex64(op.mask) + "ULL";
        switch (op.kind) {
        case CompiledSeqKind::RegAlways:
            src += "    " + si + " = " + slot(op.d) + " & " + mask + ";\n";
            break;
        case CompiledSeqKind::RegEnable:
            src += "    if (" + slot(op.en) + " != 0ULL) { " + si + " = " + slot(op.d) +
                   " & " + mask + "; }\n";
            break;
        case CompiledSeqKind::Bram: {
            usesFaultAddr = true;
            const std::string base = u64(memOffset[op.mem]);
            src += "    {\n";
            src += "        const unsigned long long addr = " + slot(op.d) + ";\n";
            src += "        if (addr >= " + u64(prog.memDepths[op.mem]) +
                   "ULL) { *faultAddr = addr; return " + u64(i) + "; }\n";
            src += "        if (" + slot(op.we) + " != 0ULL) { st.mem[" + base +
                   "ULL + addr] = " + slot(op.en) + " & " + mask + "; }\n";
            src += "        " + si + " = st.mem[" + base + "ULL + addr];\n";
            src += "    }\n";
            break;
        }
        case CompiledSeqKind::Fsm: {
            src += "    {\n";
            if (op.statusCount == 0) {
                src += "        const bool any = true;\n";
            } else {
                src += "        const bool any = ";
                for (std::uint32_t s = 0; s < op.statusCount; ++s) {
                    if (s != 0) {
                        src += " || ";
                    }
                    src += slot(prog.fsmStatus[op.statusFirst + s]) + " != 0ULL";
                }
                src += ";\n";
            }
            src += "        if (any && " + si + " + 1ULL < " +
                   u64(static_cast<std::uint64_t>(op.param)) + "ULL) { " + si + " = " +
                   si + " + 1ULL; }\n";
            src += "    }\n";
            break;
        }
        }
    }
    if (!usesFaultAddr) {
        src += "    (void)faultAddr;\n";
    }
    src += "    return -1;\n";
    src += "}\n\n";

    // reset(): zero sequential state and memories; net values stay stale
    // until the next evaluate(), mirroring both interpreters.
    src += "void resetState(State& st) {\n";
    src += "    for (unsigned long long i = 0; i < " + u64(prog.seqOps.size()) +
           "ULL; ++i) { st.s[i] = 0ULL; }\n";
    src += "    for (unsigned long long i = 0; i < " + u64(memTotal) +
           "ULL; ++i) { st.mem[i] = 0ULL; }\n";
    src += "}\n\n";
    src += "} // namespace\n\n";

    src += "extern \"C\" {\n\n";
    src += "int socgen_cg_abi(void) { return 1; }\n\n";
    src += "const char* socgen_cg_digest(void) { return \"" + digest.hex() + "\"; }\n\n";
    src += "unsigned long long socgen_cg_net_count(void) { return " +
           u64(prog.netCount) + "ULL; }\n\n";
    src += "void* socgen_cg_create(void) { return new State(); }\n\n";
    src += "void socgen_cg_destroy(void* p) { delete static_cast<State*>(p); }\n\n";
    src += "unsigned long long* socgen_cg_vals(void* p) { return "
           "static_cast<State*>(p)->v; }\n\n";
    src += "unsigned long long* socgen_cg_mem(void* p, unsigned long long idx) {\n";
    if (memOffset.empty()) {
        src += "    (void)p;\n    (void)idx;\n    return nullptr;\n";
    } else {
        src += "    State& st = *static_cast<State*>(p);\n";
        src += "    switch (idx) {\n";
        for (std::size_t i = 0; i < memOffset.size(); ++i) {
            src += "    case " + u64(i) + "ULL: return st.mem + " + u64(memOffset[i]) +
                   "ULL;\n";
        }
        src += "    default: return nullptr;\n";
        src += "    }\n";
    }
    src += "}\n\n";
    src += "void socgen_cg_eval(void* p) { evalAll(*static_cast<State*>(p)); }\n\n";
    src += "long long socgen_cg_step(void* p, unsigned long long* faultAddr) {\n";
    src += "    return stepOnce(*static_cast<State*>(p), faultAddr);\n";
    src += "}\n\n";
    src += "void socgen_cg_reset(void* p) { resetState(*static_cast<State*>(p)); }\n\n";
    src += "} // extern \"C\"\n";

    CodegenUnit unit;
    unit.sourceDigest = digest128(src);
    unit.netlistDigest = digest;
    unit.source = std::move(src);
    return unit;
}

namespace {

/// Runs `argv` with stderr merged into stdout and returns (exit status,
/// merged output). Throws SubprocessError if the binary cannot exec.
std::pair<int, std::string> runTool(const std::vector<std::string>& argv) {
    Subprocess::SpawnOptions options;
    options.mergeStderrIntoStdout = true;
    Subprocess p = Subprocess::spawn(argv, options);
    p.closeStdin();
    std::string out;
    for (;;) {
        const std::optional<std::string> chunk = p.readAvailable(60000);
        if (!chunk.has_value()) {
            break;  // EOF: the tool closed stdout (exited)
        }
        out += *chunk;
    }
    return {p.wait(), std::move(out)};
}

std::string firstLine(const std::string& text) {
    const std::size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

/// Probes one candidate compiler; nullopt when it cannot run or does
/// not answer --version cleanly.
std::optional<CodegenToolchain> probeCompiler(const std::string& cxx) {
    try {
        auto [status, out] = runTool({cxx, "--version"});
        const std::optional<int> code = waitStatusExited(status);
        if (!code.has_value() || *code != 0) {
            return std::nullopt;
        }
        CodegenToolchain tc;
        tc.compiler = cxx;
        tc.identity = cxx + " " + firstLine(out);
        return tc;
    } catch (const SubprocessError&) {
        return std::nullopt;
    }
}

} // namespace

CodegenToolchain resolveCodegenToolchain() {
    // Memoized per SOCGEN_CXX value: tests flip the variable between
    // cases, so the cache key must include it, not just "resolved once".
    static std::mutex mutex;
    static std::map<std::string, std::optional<CodegenToolchain>> cache;

    const std::string envKey = envString("SOCGEN_CXX").value_or("");
    {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = cache.find(envKey);
        if (it != cache.end()) {
            if (it->second.has_value()) {
                return *it->second;
            }
            throw CodegenUnavailableError(
                envKey.empty() ? "no candidate of c++/g++/clang++ answers --version"
                               : format("SOCGEN_CXX=%s is not runnable", envKey.c_str()));
        }
    }

    std::optional<CodegenToolchain> resolved;
    if (!envKey.empty()) {
        resolved = probeCompiler(envKey);
    } else {
        for (const char* candidate : {"c++", "g++", "clang++"}) {
            resolved = probeCompiler(candidate);
            if (resolved.has_value()) {
                break;
            }
        }
    }
    {
        const std::lock_guard<std::mutex> lock(mutex);
        cache[envKey] = resolved;
    }
    if (resolved.has_value()) {
        return *resolved;
    }
    throw CodegenUnavailableError(
        envKey.empty() ? "no candidate of c++/g++/clang++ answers --version"
                       : format("SOCGEN_CXX=%s is not runnable", envKey.c_str()));
}

bool codegenToolchainAvailable() {
    try {
        (void)resolveCodegenToolchain();
        return true;
    } catch (const CodegenUnavailableError&) {
        return false;
    }
}

std::string codegenArtifactKey(const CodegenUnit& unit,
                               std::string_view compilerIdentity) {
    HashStream h;
    h.field(std::string_view("socgen-codegen-key-v1"));
    h.field(kCodegenEmitterVersion);
    h.field(unit.sourceDigest.hi);
    h.field(unit.sourceDigest.lo);
    h.field(compilerIdentity);
    return h.digest().hex();
}

std::string compileSharedObject(const CodegenToolchain& toolchain,
                                const std::string& sourcePath,
                                const std::string& outPath) {
    const std::vector<std::string> argv = {toolchain.compiler, "-std=c++17", "-O2",
                                           "-fPIC", "-shared", sourcePath,
                                           "-o",    outPath};
    int status = 0;
    std::string out;
    try {
        auto [st, text] = runTool(argv);
        status = st;
        out = std::move(text);
    } catch (const SubprocessError& e) {
        throw CodegenCompileError(format("cannot run %s: %s",
                                         toolchain.compiler.c_str(), e.what()),
                                  "");
    }
    const std::optional<int> code = waitStatusExited(status);
    if (!code.has_value() || *code != 0) {
        throw CodegenCompileError(
            format("%s failed compiling %s (exit %d): %s", toolchain.compiler.c_str(),
                   sourcePath.c_str(), code.value_or(-1), out.c_str()),
            out);
    }
    return out;
}

} // namespace socgen::rtl
