#include "socgen/rtl/vcd.hpp"

#include "socgen/common/strings.hpp"

#include <algorithm>
#include <sstream>

namespace socgen::rtl {

namespace {

/// VCD identifier alphabet: printable ASCII, shortest-first.
std::string vcdId(std::size_t index) {
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index != 0);
    return id;
}

std::string binaryOf(std::uint64_t value, unsigned width) {
    std::string bits;
    bits.reserve(width);
    for (unsigned b = width; b-- > 0;) {
        // Nets wider than the 64-bit storage word carry zeros in the
        // untracked high bits (shifting by >= 64 would be UB).
        bits.push_back(b < 64 && ((value >> b) & 1) != 0 ? '1' : '0');
    }
    return bits;
}

} // namespace

VcdTrace::VcdTrace(const Netlist& netlist, const Simulator& simulator,
                   std::vector<NetId> extraNets)
    : netlist_(netlist), simulator_(simulator) {
    std::size_t index = 0;
    const auto addSignal = [&](NetId net, std::string name) {
        const bool present = std::any_of(signals_.begin(), signals_.end(),
                                         [&](const Signal& s) { return s.net == net; });
        if (present) {
            return;
        }
        Signal s;
        s.net = net;
        s.name = sanitizeIdentifier(name);
        s.width = netlist_.net(net).width;
        s.id = vcdId(index++);
        signals_.push_back(std::move(s));
    };
    for (const auto& port : netlist_.ports()) {
        addSignal(port.net, port.name);
    }
    for (NetId net : extraNets) {
        addSignal(net, netlist_.net(net).name);
    }
}

void VcdTrace::sample() {
    for (Signal& s : signals_) {
        const std::uint64_t value = simulator_.netValue(s.net);
        if (samples_ == 0 || value != s.last) {
            s.changes.emplace_back(samples_, value);
            s.last = value;
        }
    }
    ++samples_;
}

std::string VcdTrace::render() const {
    std::ostringstream out;
    out << "$date socgen $end\n";
    out << "$version socgen netlist simulator $end\n";
    out << "$timescale 10ns $end\n";  // one sample per 100 MHz cycle
    out << "$scope module " << sanitizeIdentifier(netlist_.name()) << " $end\n";
    for (const Signal& s : signals_) {
        out << "$var wire " << s.width << ' ' << s.id << ' ' << s.name << " $end\n";
    }
    out << "$upscope $end\n$enddefinitions $end\n";

    // Merge per-signal change lists by time.
    std::size_t time = 0;
    std::vector<std::size_t> cursor(signals_.size(), 0);
    while (time < samples_) {
        bool headerEmitted = false;
        for (std::size_t i = 0; i < signals_.size(); ++i) {
            const Signal& s = signals_[i];
            if (cursor[i] < s.changes.size() && s.changes[cursor[i]].first == time) {
                if (!headerEmitted) {
                    out << '#' << time << '\n';
                    headerEmitted = true;
                }
                const std::uint64_t value = s.changes[cursor[i]].second;
                if (s.width == 1) {
                    out << (value & 1 ? '1' : '0') << s.id << '\n';
                } else {
                    out << 'b' << binaryOf(value, s.width) << ' ' << s.id << '\n';
                }
                ++cursor[i];
            }
        }
        ++time;
    }
    out << '#' << samples_ << '\n';
    return out.str();
}

} // namespace socgen::rtl
