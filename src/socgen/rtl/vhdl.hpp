#pragma once

#include "socgen/rtl/netlist.hpp"

#include <string>

namespace socgen::rtl {

/// Emits a synthesizable-style VHDL-93 entity/architecture pair for a
/// structural netlist. This stands in for the VHDL output of Vivado HLS
/// in the paper's flow (Section IV-A: "each of the application functions
/// is translated by means of HLS into the corresponding VHDL
/// representation").
class VhdlEmitter {
public:
    /// Returns the complete VHDL source text for `netlist`.
    [[nodiscard]] std::string emit(const Netlist& netlist) const;
};

} // namespace socgen::rtl
