#include "socgen/rtl/netlist_sim.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::rtl {

NetlistSimulator::NetlistSimulator(const Netlist& netlist)
    : netlist_(netlist),
      order_(netlist.topoOrder()),
      netValues_(netlist.nets().size(), 0),
      state_(netlist.cells().size(), 0),
      brams_(netlist.cells().size()) {
    for (CellId id = 0; id < netlist_.cells().size(); ++id) {
        const auto& c = netlist_.cell(id);
        if (c.kind == CellKind::Bram) {
            brams_[id].assign(static_cast<std::size_t>(c.param), 0);
        }
    }
}

void NetlistSimulator::setInput(std::string_view port, std::uint64_t value) {
    const Port& p = netlist_.port(port);
    if (p.dir != PortDir::In) {
        throw SimulationError(format("cannot drive output port '%s'",
                                     std::string(port).c_str()));
    }
    netValues_[p.net] = truncate(value, p.width);
}

std::uint64_t NetlistSimulator::truncate(std::uint64_t value, unsigned width) const {
    if (width >= 64) {
        return value;
    }
    return value & ((1ULL << width) - 1ULL);
}

std::uint64_t NetlistSimulator::evalCell(const Cell& c) const {
    const auto in = [&](std::size_t i) { return netValues_[c.inputs[i]]; };
    switch (c.kind) {
    case CellKind::Const: return static_cast<std::uint64_t>(c.param);
    case CellKind::Not: return ~in(0);
    case CellKind::And: return in(0) & in(1);
    case CellKind::Or: return in(0) | in(1);
    case CellKind::Xor: return in(0) ^ in(1);
    case CellKind::Add: return in(0) + in(1);
    case CellKind::Sub: return in(0) - in(1);
    case CellKind::Mul: return in(0) * in(1);
    case CellKind::Div: return in(1) == 0 ? ~0ULL : in(0) / in(1);
    case CellKind::Mod: return in(1) == 0 ? in(0) : in(0) % in(1);
    case CellKind::Shl: return in(1) >= 64 ? 0 : in(0) << in(1);
    case CellKind::Shr: return in(1) >= 64 ? 0 : in(0) >> in(1);
    case CellKind::Eq: return in(0) == in(1) ? 1 : 0;
    case CellKind::Ne: return in(0) != in(1) ? 1 : 0;
    case CellKind::Lt: return in(0) < in(1) ? 1 : 0;
    case CellKind::Le: return in(0) <= in(1) ? 1 : 0;
    case CellKind::Gt: return in(0) > in(1) ? 1 : 0;
    case CellKind::Ge: return in(0) >= in(1) ? 1 : 0;
    case CellKind::Mux: return in(0) == 0 ? in(1) : in(2);
    default:
        throw SimulationError("evalCell called on sequential cell");
    }
}

void NetlistSimulator::evaluate() {
    // Sequential cell outputs reflect stored state.
    for (CellId id = 0; id < netlist_.cells().size(); ++id) {
        const auto& c = netlist_.cell(id);
        if (!isCombinational(c.kind)) {
            netValues_[c.outputs[0]] = truncate(state_[id], c.width);
        }
    }
    for (CellId id : order_) {
        const auto& c = netlist_.cell(id);
        netValues_[c.outputs[0]] = truncate(evalCell(c), c.width);
    }
}

void NetlistSimulator::step() {
    evaluate();
    for (CellId id = 0; id < netlist_.cells().size(); ++id) {
        const auto& c = netlist_.cell(id);
        switch (c.kind) {
        case CellKind::Reg: {
            const bool enabled = c.inputs.size() < 2 || netValues_[c.inputs[1]] != 0;
            if (enabled) {
                state_[id] = truncate(netValues_[c.inputs[0]], c.width);
            }
            break;
        }
        case CellKind::Bram: {
            const auto addr = static_cast<std::size_t>(netValues_[c.inputs[0]]);
            auto& mem = brams_[id];
            if (addr >= mem.size()) {
                throw SimulationError(format("bram '%s' address %zu out of range %zu",
                                             c.name.c_str(), addr, mem.size()));
            }
            if (netValues_[c.inputs[2]] != 0) {
                mem[addr] = truncate(netValues_[c.inputs[1]], c.width);
            }
            state_[id] = mem[addr];  // synchronous read (read-after-write)
            break;
        }
        case CellKind::Fsm: {
            bool anyStatus = c.inputs.empty();
            for (NetId inNet : c.inputs) {
                anyStatus = anyStatus || netValues_[inNet] != 0;
            }
            if (anyStatus && state_[id] + 1 < static_cast<std::uint64_t>(c.param)) {
                ++state_[id];
            }
            break;
        }
        default:
            break;
        }
    }
    ++cycles_;
}

std::uint64_t NetlistSimulator::output(std::string_view port) const {
    return netValues_[netlist_.port(port).net];
}

std::uint64_t NetlistSimulator::netValue(NetId id) const {
    require(id < netValues_.size(), "net id out of range");
    return netValues_[id];
}

std::vector<std::uint64_t> NetlistSimulator::memoryContents(CellId id) const {
    require(id < brams_.size(), "cell id out of range");
    return brams_[id];
}

void NetlistSimulator::reset() {
    std::fill(state_.begin(), state_.end(), 0);
    for (auto& mem : brams_) {
        std::fill(mem.begin(), mem.end(), 0);
    }
    cycles_ = 0;
}

} // namespace socgen::rtl
