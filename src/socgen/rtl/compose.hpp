#pragma once

#include "socgen/rtl/netlist.hpp"

#include <map>
#include <string>
#include <string_view>

namespace socgen::rtl {

/// Structural composition: flattens `src` into `dst` as one instance.
///
/// Every net and cell of `src` is copied into `dst` under
/// `<prefix><name>`, except nets backing ports listed in `portBind`,
/// which are remapped onto the given existing `dst` nets instead — that
/// is how an instance's ports are wired to nets of the parent module.
/// A bound output port's driver cell then drives the parent net (the
/// parent net must be driverless); a bound input port simply reads it.
/// Ports of `src` are NOT re-exported: the caller decides which fresh
/// nets become parent-level ports.
///
/// Returns the mapping from `src` port name to the `dst` net now backing
/// it (bound or freshly created), so callers can chain instances
/// together. Throws socgen::Error when `portBind` names a port `src`
/// does not have, or widths disagree.
[[nodiscard]] std::map<std::string, NetId> flattenInto(
    Netlist& dst, const Netlist& src, std::string_view prefix,
    const std::map<std::string, NetId>& portBind = {});

} // namespace socgen::rtl
