#include "socgen/rtl/compiled_sim.hpp"

#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::rtl {

CompiledSim::CompiledSim(const Netlist& netlist) : CompiledSim(netlist, SimConfig{}) {}

CompiledSim::CompiledSim(const Netlist& netlist, const SimConfig& config)
    : netlist_(netlist), prog_(compileProgram(netlist)),
      threads_(resolveSimThreads(config.threads)),
      grain_(std::max(1u, config.parallelGrainOps)) {
    if (threads_ > 1) {
        pool_ = std::make_unique<BandPool>(threads_);
        // Chunk count per band is bounded by 2 chunks per thread.
        chunkChanged_.resize(static_cast<std::size_t>(threads_) * 2);
        chunkOps_.assign(chunkChanged_.size(), 0);
    }
    vals_.assign(prog_.netCount, 0);
    state_.assign(prog_.seqOps.size(), 0);
    mems_.reserve(prog_.memDepths.size());
    for (const std::size_t depth : prog_.memDepths) {
        mems_.emplace_back(depth, 0);
    }
    pending_.assign(prog_.ops.size(), 0);
    worklist_.assign(prog_.levels.size(), {});
    seqDirtyFlag_.assign(prog_.seqOps.size(), 0);
    markAllOpsDirty();
}

void CompiledSim::markAllOpsDirty() {
    for (std::uint32_t idx = 0; idx < prog_.ops.size(); ++idx) {
        pending_[idx] = 1;
        worklist_[prog_.opLevel[idx]].push_back(idx);
    }
}

void CompiledSim::markConsumers(std::uint32_t net) {
    const std::uint32_t first = prog_.consumerFirst[net];
    const std::uint32_t last = prog_.consumerFirst[net + 1];
    for (std::uint32_t i = first; i < last; ++i) {
        const std::uint32_t op = prog_.consumers[i];
        if (pending_[op] == 0) {
            pending_[op] = 1;
            worklist_[prog_.opLevel[op]].push_back(op);
        }
    }
}

std::uint64_t CompiledSim::evalOp(const CompiledOp& op) const {
    const std::uint64_t a = vals_[op.a];
    const std::uint64_t b = vals_[op.b];
    switch (op.code) {
    case CellKind::Const: return op.imm;
    case CellKind::Not: return ~a & op.mask;
    case CellKind::And: return (a & b) & op.mask;
    case CellKind::Or: return (a | b) & op.mask;
    case CellKind::Xor: return (a ^ b) & op.mask;
    case CellKind::Add: return (a + b) & op.mask;
    case CellKind::Sub: return (a - b) & op.mask;
    case CellKind::Mul: return (a * b) & op.mask;
    case CellKind::Div: return (b == 0 ? ~0ULL : a / b) & op.mask;
    case CellKind::Mod: return (b == 0 ? a : a % b) & op.mask;
    case CellKind::Shl: return (b >= 64 ? 0 : a << b) & op.mask;
    case CellKind::Shr: return (b >= 64 ? 0 : a >> b) & op.mask;
    case CellKind::Eq: return (a == b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Ne: return (a != b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Lt: return (a < b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Le: return (a <= b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Gt: return (a > b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Ge: return (a >= b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Mux: return (a == 0 ? b : vals_[op.c]) & op.mask;
    default:
        throw SimulationError("compiled-sim: evalOp on sequential op");
    }
}

void CompiledSim::publishSeqOutputs() {
    if (seqDirty_.empty()) {
        return;
    }
    for (const std::uint32_t idx : seqDirty_) {
        seqDirtyFlag_[idx] = 0;
        const CompiledSeqOp& op = prog_.seqOps[idx];
        const std::uint64_t v = state_[idx] & op.mask;
        if (vals_[op.out] != v) {
            vals_[op.out] = v;
            markConsumers(op.out);
        }
    }
    seqDirty_.clear();
}

void CompiledSim::evaluateBandParallel(std::vector<std::uint32_t>& bucket) {
    // Partition the band into contiguous chunks of the pending worklist.
    // Ops at one level are mutually independent (an edge raises the
    // consumer's level), so workers touch disjoint pending flags and net
    // slots; only the consumer marking — which mutates higher-level
    // worklists — is deferred past the band fence and replayed serially
    // in chunk order, which is exactly the serial sweep's enqueue order.
    const std::size_t size = bucket.size();
    const std::size_t maxChunks = chunkChanged_.size();
    const std::size_t chunkSize = std::max<std::size_t>(1, (size + maxChunks - 1) / maxChunks);
    const auto chunkCount = static_cast<std::uint32_t>((size + chunkSize - 1) / chunkSize);
    pool_->run(chunkCount, [&](std::uint32_t chunk) {
        const std::size_t first = chunk * chunkSize;
        const std::size_t last = std::min(size, first + chunkSize);
        auto& changed = chunkChanged_[chunk];
        std::uint64_t evaluated = 0;
        for (std::size_t i = first; i < last; ++i) {
            const std::uint32_t idx = bucket[i];
            pending_[idx] = 0;
            const CompiledOp& op = prog_.ops[idx];
            const std::uint64_t v = evalOp(op);
            ++evaluated;
            if (vals_[op.dst] != v) {
                vals_[op.dst] = v;
                changed.push_back(op.dst);
            }
        }
        chunkOps_[chunk] = evaluated;
    });
    for (std::uint32_t chunk = 0; chunk < chunkCount; ++chunk) {
        opsEvaluated_ += chunkOps_[chunk];
        chunkOps_[chunk] = 0;
        for (const std::uint32_t dst : chunkChanged_[chunk]) {
            markConsumers(dst);
        }
        chunkChanged_[chunk].clear();
    }
}

void CompiledSim::evaluate() {
    // Sequential outputs publish first (they are sources of the comb
    // graph), then one sweep over the level worklists. Ops enqueued
    // while settling always land on a strictly higher level, so a single
    // forward pass reaches a fixed point.
    publishSeqOutputs();
    for (std::size_t level = 0; level < worklist_.size(); ++level) {
        auto& bucket = worklist_[level];
        if (pool_ != nullptr && bucket.size() >= grain_) {
            evaluateBandParallel(bucket);
        } else {
            for (std::size_t i = 0; i < bucket.size(); ++i) {
                const std::uint32_t idx = bucket[i];
                pending_[idx] = 0;
                const CompiledOp& op = prog_.ops[idx];
                const std::uint64_t v = evalOp(op);
                ++opsEvaluated_;
                if (vals_[op.dst] != v) {
                    vals_[op.dst] = v;
                    markConsumers(op.dst);
                }
            }
        }
        bucket.clear();
    }
}

void CompiledSim::step() {
    evaluate();
    for (std::uint32_t idx = 0; idx < prog_.seqOps.size(); ++idx) {
        const CompiledSeqOp& op = prog_.seqOps[idx];
        std::uint64_t next = state_[idx];
        switch (op.kind) {
        case CompiledSeqKind::RegAlways:
            next = vals_[op.d] & op.mask;
            break;
        case CompiledSeqKind::RegEnable:
            if (vals_[op.en] != 0) {
                next = vals_[op.d] & op.mask;
            }
            break;
        case CompiledSeqKind::Bram: {
            const auto addr = static_cast<std::size_t>(vals_[op.d]);
            auto& mem = mems_[op.mem];
            if (addr >= mem.size()) {
                throw SimulationError(format("bram '%s' address %zu out of range %zu",
                                             netlist_.cell(op.cell).name.c_str(), addr,
                                             mem.size()));
            }
            if (vals_[op.we] != 0) {
                mem[addr] = vals_[op.en] & op.mask;
            }
            next = mem[addr];  // synchronous read (read-after-write)
            break;
        }
        case CompiledSeqKind::Fsm: {
            bool anyStatus = op.statusCount == 0;
            for (std::uint32_t s = 0; s < op.statusCount && !anyStatus; ++s) {
                anyStatus = vals_[prog_.fsmStatus[op.statusFirst + s]] != 0;
            }
            if (anyStatus && state_[idx] + 1 < static_cast<std::uint64_t>(op.param)) {
                next = state_[idx] + 1;
            }
            break;
        }
        }
        if (next != state_[idx]) {
            state_[idx] = next;
            if (seqDirtyFlag_[idx] == 0) {
                seqDirtyFlag_[idx] = 1;
                seqDirty_.push_back(idx);
            }
        }
    }
    ++cycles_;
}

void CompiledSim::setInput(std::string_view port, std::uint64_t value) {
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    if (p.dir != PortDir::In) {
        throw SimulationError(format("cannot drive output port '%s'",
                                     std::string(port).c_str()));
    }
    const std::uint64_t v = value & compiledMaskForWidth(p.width);
    if (vals_[p.net] != v) {
        vals_[p.net] = v;
        markConsumers(p.net);
    }
}

std::uint64_t CompiledSim::output(std::string_view port) const {
    const auto it = prog_.portsByName.find(port);
    const Port& p = it != prog_.portsByName.end() ? *it->second : netlist_.port(port);
    return vals_[p.net];
}

std::uint64_t CompiledSim::netValue(NetId id) const {
    require(id < vals_.size(), "net id out of range");
    return vals_[id];
}

std::vector<std::uint64_t> CompiledSim::memoryContents(CellId id) const {
    require(id < netlist_.cells().size(), "cell id out of range");
    for (const CompiledSeqOp& op : prog_.seqOps) {
        if (op.cell == id && op.kind == CompiledSeqKind::Bram) {
            return mems_[op.mem];
        }
    }
    return {};
}

void CompiledSim::reset() {
    std::fill(state_.begin(), state_.end(), 0);
    for (auto& mem : mems_) {
        std::fill(mem.begin(), mem.end(), 0);
    }
    cycles_ = 0;
    // Publish the zeroed state at the next evaluate(), mirroring the
    // event-driven engine (reset leaves net values stale until then).
    for (std::uint32_t idx = 0; idx < prog_.seqOps.size(); ++idx) {
        if (seqDirtyFlag_[idx] == 0) {
            seqDirtyFlag_[idx] = 1;
            seqDirty_.push_back(idx);
        }
    }
}

} // namespace socgen::rtl
