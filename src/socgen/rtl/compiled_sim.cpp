#include "socgen/rtl/compiled_sim.hpp"

#include "socgen/common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <numeric>

namespace socgen::rtl {

namespace {

std::uint64_t maskForWidth(unsigned width) {
    return width >= 64 ? ~0ULL : (1ULL << width) - 1ULL;
}

/// Cell kinds denied via SOCGEN_COMPILED_SIM_DENY (test hook for the
/// Auto-fallback rule). Comma-separated, case-insensitive kind names.
bool kindDeniedByEnv(CellKind kind) {
    const char* env = std::getenv("SOCGEN_COMPILED_SIM_DENY");
    if (env == nullptr || *env == '\0') {
        return false;
    }
    std::string upper;
    for (const char* p = env; *p != '\0'; ++p) {
        upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
    }
    const std::string name(cellKindName(kind));
    std::size_t pos = 0;
    while (pos < upper.size()) {
        const std::size_t comma = upper.find(',', pos);
        const std::size_t end = comma == std::string::npos ? upper.size() : comma;
        std::size_t first = pos;
        std::size_t last = end;
        while (first < last && std::isspace(static_cast<unsigned char>(upper[first]))) {
            ++first;
        }
        while (last > first && std::isspace(static_cast<unsigned char>(upper[last - 1]))) {
            --last;
        }
        if (upper.compare(first, last - first, name) == 0) {
            return true;
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return false;
}

} // namespace

CompiledSim::CompiledSim(const Netlist& netlist) : netlist_(netlist) {
    compile(netlist);
    vals_.assign(netlist.nets().size(), 0);
    state_.assign(seqOps_.size(), 0);
    pending_.assign(ops_.size(), 0);
    worklist_.assign(levels_.size(), {});
    seqDirtyFlag_.assign(seqOps_.size(), 0);
    for (auto& port : netlist.ports()) {
        portsByName_.emplace(port.name, &port);
    }
    markAllOpsDirty();
}

void CompiledSim::compile(const Netlist& netlist) {
    // Every current kind has a lowering; the deny hook (and future kinds
    // without one) reports UnsupportedNetlistError so Auto falls back.
    for (const Cell& c : netlist.cells()) {
        if (kindDeniedByEnv(c.kind)) {
            throw UnsupportedNetlistError(
                format("netlist %s: cell kind %s has no compiled lowering",
                       netlist.name().c_str(), std::string(cellKindName(c.kind)).c_str()));
        }
    }

    // Levelize: longest combinational path from a source (input port,
    // constant, or sequential output) to each combinational cell.
    const std::vector<CellId> topo = netlist.topoOrder();
    std::vector<std::uint32_t> cellLevel(netlist.cells().size(), 0);
    std::uint32_t maxLevel = 0;
    for (CellId id : topo) {
        const Cell& c = netlist.cell(id);
        std::uint32_t level = 0;
        for (NetId in : c.inputs) {
            const CellId driver = netlist.net(in).driver;
            if (driver != kInvalid && isCombinational(netlist.cell(driver).kind)) {
                level = std::max(level, cellLevel[driver] + 1);
            }
        }
        cellLevel[id] = level;
        maxLevel = std::max(maxLevel, level);
    }

    // Flatten combinational cells into ops sorted by (level, topo pos):
    // a stable sort of a valid topological order by level is still a
    // valid evaluation order, and groups each level contiguously.
    std::vector<CellId> byLevel = topo;
    std::stable_sort(byLevel.begin(), byLevel.end(), [&](CellId x, CellId y) {
        return cellLevel[x] < cellLevel[y];
    });
    ops_.reserve(byLevel.size());
    opLevel_.reserve(byLevel.size());
    std::vector<std::uint32_t> opOfCell(netlist.cells().size(), kInvalid);
    for (CellId id : byLevel) {
        const Cell& c = netlist.cell(id);
        Op op;
        op.code = c.kind;
        op.dst = c.outputs[0];
        op.mask = maskForWidth(c.width);
        if (!c.inputs.empty()) {
            op.a = c.inputs[0];
        }
        if (c.inputs.size() > 1) {
            op.b = c.inputs[1];
        }
        if (c.inputs.size() > 2) {
            op.c = c.inputs[2];
        }
        if (c.kind == CellKind::Const) {
            op.imm = static_cast<std::uint64_t>(c.param) & op.mask;
        }
        opOfCell[id] = static_cast<std::uint32_t>(ops_.size());
        ops_.push_back(op);
        opLevel_.push_back(cellLevel[id]);
    }
    levels_.assign(maxLevel + 1, {0, 0});
    for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
        auto& [first, count] = levels_[opLevel_[idx]];
        if (count == 0) {
            first = idx;
        }
        ++count;
    }

    // Consumer CSR: for each net, the combinational ops reading it.
    std::vector<std::uint32_t> counts(netlist.nets().size(), 0);
    for (CellId id : byLevel) {
        for (NetId in : netlist.cell(id).inputs) {
            ++counts[in];
        }
    }
    consumerFirst_.assign(netlist.nets().size() + 1, 0);
    for (std::size_t net = 0; net < counts.size(); ++net) {
        consumerFirst_[net + 1] = consumerFirst_[net] + counts[net];
    }
    consumers_.assign(consumerFirst_.back(), 0);
    std::vector<std::uint32_t> cursor(consumerFirst_.begin(), consumerFirst_.end() - 1);
    for (CellId id : byLevel) {
        for (NetId in : netlist.cell(id).inputs) {
            consumers_[cursor[in]++] = opOfCell[id];
        }
    }

    // Sequential update program, in CellId order (matching the
    // event-driven engine's clock-edge sweep).
    for (CellId id = 0; id < netlist.cells().size(); ++id) {
        const Cell& c = netlist.cell(id);
        if (isCombinational(c.kind)) {
            continue;
        }
        SeqOp op;
        op.cell = id;
        op.out = c.outputs[0];
        op.mask = maskForWidth(c.width);
        op.param = c.param;
        switch (c.kind) {
        case CellKind::Reg:
            op.kind = c.inputs.size() < 2 ? SeqKind::RegAlways : SeqKind::RegEnable;
            op.d = c.inputs[0];
            if (c.inputs.size() > 1) {
                op.en = c.inputs[1];
            }
            break;
        case CellKind::Bram:
            op.kind = SeqKind::Bram;
            op.d = c.inputs[0];   // addr
            op.en = c.inputs[1];  // wdata
            op.we = c.inputs[2];
            op.mem = static_cast<std::uint32_t>(mems_.size());
            mems_.emplace_back(static_cast<std::size_t>(c.param), 0);
            break;
        case CellKind::Fsm:
            op.kind = SeqKind::Fsm;
            op.statusFirst = static_cast<std::uint32_t>(fsmStatus_.size());
            op.statusCount = static_cast<std::uint32_t>(c.inputs.size());
            for (NetId in : c.inputs) {
                fsmStatus_.push_back(in);
            }
            break;
        default:
            throw UnsupportedNetlistError(
                format("netlist %s: sequential cell kind %s has no compiled lowering",
                       netlist.name().c_str(), std::string(cellKindName(c.kind)).c_str()));
        }
        seqOps_.push_back(op);
    }
}

void CompiledSim::markAllOpsDirty() {
    for (std::uint32_t idx = 0; idx < ops_.size(); ++idx) {
        pending_[idx] = 1;
        worklist_[opLevel_[idx]].push_back(idx);
    }
}

void CompiledSim::markConsumers(std::uint32_t net) {
    const std::uint32_t first = consumerFirst_[net];
    const std::uint32_t last = consumerFirst_[net + 1];
    for (std::uint32_t i = first; i < last; ++i) {
        const std::uint32_t op = consumers_[i];
        if (pending_[op] == 0) {
            pending_[op] = 1;
            worklist_[opLevel_[op]].push_back(op);
        }
    }
}

std::uint64_t CompiledSim::evalOp(const Op& op) const {
    const std::uint64_t a = vals_[op.a];
    const std::uint64_t b = vals_[op.b];
    switch (op.code) {
    case CellKind::Const: return op.imm;
    case CellKind::Not: return ~a & op.mask;
    case CellKind::And: return (a & b) & op.mask;
    case CellKind::Or: return (a | b) & op.mask;
    case CellKind::Xor: return (a ^ b) & op.mask;
    case CellKind::Add: return (a + b) & op.mask;
    case CellKind::Sub: return (a - b) & op.mask;
    case CellKind::Mul: return (a * b) & op.mask;
    case CellKind::Div: return (b == 0 ? ~0ULL : a / b) & op.mask;
    case CellKind::Mod: return (b == 0 ? a : a % b) & op.mask;
    case CellKind::Shl: return (b >= 64 ? 0 : a << b) & op.mask;
    case CellKind::Shr: return (b >= 64 ? 0 : a >> b) & op.mask;
    case CellKind::Eq: return (a == b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Ne: return (a != b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Lt: return (a < b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Le: return (a <= b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Gt: return (a > b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Ge: return (a >= b ? 1ULL : 0ULL) & op.mask;
    case CellKind::Mux: return (a == 0 ? b : vals_[op.c]) & op.mask;
    default:
        throw SimulationError("compiled-sim: evalOp on sequential op");
    }
}

void CompiledSim::publishSeqOutputs() {
    if (seqDirty_.empty()) {
        return;
    }
    for (const std::uint32_t idx : seqDirty_) {
        seqDirtyFlag_[idx] = 0;
        const SeqOp& op = seqOps_[idx];
        const std::uint64_t v = state_[idx] & op.mask;
        if (vals_[op.out] != v) {
            vals_[op.out] = v;
            markConsumers(op.out);
        }
    }
    seqDirty_.clear();
}

void CompiledSim::evaluate() {
    // Sequential outputs publish first (they are sources of the comb
    // graph), then one sweep over the level worklists. Ops enqueued
    // while settling always land on a strictly higher level, so a single
    // forward pass reaches a fixed point.
    publishSeqOutputs();
    for (std::size_t level = 0; level < worklist_.size(); ++level) {
        auto& bucket = worklist_[level];
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const std::uint32_t idx = bucket[i];
            pending_[idx] = 0;
            const Op& op = ops_[idx];
            const std::uint64_t v = evalOp(op);
            ++opsEvaluated_;
            if (vals_[op.dst] != v) {
                vals_[op.dst] = v;
                markConsumers(op.dst);
            }
        }
        bucket.clear();
    }
}

void CompiledSim::step() {
    evaluate();
    for (std::uint32_t idx = 0; idx < seqOps_.size(); ++idx) {
        const SeqOp& op = seqOps_[idx];
        std::uint64_t next = state_[idx];
        switch (op.kind) {
        case SeqKind::RegAlways:
            next = vals_[op.d] & op.mask;
            break;
        case SeqKind::RegEnable:
            if (vals_[op.en] != 0) {
                next = vals_[op.d] & op.mask;
            }
            break;
        case SeqKind::Bram: {
            const auto addr = static_cast<std::size_t>(vals_[op.d]);
            auto& mem = mems_[op.mem];
            if (addr >= mem.size()) {
                throw SimulationError(format("bram '%s' address %zu out of range %zu",
                                             netlist_.cell(op.cell).name.c_str(), addr,
                                             mem.size()));
            }
            if (vals_[op.we] != 0) {
                mem[addr] = vals_[op.en] & op.mask;
            }
            next = mem[addr];  // synchronous read (read-after-write)
            break;
        }
        case SeqKind::Fsm: {
            bool anyStatus = op.statusCount == 0;
            for (std::uint32_t s = 0; s < op.statusCount && !anyStatus; ++s) {
                anyStatus = vals_[fsmStatus_[op.statusFirst + s]] != 0;
            }
            if (anyStatus && state_[idx] + 1 < static_cast<std::uint64_t>(op.param)) {
                next = state_[idx] + 1;
            }
            break;
        }
        }
        if (next != state_[idx]) {
            state_[idx] = next;
            if (seqDirtyFlag_[idx] == 0) {
                seqDirtyFlag_[idx] = 1;
                seqDirty_.push_back(idx);
            }
        }
    }
    ++cycles_;
}

void CompiledSim::setInput(std::string_view port, std::uint64_t value) {
    const auto it = portsByName_.find(std::string(port));
    const Port& p = it != portsByName_.end() ? *it->second : netlist_.port(port);
    if (p.dir != PortDir::In) {
        throw SimulationError(format("cannot drive output port '%s'",
                                     std::string(port).c_str()));
    }
    const std::uint64_t v = value & maskForWidth(p.width);
    if (vals_[p.net] != v) {
        vals_[p.net] = v;
        markConsumers(p.net);
    }
}

std::uint64_t CompiledSim::output(std::string_view port) const {
    const auto it = portsByName_.find(std::string(port));
    const Port& p = it != portsByName_.end() ? *it->second : netlist_.port(port);
    return vals_[p.net];
}

std::uint64_t CompiledSim::netValue(NetId id) const {
    require(id < vals_.size(), "net id out of range");
    return vals_[id];
}

std::vector<std::uint64_t> CompiledSim::memoryContents(CellId id) const {
    require(id < netlist_.cells().size(), "cell id out of range");
    for (const SeqOp& op : seqOps_) {
        if (op.cell == id && op.kind == SeqKind::Bram) {
            return mems_[op.mem];
        }
    }
    return {};
}

void CompiledSim::reset() {
    std::fill(state_.begin(), state_.end(), 0);
    for (auto& mem : mems_) {
        std::fill(mem.begin(), mem.end(), 0);
    }
    cycles_ = 0;
    // Publish the zeroed state at the next evaluate(), mirroring the
    // event-driven engine (reset leaves net values stale until then).
    for (std::uint32_t idx = 0; idx < seqOps_.size(); ++idx) {
        if (seqDirtyFlag_[idx] == 0) {
            seqDirtyFlag_[idx] = 1;
            seqDirty_.push_back(idx);
        }
    }
}

} // namespace socgen::rtl
