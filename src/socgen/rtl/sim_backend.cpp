#include "socgen/rtl/sim_backend.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/rtl/compiled_sim.hpp"
#include "socgen/rtl/netlist_sim.hpp"

#include <algorithm>

namespace socgen::rtl {

std::string_view simBackendName(SimBackend backend) {
    switch (backend) {
    case SimBackend::Auto: return "auto";
    case SimBackend::EventDriven: return "event";
    case SimBackend::Compiled: return "compiled";
    }
    return "?";
}

SimBackend simBackendFromString(std::string_view text) {
    if (text == "auto") {
        return SimBackend::Auto;
    }
    if (text == "event" || text == "event-driven") {
        return SimBackend::EventDriven;
    }
    if (text == "compiled") {
        return SimBackend::Compiled;
    }
    throw Error(format("unknown sim backend '%s' (expected auto|event|compiled)",
                       std::string(text).c_str()));
}

SimBackend simBackendFromEnv(SimBackend fallback) {
    const std::optional<std::string> env = envString("SOCGEN_SIM_BACKEND");
    if (!env.has_value()) {
        return fallback;
    }
    try {
        return simBackendFromString(*env);
    } catch (const Error& e) {
        // Name the variable: "compiledd" in a CI matrix must fail the job
        // with a pointer to the line to fix, not silently pick a backend.
        throw Error(format("env SOCGEN_SIM_BACKEND: %s", e.what()));
    }
}

SimBackend resolveSimBackend(SimBackend requested) {
    if (requested == SimBackend::Auto) {
        requested = simBackendFromEnv(SimBackend::Auto);
    }
    return requested == SimBackend::Auto ? SimBackend::Compiled : requested;
}

unsigned resolveSimThreads(unsigned requested) {
    if (requested == 0) {
        // Malformed values (SOCGEN_SIM_THREADS=4x, =abc, =0) are rejected
        // with a diagnostic instead of silently running serial.
        requested = envUnsigned("SOCGEN_SIM_THREADS").value_or(1);
    }
    return std::min(requested, kMaxSimThreads);
}

unsigned resolveSimLanes(unsigned requested) {
    if (requested == 0) {
        requested = 1;
    }
    return std::min(requested, kMaxSimLanes);
}

std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist, SimBackend backend) {
    SimConfig config;
    config.backend = backend;
    return makeSimulator(netlist, config);
}

std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist, const SimConfig& config) {
    SimBackend backend = config.backend;
    if (backend == SimBackend::Auto) {
        backend = simBackendFromEnv(SimBackend::Auto);
    }
    switch (backend) {
    case SimBackend::EventDriven:
        return std::make_unique<NetlistSimulator>(netlist);
    case SimBackend::Compiled:
        return std::make_unique<CompiledSim>(netlist, config);
    case SimBackend::Auto:
        break;
    }
    // Auto: compiled unless the compiler reports an unsupported
    // construct, in which case the event-driven engine covers it.
    try {
        return std::make_unique<CompiledSim>(netlist, config);
    } catch (const UnsupportedNetlistError&) {
        return std::make_unique<NetlistSimulator>(netlist);
    }
}

} // namespace socgen::rtl
