#include "socgen/rtl/sim_backend.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/rtl/codegen_emit.hpp"
#include "socgen/rtl/codegen_sim.hpp"
#include "socgen/rtl/compiled_sim.hpp"
#include "socgen/rtl/netlist_sim.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

namespace socgen::rtl {
namespace {

std::mutex g_hookMutex;
SimBackendFallbackHook g_fallbackHook;

/// Fires the installed hook (or the default log line) for one hop of
/// the degradation chain.
void reportFallback(const Netlist& netlist, SimBackend requested, SimBackend chosen,
                    const std::string& reason) {
    SimBackendFallback event;
    event.netlist = netlist.name();
    event.requested = requested;
    event.chosen = chosen;
    event.reason = reason;
    SimBackendFallbackHook hook;
    {
        const std::lock_guard<std::mutex> lock(g_hookMutex);
        hook = g_fallbackHook;
    }
    if (hook) {
        hook(event);
        return;
    }
    Logger::global().warn(format("sim: netlist '%s': %s backend unavailable, using "
                                 "%s (%s)",
                                 event.netlist.c_str(),
                                 std::string(simBackendName(requested)).c_str(),
                                 std::string(simBackendName(chosen)).c_str(),
                                 reason.c_str()));
}

} // namespace

SimBackendFallbackHook setSimBackendFallbackHook(SimBackendFallbackHook hook) {
    const std::lock_guard<std::mutex> lock(g_hookMutex);
    std::swap(g_fallbackHook, hook);
    return hook;
}

std::string_view simBackendName(SimBackend backend) {
    switch (backend) {
    case SimBackend::Auto: return "auto";
    case SimBackend::EventDriven: return "event";
    case SimBackend::Compiled: return "compiled";
    case SimBackend::Codegen: return "codegen";
    }
    return "?";
}

SimBackend simBackendFromString(std::string_view text) {
    if (text == "auto") {
        return SimBackend::Auto;
    }
    if (text == "event" || text == "event-driven") {
        return SimBackend::EventDriven;
    }
    if (text == "compiled") {
        return SimBackend::Compiled;
    }
    if (text == "codegen") {
        return SimBackend::Codegen;
    }
    throw Error(format("unknown sim backend '%s' (expected auto|event|compiled|codegen)",
                       std::string(text).c_str()));
}

SimBackend simBackendFromEnv(SimBackend fallback) {
    const std::optional<std::string> env = envString("SOCGEN_SIM_BACKEND");
    if (!env.has_value()) {
        return fallback;
    }
    try {
        return simBackendFromString(*env);
    } catch (const Error& e) {
        // Name the variable: "compiledd" in a CI matrix must fail the job
        // with a pointer to the line to fix, not silently pick a backend.
        throw Error(format("env SOCGEN_SIM_BACKEND: %s", e.what()));
    }
}

SimBackend resolveSimBackend(SimBackend requested) {
    if (requested == SimBackend::Auto) {
        requested = simBackendFromEnv(SimBackend::Auto);
    }
    return requested == SimBackend::Auto ? SimBackend::Compiled : requested;
}

unsigned resolveSimThreads(unsigned requested) {
    if (requested == 0) {
        // Malformed values (SOCGEN_SIM_THREADS=4x, =abc, =0) are rejected
        // with a diagnostic instead of silently running serial.
        requested = envUnsigned("SOCGEN_SIM_THREADS").value_or(1);
    }
    return std::min(requested, kMaxSimThreads);
}

unsigned resolveSimLanes(unsigned requested) {
    if (requested == 0) {
        requested = 1;
    }
    return std::min(requested, kMaxSimLanes);
}

std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist, SimBackend backend) {
    SimConfig config;
    config.backend = backend;
    return makeSimulator(netlist, config);
}

std::unique_ptr<Simulator> makeSimulator(const Netlist& netlist, const SimConfig& config) {
    SimBackend backend = config.backend;
    if (backend == SimBackend::Auto) {
        backend = simBackendFromEnv(SimBackend::Auto);
    }
    switch (backend) {
    case SimBackend::EventDriven:
        return std::make_unique<NetlistSimulator>(netlist);
    case SimBackend::Compiled:
        return std::make_unique<CompiledSim>(netlist, config);
    case SimBackend::Codegen:
        // Graceful chain Codegen → Compiled → EventDriven: a construct
        // neither compiled path lowers jumps straight to the interpreter;
        // a codegen-only failure (no host compiler, compile or load
        // error) falls back to the compiled interpreter. Every hop fires
        // the structured fallback hook — degradation is observable, but
        // the caller always gets a working, bit-identical simulator.
        try {
            return std::make_unique<CodegenSim>(netlist, config);
        } catch (const UnsupportedNetlistError& e) {
            reportFallback(netlist, SimBackend::Codegen, SimBackend::EventDriven,
                           e.what());
            return std::make_unique<NetlistSimulator>(netlist);
        } catch (const CodegenError& e) {
            reportFallback(netlist, SimBackend::Codegen, SimBackend::Compiled, e.what());
        }
        try {
            return std::make_unique<CompiledSim>(netlist, config);
        } catch (const UnsupportedNetlistError& e) {
            reportFallback(netlist, SimBackend::Compiled, SimBackend::EventDriven,
                           e.what());
            return std::make_unique<NetlistSimulator>(netlist);
        }
    case SimBackend::Auto:
        break;
    }
    // Auto: compiled unless the compiler reports an unsupported
    // construct, in which case the event-driven engine covers it.
    try {
        return std::make_unique<CompiledSim>(netlist, config);
    } catch (const UnsupportedNetlistError&) {
        return std::make_unique<NetlistSimulator>(netlist);
    }
}

} // namespace socgen::rtl
