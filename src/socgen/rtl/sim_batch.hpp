#pragma once

#include "socgen/common/error.hpp"
#include "socgen/rtl/band_pool.hpp"
#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::rtl {

/// A batch of up to 64 independent stimulus lanes simulated over one
/// shared netlist. Every lane behaves exactly like its own scalar
/// Simulator run — same values on every net on every cycle, same final
/// memory contents, and a lane that would have thrown SimulationError
/// instead faults on the same cycle with the same message while the
/// remaining lanes keep running (the whole-batch step cannot throw for
/// one lane's stimulus). The lane-independence differential suite
/// (tests/test_rtl_batch_sim.cpp) enforces this contract against 64
/// scalar CompiledSim runs, net for net, cycle for cycle.
class SimBatch {
public:
    virtual ~SimBatch() = default;

    /// "compiled-batch" or "scalar-farm" — which execution strategy runs.
    [[nodiscard]] virtual std::string_view backendName() const = 0;

    [[nodiscard]] virtual unsigned laneCount() const = 0;

    /// Drives an input port on one lane for subsequent evaluations.
    /// No-op on a faulted lane: the lane is frozen exactly where the
    /// scalar run would have halted.
    virtual void setInput(std::string_view port, unsigned lane, std::uint64_t value) = 0;

    /// Drives an input port identically on every lane.
    void setInputAll(std::string_view port, std::uint64_t value);

    /// Settles combinational logic on every lane.
    virtual void evaluate() = 0;

    /// evaluate() then advance registers/BRAMs/FSMs by one clock edge on
    /// every non-faulted lane.
    virtual void step() = 0;

    [[nodiscard]] virtual std::uint64_t output(std::string_view port,
                                               unsigned lane) const = 0;
    [[nodiscard]] virtual std::uint64_t netValue(NetId id, unsigned lane) const = 0;
    [[nodiscard]] virtual std::vector<std::uint64_t> memoryContents(CellId id,
                                                                    unsigned lane) const = 0;

    /// A faulted lane hit a condition a scalar run reports by throwing
    /// (e.g. BRAM address out of range). It froze at the fault cycle;
    /// other lanes are unaffected.
    [[nodiscard]] virtual bool laneFaulted(unsigned lane) const = 0;
    /// cycleCount() at the moment the lane faulted (the scalar engines
    /// throw before incrementing their counter, so the two agree).
    [[nodiscard]] virtual std::uint64_t laneFaultCycle(unsigned lane) const = 0;
    /// The SimulationError message the scalar run would have thrown.
    [[nodiscard]] virtual const std::string& laneFaultMessage(unsigned lane) const = 0;

    /// Resets all sequential state on all lanes (inputs retained);
    /// faulted lanes rejoin the batch.
    virtual void reset() = 0;

    [[nodiscard]] virtual std::uint64_t cycleCount() const = 0;
};

/// Read-only Simulator adapter over one lane of a SimBatch, so
/// lane-agnostic consumers — VcdTrace above all — can extract per-lane
/// signal traces from a batched run. setInput() drives the viewed lane;
/// the advancing calls (evaluate/step/reset) throw SimulationError,
/// because advancing one lane of a batch is not a meaningful operation:
/// step the SimBatch itself.
class SimBatchLane final : public Simulator {
public:
    SimBatchLane(SimBatch& batch, unsigned lane);

    [[nodiscard]] std::string_view backendName() const override { return "batch-lane"; }
    void setInput(std::string_view port, std::uint64_t value) override;
    void evaluate() override;
    void step() override;
    [[nodiscard]] std::uint64_t output(std::string_view port) const override;
    [[nodiscard]] std::uint64_t netValue(NetId id) const override;
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id) const override;
    void reset() override;
    [[nodiscard]] std::uint64_t cycleCount() const override;
    [[nodiscard]] unsigned lane() const { return lane_; }

private:
    SimBatch& batch_;
    unsigned lane_;
};

/// 64-way bit-parallel batched executor over a CompiledProgram: net
/// values are stored lane-strided (lane-contiguous per net) in the same
/// word-packed two-state form as the scalar engine, so one sweep over
/// the op program evaluates every lane — the op fetch, dispatch, dirty
/// tracking and consumer marking are paid once per op instead of once
/// per op per stimulus vector, and the per-lane inner loops are plain
/// word operations over contiguous memory the compiler vectorizes.
///
/// Dirty tracking is batch-wide: an op re-evaluates when any lane's
/// input changed, which cannot diverge from per-lane skipping because
/// re-evaluating an op with unchanged inputs reproduces its output
/// (evaluation is pure). Partitioned evaluation (SimConfig::threads)
/// uses the same chunked level bands as the scalar engine.
class BatchCompiledSim final : public SimBatch {
public:
    /// Compiles `netlist` (kept by reference; must outlive the sim) for
    /// `config.batchLanes` lanes (0 means 1; at most kMaxSimLanes).
    /// Throws UnsupportedNetlistError when a cell kind cannot be lowered.
    BatchCompiledSim(const Netlist& netlist, const SimConfig& config);

    [[nodiscard]] std::string_view backendName() const override { return "compiled-batch"; }
    [[nodiscard]] unsigned laneCount() const override { return lanes_; }
    void setInput(std::string_view port, unsigned lane, std::uint64_t value) override;
    void evaluate() override;
    void step() override;
    [[nodiscard]] std::uint64_t output(std::string_view port, unsigned lane) const override;
    [[nodiscard]] std::uint64_t netValue(NetId id, unsigned lane) const override;
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id,
                                                            unsigned lane) const override;
    [[nodiscard]] bool laneFaulted(unsigned lane) const override;
    [[nodiscard]] std::uint64_t laneFaultCycle(unsigned lane) const override;
    [[nodiscard]] const std::string& laneFaultMessage(unsigned lane) const override;
    void reset() override;
    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

    // -- program introspection (tests, benchmarks) ----------------------------
    [[nodiscard]] std::size_t opCount() const { return prog_.ops.size(); }
    [[nodiscard]] std::size_t levelCount() const { return prog_.levels.size(); }
    /// Batched op evaluations (one per op sweep, covering all lanes).
    [[nodiscard]] std::uint64_t opsEvaluated() const { return opsEvaluated_; }
    [[nodiscard]] unsigned threadCount() const { return threads_; }

private:
    struct LaneFault {
        bool faulted = false;
        std::uint64_t cycle = 0;
        std::string message;
    };

    void markAllOpsDirty();
    void markConsumers(std::uint32_t net);
    void publishSeqOutputs();
    /// Evaluates one op across all lanes; returns true when any lane's
    /// output word changed.
    bool evalOpLanes(const CompiledOp& op);
    void evaluateBandParallel(std::vector<std::uint32_t>& bucket);
    void faultLane(unsigned lane, std::uint64_t cycle, std::string message);

    const Netlist& netlist_;
    CompiledProgram prog_;
    unsigned lanes_ = 1;

    unsigned threads_ = 1;
    unsigned grain_ = 256;
    std::unique_ptr<BandPool> pool_;
    std::vector<std::vector<std::uint32_t>> chunkChanged_;
    std::vector<std::uint64_t> chunkOps_;

    // Runtime state, lane-strided: slot(net, lane) = net * lanes_ + lane.
    std::vector<std::uint64_t> vals_;
    std::vector<std::uint64_t> state_;          ///< per seq op × lane
    std::vector<std::vector<std::uint64_t>> mems_;  ///< per mem: depth × lanes
    std::vector<std::uint8_t> pending_;
    std::vector<std::vector<std::uint32_t>> worklist_;
    std::vector<std::uint32_t> seqDirty_;
    std::vector<std::uint8_t> seqDirtyFlag_;
    std::uint64_t laneActive_ = 0;              ///< bit l = lane l not faulted
    std::vector<LaneFault> faults_;
    std::uint64_t cycles_ = 0;
    std::uint64_t opsEvaluated_ = 0;
};

/// Builds a batch simulator for `netlist` with `config.batchLanes`
/// lanes, following the same selection rule as makeSimulator:
///  - Compiled: BatchCompiledSim; throws if unsupported.
///  - EventDriven: a scalar farm of event-driven engines (the always-
///    available fallback; lanes run sequentially, semantics identical).
///  - Auto: env override first, then BatchCompiledSim with automatic
///    fallback to the scalar farm when compilation reports an
///    unsupported construct.
[[nodiscard]] std::unique_ptr<SimBatch> makeSimBatch(const Netlist& netlist,
                                                     const SimConfig& config);

/// Convenience: `lanes` lanes under `backend`, default knobs otherwise.
[[nodiscard]] std::unique_ptr<SimBatch> makeSimBatch(const Netlist& netlist, unsigned lanes,
                                                     SimBackend backend = SimBackend::Auto);

} // namespace socgen::rtl
