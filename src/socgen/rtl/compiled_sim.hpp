#pragma once

#include "socgen/common/error.hpp"
#include "socgen/rtl/band_pool.hpp"
#include "socgen/rtl/compiled_program.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace socgen::rtl {

/// Compiled levelized simulation backend.
///
/// Construction levelizes the combinational subgraph once into a
/// CompiledProgram (see compiled_program.hpp): one fixed-layout op per
/// combinational cell sorted by level, plus a sequential update program
/// applied at the clock edge.
///
/// Execution is two-state (0/1 per bit), word-packed: every net's value
/// lives in one 64-bit word of a flat array indexed by NetId. Dirty
/// tracking skips quiescent regions: an op re-evaluates only when one of
/// its input nets changed value, and a changed output enqueues its
/// consumers into per-level worklists, so a settled subgraph costs
/// nothing per cycle. There is no per-event heap scheduling anywhere:
/// a whole cycle is one sweep over the level worklists plus one sweep
/// over the sequential update program.
///
/// Partitioned evaluation (SimConfig::threads > 1): a level band whose
/// pending-op count reaches SimConfig::parallelGrainOps is split into
/// contiguous chunks evaluated on a persistent BandPool. Ops at one
/// level never feed each other (an edge raises the consumer's level),
/// so chunk workers write disjoint net slots; changed outputs are
/// recorded per chunk and their consumers are enqueued after the
/// band-wide fence, in chunk-index order — the same order the serial
/// sweep produces — so worklists, values, and opsEvaluated() are
/// byte-identical at any thread count (enforced by the diff-sim
/// thread-parity suite).
///
/// Observable semantics are bit-identical to NetlistSimulator at every
/// post-evaluate()/post-step() point (enforced by tests/test_rtl_diff_sim);
/// values read between a step() and the next evaluate() follow the same
/// staleness rule as the event-driven engine (sequential outputs publish
/// at the start of the next evaluate()).
///
/// Test hook: the SOCGEN_COMPILED_SIM_DENY environment variable may hold
/// a comma-separated list of cell-kind names (e.g. "FSM,BRAM"); netlists
/// containing a denied kind are reported as unsupported, exercising the
/// Auto-fallback path without inventing an unsupported construct.
class CompiledSim final : public Simulator {
public:
    /// Compiles `netlist` (kept by reference; must outlive the sim).
    /// Throws UnsupportedNetlistError when a cell kind cannot be lowered
    /// and socgen::Error on structural problems (combinational cycles).
    explicit CompiledSim(const Netlist& netlist);
    CompiledSim(const Netlist& netlist, const SimConfig& config);

    [[nodiscard]] std::string_view backendName() const override { return "compiled"; }
    void setInput(std::string_view port, std::uint64_t value) override;
    void evaluate() override;
    void step() override;
    [[nodiscard]] std::uint64_t output(std::string_view port) const override;
    [[nodiscard]] std::uint64_t netValue(NetId id) const override;
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id) const override;
    void reset() override;
    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

    // -- program introspection (tests, docs, benchmarks) ----------------------
    /// Number of combinational ops in the evaluation program.
    [[nodiscard]] std::size_t opCount() const { return prog_.ops.size(); }
    /// Number of levels after levelization (longest comb path + 1).
    [[nodiscard]] std::size_t levelCount() const { return prog_.levels.size(); }
    /// Total op evaluations executed so far — with dirty skipping this is
    /// typically far below opCount() × evaluate() calls. Deterministic at
    /// any thread count.
    [[nodiscard]] std::uint64_t opsEvaluated() const { return opsEvaluated_; }
    /// Resolved partitioned-evaluation thread count (1 = serial).
    [[nodiscard]] unsigned threadCount() const { return threads_; }

private:
    void markAllOpsDirty();
    void markConsumers(std::uint32_t net);
    void publishSeqOutputs();
    void evaluateBandParallel(std::vector<std::uint32_t>& bucket);
    [[nodiscard]] std::uint64_t evalOp(const CompiledOp& op) const;

    const Netlist& netlist_;
    CompiledProgram prog_;

    // Partitioned evaluation.
    unsigned threads_ = 1;
    unsigned grain_ = 256;
    std::unique_ptr<BandPool> pool_;
    std::vector<std::vector<std::uint32_t>> chunkChanged_;  ///< per chunk: changed dst nets
    std::vector<std::uint64_t> chunkOps_;                   ///< per chunk: ops evaluated

    // Runtime state.
    std::vector<std::uint64_t> vals_;           ///< one word per net
    std::vector<std::uint64_t> state_;          ///< per seq op
    std::vector<std::vector<std::uint64_t>> mems_;
    std::vector<std::uint8_t> pending_;         ///< per op: queued in worklist
    std::vector<std::vector<std::uint32_t>> worklist_;  ///< per level
    std::vector<std::uint32_t> seqDirty_;       ///< seq ops whose state changed
    std::vector<std::uint8_t> seqDirtyFlag_;
    std::uint64_t cycles_ = 0;
    std::uint64_t opsEvaluated_ = 0;
};

} // namespace socgen::rtl
