#pragma once

#include "socgen/common/error.hpp"
#include "socgen/rtl/sim_backend.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace socgen::rtl {

/// Raised by the CompiledSim compiler when the netlist contains a
/// construct it cannot lower. makeSimulator(SimBackend::Auto) catches
/// exactly this type and falls back to the event-driven engine.
class UnsupportedNetlistError : public SimulationError {
public:
    explicit UnsupportedNetlistError(const std::string& message)
        : SimulationError("compiled-sim: " + message) {}
};

/// Compiled levelized simulation backend.
///
/// Construction levelizes the combinational subgraph once (level =
/// longest combinational path from a source) and flattens it into a
/// linear evaluation program: one fixed-layout op per combinational
/// cell, carrying resolved value-array slots and a precomputed width
/// mask, sorted by level. Sequential cells (Reg/Bram/Fsm) become a
/// separate update program applied at the clock edge.
///
/// Execution is two-state (0/1 per bit), word-packed: every net's value
/// lives in one 64-bit word of a flat array indexed by NetId. Dirty
/// tracking skips quiescent regions: an op re-evaluates only when one of
/// its input nets changed value, and a changed output enqueues its
/// consumers into per-level worklists, so a settled subgraph costs
/// nothing per cycle. There is no per-event heap scheduling anywhere:
/// a whole cycle is one sweep over the level worklists plus one sweep
/// over the sequential update program.
///
/// Observable semantics are bit-identical to NetlistSimulator at every
/// post-evaluate()/post-step() point (enforced by tests/test_rtl_diff_sim);
/// values read between a step() and the next evaluate() follow the same
/// staleness rule as the event-driven engine (sequential outputs publish
/// at the start of the next evaluate()).
///
/// Test hook: the SOCGEN_COMPILED_SIM_DENY environment variable may hold
/// a comma-separated list of cell-kind names (e.g. "FSM,BRAM"); netlists
/// containing a denied kind are reported as unsupported, exercising the
/// Auto-fallback path without inventing an unsupported construct.
class CompiledSim final : public Simulator {
public:
    /// Compiles `netlist` (kept by reference; must outlive the sim).
    /// Throws UnsupportedNetlistError when a cell kind cannot be lowered
    /// and socgen::Error on structural problems (combinational cycles).
    explicit CompiledSim(const Netlist& netlist);

    [[nodiscard]] std::string_view backendName() const override { return "compiled"; }
    void setInput(std::string_view port, std::uint64_t value) override;
    void evaluate() override;
    void step() override;
    [[nodiscard]] std::uint64_t output(std::string_view port) const override;
    [[nodiscard]] std::uint64_t netValue(NetId id) const override;
    [[nodiscard]] std::vector<std::uint64_t> memoryContents(CellId id) const override;
    void reset() override;
    [[nodiscard]] std::uint64_t cycleCount() const override { return cycles_; }

    // -- program introspection (tests, docs, benchmarks) ----------------------
    /// Number of combinational ops in the evaluation program.
    [[nodiscard]] std::size_t opCount() const { return ops_.size(); }
    /// Number of levels after levelization (longest comb path + 1).
    [[nodiscard]] std::size_t levelCount() const { return levels_.size(); }
    /// Total op evaluations executed so far — with dirty skipping this is
    /// typically far below opCount() × evaluate() calls.
    [[nodiscard]] std::uint64_t opsEvaluated() const { return opsEvaluated_; }

private:
    struct Op {
        CellKind code = CellKind::Const;
        std::uint32_t dst = 0;          ///< output net slot
        std::uint32_t a = 0, b = 0, c = 0;  ///< input net slots
        std::uint64_t mask = 0;         ///< width mask of the driving cell
        std::uint64_t imm = 0;          ///< pre-masked Const value
    };
    enum class SeqKind : std::uint8_t { RegAlways, RegEnable, Bram, Fsm };
    struct SeqOp {
        SeqKind kind = SeqKind::RegAlways;
        std::uint32_t cell = 0;         ///< originating CellId
        std::uint32_t out = 0;          ///< output net slot
        std::uint32_t d = 0;            ///< Reg d / Bram addr
        std::uint32_t en = 0;           ///< Reg en / Bram wdata
        std::uint32_t we = 0;           ///< Bram we
        std::uint64_t mask = 0;
        std::int64_t param = 0;         ///< Fsm state count
        std::uint32_t mem = 0;          ///< index into mems_ (Bram only)
        std::uint32_t statusFirst = 0;  ///< Fsm status slots in fsmStatus_
        std::uint32_t statusCount = 0;
    };

    void compile(const Netlist& netlist);
    void markAllOpsDirty();
    void markConsumers(std::uint32_t net);
    void publishSeqOutputs();
    [[nodiscard]] std::uint64_t evalOp(const Op& op) const;

    const Netlist& netlist_;

    // Evaluation program (immutable after compile).
    std::vector<Op> ops_;                       ///< sorted by level
    std::vector<std::uint32_t> opLevel_;        ///< level of each op
    std::vector<std::pair<std::uint32_t, std::uint32_t>> levels_;  ///< [first, count) into ops_
    std::vector<std::uint32_t> consumers_;      ///< CSR payload: op indices
    std::vector<std::uint32_t> consumerFirst_;  ///< per net, index into consumers_
    std::vector<SeqOp> seqOps_;
    std::vector<std::uint32_t> fsmStatus_;      ///< flattened Fsm status slots
    std::unordered_map<std::string, const Port*> portsByName_;

    // Runtime state.
    std::vector<std::uint64_t> vals_;           ///< one word per net
    std::vector<std::uint64_t> state_;          ///< per seq op
    std::vector<std::vector<std::uint64_t>> mems_;
    std::vector<std::uint8_t> pending_;         ///< per op: queued in worklist
    std::vector<std::vector<std::uint32_t>> worklist_;  ///< per level
    std::vector<std::uint32_t> seqDirty_;       ///< seq ops whose state changed
    std::vector<std::uint8_t> seqDirtyFlag_;
    std::uint64_t cycles_ = 0;
    std::uint64_t opsEvaluated_ = 0;
};

} // namespace socgen::rtl
