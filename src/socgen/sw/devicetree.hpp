#pragma once

#include "socgen/soc/block_design.hpp"

#include <string>

namespace socgen::sw {

/// Generates the device-tree source overlay describing the generated
/// hardware, "so the Linux kernel automatically recognizes the new
/// hardware accelerators and the corresponding DMA cores; the resulting
/// device file is thus placed into the /dev directory" (paper Section V).
class DeviceTreeGenerator {
public:
    [[nodiscard]] std::string generate(const soc::BlockDesign& design) const;

    /// The /dev node name a core's driver will create.
    [[nodiscard]] static std::string devNodeFor(const std::string& instanceName);
};

} // namespace socgen::sw
