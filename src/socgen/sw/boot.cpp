#include "socgen/sw/boot.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <sstream>

namespace socgen::sw {

namespace {
constexpr std::string_view kMagic = "SOCGENBOOT1";
}

std::string BootImage::serialize() const {
    std::ostringstream out;
    out << kMagic << '\n' << partitions.size() << '\n';
    for (const auto& p : partitions) {
        out << p.name << '\n' << p.content.size() << '\n' << p.content;
    }
    return out.str();
}

BootImage BootImage::parse(std::string_view image) {
    std::istringstream in{std::string(image)};
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic) {
        throw Error("boot image: bad magic");
    }
    std::string countLine;
    if (!std::getline(in, countLine)) {
        throw Error("boot image: missing partition count");
    }
    BootImage boot;
    const std::size_t count = std::stoul(countLine);
    for (std::size_t i = 0; i < count; ++i) {
        BootPartition p;
        std::string sizeLine;
        if (!std::getline(in, p.name) || !std::getline(in, sizeLine)) {
            throw Error("boot image: truncated partition header");
        }
        const std::size_t size = std::stoul(sizeLine);
        p.content.resize(size);
        in.read(p.content.data(), static_cast<std::streamsize>(size));
        if (static_cast<std::size_t>(in.gcount()) != size) {
            throw Error("boot image: truncated partition " + p.name);
        }
        boot.partitions.push_back(std::move(p));
    }
    return boot;
}

const BootPartition* BootImage::find(std::string_view name) const {
    for (const auto& p : partitions) {
        if (p.name == name) {
            return &p;
        }
    }
    return nullptr;
}

BootImage makeBootImage(const soc::BlockDesign& design, const soc::Bitstream& bitstream,
                        const std::string& deviceTree) {
    if (!design.finalised()) {
        throw Error("boot image requires a finalised design");
    }
    BootImage boot;
    boot.partitions.push_back(BootPartition{
        "fsbl.elf", format("FSBL for %s on %s (placeholder first-stage bootloader)\n",
                           design.name().c_str(), design.device().part.c_str())});
    boot.partitions.push_back(BootPartition{design.name() + ".bit", bitstream.serialize()});
    boot.partitions.push_back(BootPartition{"devicetree.dtb", deviceTree});
    boot.partitions.push_back(BootPartition{
        "uImage", "PetaLinux kernel payload marker (pre-compiled image)\n"});
    boot.partitions.push_back(BootPartition{
        "uramdisk.image.gz", "root filesystem marker with pre-installed DMA driver\n"});
    return boot;
}

} // namespace socgen::sw
