#pragma once

#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/block_design.hpp"

#include <string>
#include <vector>

namespace socgen::sw {

/// One entry of a boot image (BOOT.BIN-like container).
struct BootPartition {
    std::string name;      ///< e.g. "fsbl.elf", "design.bit", "devicetree.dtb"
    std::string content;
};

/// Packaged boot image for the target board: first-stage bootloader
/// placeholder, bitstream, device tree, and the kernel payload marker —
/// the "files needed to boot the board using a pre-compiled version of
/// the PetaLinux Operating System" (paper Section V).
struct BootImage {
    std::vector<BootPartition> partitions;

    [[nodiscard]] std::string serialize() const;
    static BootImage parse(std::string_view image);

    [[nodiscard]] const BootPartition* find(std::string_view name) const;
};

/// Assembles the boot image from the flow's artifacts.
[[nodiscard]] BootImage makeBootImage(const soc::BlockDesign& design,
                                      const soc::Bitstream& bitstream,
                                      const std::string& deviceTree);

} // namespace socgen::sw
