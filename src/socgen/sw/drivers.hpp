#pragma once

#include "socgen/hls/bytecode.hpp"
#include "socgen/soc/block_design.hpp"

#include <map>
#include <string>

namespace socgen::sw {

/// One generated source artifact (path relative to the output dir).
struct GeneratedFile {
    std::string path;
    std::string content;
};

/// Generates the C driver/API source for a design: a header and
/// implementation exposing, per AXI-Lite core, setArg/start/waitDone
/// wrappers, and per DMA core the readDMA/writeDMA pair the paper
/// provides for AXI-Stream connections ("we provide two simple APIs
/// (readDMA and writeDMA) to move data after opening the corresponding
/// device in the /dev directory", Section V).
class DriverGenerator {
public:
    [[nodiscard]] std::vector<GeneratedFile> generate(
        const soc::BlockDesign& design,
        const std::map<std::string, hls::Program>& programs) const;
};

} // namespace socgen::sw
