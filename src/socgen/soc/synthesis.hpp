#pragma once

#include "socgen/soc/block_design.hpp"

#include <string>
#include <vector>

namespace socgen::soc {

/// Per-instance utilisation row of a synthesis report.
struct UtilisationRow {
    std::string instance;
    hls::ResourceEstimate resources;
};

/// Result of the simulated synthesis / map / place-and-route / timing
/// run for one block design — the stand-in for the Vivado Design Suite
/// backend the paper invokes ("launch_runs impl_1 -to_step
/// write_bitstream").
struct SynthesisResult {
    std::string designName;
    std::vector<UtilisationRow> perInstance;
    hls::ResourceEstimate total;
    double utilisationPercent = 0.0;  ///< of the scarcest resource
    double achievedClockMhz = 0.0;
    bool timingMet = false;

    double synthSeconds = 0.0;    ///< deterministic tool time per stage
    double implSeconds = 0.0;
    double bitgenSeconds = 0.0;
    [[nodiscard]] double totalSeconds() const {
        return synthSeconds + implSeconds + bitgenSeconds;
    }

    [[nodiscard]] std::string utilisationReport() const;
};

/// The synthesis model: aggregates resources, checks device capacity,
/// estimates achievable clock from congestion, and charges deterministic
/// tool time proportional to design size (so Figure 9's breakdown is
/// reproducible). Throws SynthesisError when the design does not fit.
class SynthesisModel {
public:
    [[nodiscard]] SynthesisResult run(const BlockDesign& design) const;
};

} // namespace socgen::soc
