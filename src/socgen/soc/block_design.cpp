#include "socgen/soc/block_design.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace socgen::soc {

std::string_view ipKindName(IpKind kind) {
    switch (kind) {
    case IpKind::ZynqPs: return "processing_system7";
    case IpKind::AxiDma: return "axi_dma";
    case IpKind::AxiInterconnect: return "axi_interconnect";
    case IpKind::ProcSysReset: return "proc_sys_reset";
    case IpKind::HlsCore: return "hls_core";
    }
    return "?";
}

std::string StreamEndpoint::str() const {
    return isSoc() ? std::string(kSoc) : instance + "/" + port;
}

BlockDesign::BlockDesign(std::string name, FpgaDevice device, DmaPolicy dmaPolicy)
    : name_(std::move(name)), device_(std::move(device)), dmaPolicy_(dmaPolicy) {}

void BlockDesign::addHlsCore(const std::string& coreName, hls::ResourceEstimate resources,
                             std::vector<CorePort> streamPorts, bool hasAxiLiteControl) {
    if (finalised_) {
        throw SynthesisError("block design already finalised: " + name_);
    }
    if (hasInstance(coreName)) {
        throw SynthesisError("duplicate core instance: " + coreName);
    }
    IpInstance inst;
    inst.name = coreName;
    inst.kind = IpKind::HlsCore;
    inst.coreName = coreName;
    inst.resources = resources;
    inst.streamPorts = std::move(streamPorts);
    inst.hasAxiLiteControl = hasAxiLiteControl;
    instances_.push_back(std::move(inst));
}

void BlockDesign::connectStream(StreamEndpoint from, StreamEndpoint to, unsigned width) {
    if (finalised_) {
        throw SynthesisError("block design already finalised: " + name_);
    }
    if (from.isSoc() && to.isSoc()) {
        throw SynthesisError("stream connection cannot have 'soc on both ends");
    }
    streams_.push_back(StreamConnection{std::move(from), std::move(to), width, {}, -1});
}

void BlockDesign::connectLite(const std::string& instanceName) {
    if (finalised_) {
        throw SynthesisError("block design already finalised: " + name_);
    }
    lites_.push_back(LiteConnection{instanceName, 0, 0x10000});
}

const IpInstance& BlockDesign::instance(std::string_view name) const {
    for (const auto& i : instances_) {
        if (i.name == name) {
            return i;
        }
    }
    throw SynthesisError("no instance named '" + std::string(name) + "' in design " + name_);
}

bool BlockDesign::hasInstance(std::string_view name) const {
    return std::any_of(instances_.begin(), instances_.end(),
                       [&](const IpInstance& i) { return i.name == name; });
}

std::vector<const IpInstance*> BlockDesign::dmaInstances() const {
    std::vector<const IpInstance*> out;
    for (const auto& i : instances_) {
        if (i.kind == IpKind::AxiDma) {
            out.push_back(&i);
        }
    }
    return out;
}

std::vector<const IpInstance*> BlockDesign::hlsCores() const {
    std::vector<const IpInstance*> out;
    for (const auto& i : instances_) {
        if (i.kind == IpKind::HlsCore) {
            out.push_back(&i);
        }
    }
    return out;
}

void BlockDesign::validate() const {
    // Every referenced endpoint must exist, every core stream port must be
    // connected exactly once, and directions must be compatible.
    std::map<std::string, int> portUse;  // "inst/port" -> uses
    for (const auto& s : streams_) {
        for (const StreamEndpoint* ep : {&s.from, &s.to}) {
            if (ep->isSoc()) {
                continue;
            }
            const IpInstance& inst = instance(ep->instance);  // throws if missing
            const auto it = std::find_if(
                inst.streamPorts.begin(), inst.streamPorts.end(),
                [&](const CorePort& p) { return p.name == ep->port; });
            if (it == inst.streamPorts.end()) {
                throw SynthesisError(format("design %s: core %s has no stream port '%s'",
                                            name_.c_str(), ep->instance.c_str(),
                                            ep->port.c_str()));
            }
            const bool expectInput = ep == &s.to;
            if (it->isInput != expectInput) {
                throw SynthesisError(format(
                    "design %s: stream port %s is %s but used as %s", name_.c_str(),
                    ep->str().c_str(), it->isInput ? "an input" : "an output",
                    expectInput ? "a destination" : "a source"));
            }
            ++portUse[ep->instance + "/" + ep->port];
        }
    }
    for (const auto& [key, uses] : portUse) {
        if (uses > 1) {
            throw SynthesisError(format("design %s: stream port %s connected %d times",
                                        name_.c_str(), key.c_str(), uses));
        }
    }
    for (const auto& inst : instances_) {
        if (inst.kind != IpKind::HlsCore) {
            continue;
        }
        for (const auto& p : inst.streamPorts) {
            if (portUse.find(inst.name + "/" + p.name) == portUse.end()) {
                throw SynthesisError(format("design %s: stream port %s/%s is unconnected",
                                            name_.c_str(), inst.name.c_str(),
                                            p.name.c_str()));
            }
        }
    }
    for (const auto& l : lites_) {
        const IpInstance& inst = instance(l.instance);
        if (inst.kind == IpKind::HlsCore && !inst.hasAxiLiteControl) {
            throw SynthesisError(format("design %s: core %s has no AXI-Lite interface",
                                        name_.c_str(), l.instance.c_str()));
        }
    }
}

void BlockDesign::finalise() {
    if (finalised_) {
        throw SynthesisError("block design finalised twice: " + name_);
    }
    validate();

    // Infrastructure, mirroring Section IV-A: Zynq PS with HP ports,
    // reset, interconnects, and DMA core(s) for 'soc stream endpoints.
    IpInstance ps;
    ps.name = "processing_system7_0";
    ps.kind = IpKind::ZynqPs;
    ps.resources = catalog_.zynqPs();
    instances_.push_back(ps);

    IpInstance rst;
    rst.name = "rst_ps7_100M";
    rst.kind = IpKind::ProcSysReset;
    rst.resources = catalog_.procSysReset();
    instances_.push_back(rst);

    // DMA cores. Shared policy: one axi_dma whose MM2S fans out to every
    // 'soc-sourced link (route index selects the destination) and whose
    // S2MM accepts every 'soc-bound link. Per-link policy (SDSoC-style):
    // one axi_dma per 'soc endpoint.
    int socLinks = 0;
    for (auto& s : streams_) {
        if (s.from.isSoc() || s.to.isSoc()) {
            ++socLinks;
        }
    }
    if (socLinks > 0) {
        if (dmaPolicy_ == DmaPolicy::SharedDma) {
            IpInstance dma;
            dma.name = "axi_dma_0";
            dma.kind = IpKind::AxiDma;
            dma.resources = catalog_.axiDma();
            dma.hasAxiLiteControl = true;
            instances_.push_back(dma);
            int mm2sRoute = 0;
            int s2mmRoute = 0;
            for (auto& s : streams_) {
                if (s.from.isSoc()) {
                    s.dmaInstance = "axi_dma_0";
                    s.dmaRoute = mm2sRoute++;
                } else if (s.to.isSoc()) {
                    s.dmaInstance = "axi_dma_0";
                    s.dmaRoute = s2mmRoute++;
                }
            }
        } else {
            int index = 0;
            for (auto& s : streams_) {
                if (!s.from.isSoc() && !s.to.isSoc()) {
                    continue;
                }
                IpInstance dma;
                dma.name = format("axi_dma_%d", index++);
                dma.kind = IpKind::AxiDma;
                dma.resources = catalog_.axiDma();
                dma.hasAxiLiteControl = true;
                instances_.push_back(dma);
                s.dmaInstance = dma.name;
                s.dmaRoute = 0;
            }
        }
    }

    // AXI-Lite interconnect: one GP-port interconnect serving every lite
    // slave (user cores + DMA control).
    std::size_t liteSlaves = lites_.size();
    for (const auto& inst : instances_) {
        if (inst.kind == IpKind::AxiDma) {
            ++liteSlaves;
        }
    }
    if (liteSlaves > 0) {
        IpInstance ic;
        ic.name = "ps7_0_axi_periph";
        ic.kind = IpKind::AxiInterconnect;
        ic.resources = catalog_.axiInterconnectBase();
        for (std::size_t i = 0; i < liteSlaves; ++i) {
            ic.resources += catalog_.axiInterconnectPerPort();
        }
        instances_.push_back(ic);
    }
    // HP-port interconnect for DMA memory masters.
    if (socLinks > 0) {
        IpInstance ic;
        ic.name = "axi_mem_intercon";
        ic.kind = IpKind::AxiInterconnect;
        ic.resources = catalog_.axiInterconnectBase();
        for (const auto& inst : instances_) {
            if (inst.kind == IpKind::AxiDma) {
                ic.resources += catalog_.axiInterconnectPerPort();
                ic.resources += catalog_.axiInterconnectPerPort();  // MM2S + S2MM
            }
        }
        instances_.push_back(ic);
    }

    // Address assignment: user cores from 0x43C0_0000, DMA from 0x4040_0000
    // (the Vivado defaults for these IP families).
    std::uint64_t coreBase = 0x43C00000;
    for (auto& l : lites_) {
        l.baseAddress = coreBase;
        coreBase += l.size;
    }
    std::uint64_t dmaBase = 0x40400000;
    for (const auto& inst : instances_) {
        if (inst.kind == IpKind::AxiDma) {
            lites_.push_back(LiteConnection{inst.name, dmaBase, 0x10000});
            dmaBase += 0x10000;
        }
    }

    finalised_ = true;
    Logger::global().info(format("integration: design %s finalised (%zu instances, "
                                 "%zu streams, %zu lite slaves)",
                                 name_.c_str(), instances_.size(), streams_.size(),
                                 lites_.size()));
}

hls::ResourceEstimate BlockDesign::totalResources() const {
    hls::ResourceEstimate total;
    for (const auto& inst : instances_) {
        total += inst.resources;
    }
    return total;
}

std::string BlockDesign::toDot() const {
    std::ostringstream out;
    out << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n  node [shape=box];\n";
    out << "  \"PS\" [label=\"ARM Cortex-A9\\n(Zynq PS)\" style=filled fillcolor="
           "lightblue];\n";
    for (const auto& inst : instances_) {
        if (inst.kind == IpKind::HlsCore) {
            out << "  \"" << inst.name << "\" [label=\"" << inst.coreName
                << "\" style=filled fillcolor=orange];\n";
        } else if (inst.kind == IpKind::AxiDma) {
            out << "  \"" << inst.name << "\" [label=\"" << inst.name
                << "\" style=filled fillcolor=palegreen];\n";
        }
    }
    for (const auto& s : streams_) {
        const std::string from = s.from.isSoc() ? s.dmaInstance : s.from.instance;
        const std::string to = s.to.isSoc() ? s.dmaInstance : s.to.instance;
        out << "  \"" << from << "\" -> \"" << to << "\" [label=\"AXI-Stream\"];\n";
    }
    for (const auto& l : lites_) {
        out << "  \"PS\" -> \"" << l.instance << "\" [style=dashed label=\"AXI-Lite\"];\n";
    }
    for (const auto& inst : instances_) {
        if (inst.kind == IpKind::AxiDma) {
            out << "  \"" << inst.name << "\" -> \"PS\" [style=dotted label=\"HP/DMA\"];\n";
        }
    }
    out << "}\n";
    return out.str();
}

} // namespace socgen::soc
