#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace socgen::soc {

/// Word-addressed DDR model (the Zedboard's 512 MB DDR3, shared between
/// the ARM PS and the PL masters through the HP ports). Storage is
/// allocated page-wise on first touch so large address spaces stay cheap.
/// All PL-side transfers operate on 32-bit words, which matches the DMA
/// data width configured by the flow.
class Memory {
public:
    static constexpr std::size_t kPageWords = 1024;

    [[nodiscard]] std::uint32_t readWord(std::uint64_t wordAddress) const;
    void writeWord(std::uint64_t wordAddress, std::uint32_t value);

    /// Bulk helpers used by the PS model and tests.
    void writeBlock(std::uint64_t wordAddress, std::span<const std::uint32_t> data);
    [[nodiscard]] std::vector<std::uint32_t> readBlock(std::uint64_t wordAddress,
                                                       std::size_t count) const;

    [[nodiscard]] std::size_t pagesAllocated() const { return pages_.size(); }

    // -- ECC (behavioral SECDED model) ---------------------------------------
    // When enabled, every word carries check information: reads correct a
    // single flipped bit in place (counting it) and throw SimulationError
    // on a multi-bit upset, naming the word address. Disabled by default —
    // without ECC an injected flip is silent corruption, which is exactly
    // what the resilience tests contrast against.
    void setEccEnabled(bool enabled);
    [[nodiscard]] bool eccEnabled() const { return eccEnabled_; }
    [[nodiscard]] std::uint64_t eccCorrectedCount() const { return eccCorrected_; }

    /// Fault hook: flips one storage bit *without* updating the ECC check
    /// word, as a particle strike would.
    void injectBitFlip(std::uint64_t wordAddress, unsigned bit);

    // -- statistics ----------------------------------------------------------
    [[nodiscard]] std::uint64_t readCount() const { return reads_; }
    [[nodiscard]] std::uint64_t writeCount() const { return writes_; }

private:
    mutable std::map<std::uint64_t, std::vector<std::uint32_t>> pages_;
    mutable std::map<std::uint64_t, std::vector<std::uint32_t>> eccPages_;
    mutable std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    bool eccEnabled_ = false;
    mutable std::uint64_t eccCorrected_ = 0;

    [[nodiscard]] std::vector<std::uint32_t>& page(std::uint64_t wordAddress) const;
    [[nodiscard]] std::vector<std::uint32_t>& eccPage(std::uint64_t wordAddress) const;
};

} // namespace socgen::soc
