#include "socgen/soc/rtl_core.hpp"

#include "socgen/common/strings.hpp"

namespace socgen::soc {

RtlCoreComponent::RtlCoreComponent(std::string name, const rtl::Netlist& netlist,
                                   std::string donePort, rtl::SimBackend backend)
    : name_(std::move(name)),
      donePort_(std::move(donePort)),
      sim_(rtl::makeSimulator(netlist, backend)) {}

RtlCoreComponent::RtlCoreComponent(std::string name, const rtl::Netlist& netlist,
                                   std::string donePort, const rtl::SimConfig& config)
    : name_(std::move(name)),
      donePort_(std::move(donePort)),
      sim_(rtl::makeSimulator(netlist, config)) {}

bool RtlCoreComponent::tick() {
    if (idle()) {
        return false;
    }
    sim_->step();
    sim_->evaluate();
    return true;
}

bool RtlCoreComponent::idle() const {
    if (donePort_.empty()) {
        return true;
    }
    return sim_->output(donePort_) != 0;
}

std::string RtlCoreComponent::debugState() const {
    return format("%s backend, cycle %llu, %s", std::string(sim_->backendName()).c_str(),
                  static_cast<unsigned long long>(sim_->cycleCount()),
                  idle() ? "done" : "running");
}

} // namespace socgen::soc
