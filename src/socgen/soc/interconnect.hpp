#pragma once

#include "socgen/axi/lite.hpp"

#include <cstdint>
#include <string>

namespace socgen::soc {

/// Runtime model of the GP-port AXI interconnect: wraps the LiteBus with
/// an extra hop of latency per traversal and a transaction census per
/// slave — the observable behaviour of the `ps7_0_axi_periph`
/// interconnect the flow instantiates.
class GpInterconnect {
public:
    /// Additional cycles charged by the interconnect hop on each access.
    static constexpr std::uint64_t kHopLatency = 3;

    explicit GpInterconnect(axi::LiteBus& bus) : bus_(bus) {}

    [[nodiscard]] std::uint32_t read(std::uint64_t address);
    void write(std::uint64_t address, std::uint32_t value);

    /// Cycles the caller should charge for the accesses issued so far
    /// (bus latency + hop latency).
    [[nodiscard]] std::uint64_t consumeAccessCycles();

    [[nodiscard]] axi::LiteBus& bus() { return bus_; }

private:
    axi::LiteBus& bus_;
    std::uint64_t pendingCycles_ = 0;
};

} // namespace socgen::soc
