#include "socgen/soc/memory.hpp"

namespace socgen::soc {

std::vector<std::uint32_t>& Memory::page(std::uint64_t wordAddress) const {
    const std::uint64_t pageIndex = wordAddress / kPageWords;
    auto it = pages_.find(pageIndex);
    if (it == pages_.end()) {
        it = pages_.emplace(pageIndex, std::vector<std::uint32_t>(kPageWords, 0)).first;
    }
    return it->second;
}

std::uint32_t Memory::readWord(std::uint64_t wordAddress) const {
    ++reads_;
    return page(wordAddress)[wordAddress % kPageWords];
}

void Memory::writeWord(std::uint64_t wordAddress, std::uint32_t value) {
    ++writes_;
    page(wordAddress)[wordAddress % kPageWords] = value;
}

void Memory::writeBlock(std::uint64_t wordAddress, std::span<const std::uint32_t> data) {
    for (std::size_t i = 0; i < data.size(); ++i) {
        writeWord(wordAddress + i, data[i]);
    }
}

std::vector<std::uint32_t> Memory::readBlock(std::uint64_t wordAddress,
                                             std::size_t count) const {
    std::vector<std::uint32_t> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = readWord(wordAddress + i);
    }
    return out;
}

} // namespace socgen::soc
