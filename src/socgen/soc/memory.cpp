#include "socgen/soc/memory.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <bit>

namespace socgen::soc {

std::vector<std::uint32_t>& Memory::page(std::uint64_t wordAddress) const {
    const std::uint64_t pageIndex = wordAddress / kPageWords;
    auto it = pages_.find(pageIndex);
    if (it == pages_.end()) {
        it = pages_.emplace(pageIndex, std::vector<std::uint32_t>(kPageWords, 0)).first;
    }
    return it->second;
}

std::vector<std::uint32_t>& Memory::eccPage(std::uint64_t wordAddress) const {
    const std::uint64_t pageIndex = wordAddress / kPageWords;
    auto it = eccPages_.find(pageIndex);
    if (it == eccPages_.end()) {
        it = eccPages_.emplace(pageIndex, std::vector<std::uint32_t>(kPageWords, 0)).first;
    }
    return it->second;
}

std::uint32_t Memory::readWord(std::uint64_t wordAddress) const {
    ++reads_;
    std::uint32_t& stored = page(wordAddress)[wordAddress % kPageWords];
    if (eccEnabled_) {
        const std::uint32_t check = eccPage(wordAddress)[wordAddress % kPageWords];
        const std::uint32_t diff = stored ^ check;
        if (diff != 0) {
            if (std::popcount(diff) == 1) {
                // Single-bit upset: correct in place, as SECDED hardware
                // scrubbing would.
                stored = check;
                ++eccCorrected_;
            } else {
                throw SimulationError(format(
                    "DDR ECC: uncorrectable multi-bit error at word 0x%llx "
                    "(read 0x%08x, expected 0x%08x)",
                    static_cast<unsigned long long>(wordAddress), stored, check));
            }
        }
    }
    return stored;
}

void Memory::writeWord(std::uint64_t wordAddress, std::uint32_t value) {
    ++writes_;
    page(wordAddress)[wordAddress % kPageWords] = value;
    if (eccEnabled_) {
        eccPage(wordAddress)[wordAddress % kPageWords] = value;
    }
}

void Memory::setEccEnabled(bool enabled) {
    if (enabled && !eccEnabled_) {
        // Snapshot the check words for everything already written.
        for (const auto& [pageIndex, data] : pages_) {
            eccPages_[pageIndex] = data;
        }
    }
    eccEnabled_ = enabled;
    if (!enabled) {
        eccPages_.clear();
    }
}

void Memory::injectBitFlip(std::uint64_t wordAddress, unsigned bit) {
    page(wordAddress)[wordAddress % kPageWords] ^= (1U << (bit & 31U));
}

void Memory::writeBlock(std::uint64_t wordAddress, std::span<const std::uint32_t> data) {
    for (std::size_t i = 0; i < data.size(); ++i) {
        writeWord(wordAddress + i, data[i]);
    }
}

std::vector<std::uint32_t> Memory::readBlock(std::uint64_t wordAddress,
                                             std::size_t count) const {
    std::vector<std::uint32_t> out(count);
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = readWord(wordAddress + i);
    }
    return out;
}

} // namespace socgen::soc
