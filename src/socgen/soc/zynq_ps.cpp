#include "socgen/soc/zynq_ps.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::soc {

ZynqPs::ZynqPs(std::string name, Memory& memory, GpInterconnect& gp)
    : name_(std::move(name)), memory_(memory), gp_(gp) {}

void ZynqPs::task(std::string label, std::uint64_t cycles, TaskFn fn) {
    Op op;
    op.kind = OpKind::Task;
    op.label = std::move(label);
    op.cycles = cycles;
    op.fn = std::move(fn);
    program_.push_back(std::move(op));
}

void ZynqPs::writeReg(std::uint64_t address, std::uint32_t value) {
    Op op;
    op.kind = OpKind::WriteReg;
    op.address = address;
    op.value = value;
    program_.push_back(std::move(op));
}

void ZynqPs::pollEq(std::uint64_t address, std::uint32_t mask, std::uint32_t expect,
                    std::uint64_t pollInterval) {
    Op op;
    op.kind = OpKind::Poll;
    op.address = address;
    op.mask = mask;
    op.expect = expect;
    op.pollInterval = pollInterval == 0 ? 1 : pollInterval;
    program_.push_back(std::move(op));
}

void ZynqPs::delay(std::uint64_t cycles) {
    Op op;
    op.kind = OpKind::Delay;
    op.cycles = cycles;
    program_.push_back(std::move(op));
}

void ZynqPs::waitIrq(IrqLine& line, std::uint64_t wakeLatency) {
    Op op;
    op.kind = OpKind::WaitIrq;
    op.irq = &line;
    op.cycles = wakeLatency;
    program_.push_back(std::move(op));
}

void ZynqPs::waitIrqWithFallback(IrqLine& line, std::uint64_t address,
                                 std::uint32_t mask, std::uint32_t expect,
                                 std::uint64_t wakeLatency,
                                 std::uint64_t pollInterval) {
    Op op;
    op.kind = OpKind::WaitIrq;
    op.irq = &line;
    op.cycles = wakeLatency;
    op.address = address;
    op.mask = mask;
    op.expect = expect;
    op.pollInterval = pollInterval == 0 ? 1 : pollInterval;
    op.hasIrqFallback = true;
    program_.push_back(std::move(op));
}

void ZynqPs::startNextOp() {
    Op op = std::move(program_.front());
    program_.pop_front();
    ++opsExecuted_;
    switch (op.kind) {
    case OpKind::Task:
        if (op.fn) {
            op.fn(memory_);
        }
        taskCycles_ += op.cycles;
        busyFor_ = op.cycles;
        break;
    case OpKind::WriteReg: {
        gp_.write(op.address, op.value);
        busyFor_ = gp_.consumeAccessCycles();
        driverCycles_ += busyFor_;
        break;
    }
    case OpKind::Poll:
        pollingActive_ = true;
        pollingOp_ = std::move(op);
        busyFor_ = 0;
        waitStartTick_ = tickCount_;
        break;
    case OpKind::Delay:
        busyFor_ = op.cycles;
        break;
    case OpKind::WaitIrq:
        irqWaitActive_ = true;
        pollingOp_ = std::move(op);
        busyFor_ = 0;
        waitStartTick_ = tickCount_;
        break;
    }
}

bool ZynqPs::tick() {
    ++tickCount_;
    if (busyFor_ > 0) {
        --busyFor_;
        ++cyclesBusy_;
        return true;
    }
    if (irqWaitActive_) {
        if (pollingOp_.irq->acknowledge()) {
            irqWaitActive_ = false;
            busyFor_ = pollingOp_.cycles;  // ISR entry / context switch
            ++irqWakeups_;
            ++cyclesBusy_;
            return true;
        }
        if (irqWatchdog_ > 0 && tickCount_ - waitStartTick_ >= irqWatchdog_) {
            ++irqWatchdogFires_;
            if (irqFallbackEnabled_ && pollingOp_.hasIrqFallback) {
                // The interrupt edge is presumed lost; degrade to the
                // busy-wait driver path against the completion register.
                ++irqFallbacks_;
                irqWaitActive_ = false;
                pollingActive_ = true;
                waitStartTick_ = tickCount_;
                ++cyclesBusy_;
                return true;
            }
            throw WatchdogError(format(
                "%s: IRQ '%s' not raised within %llu cycles (raised %llu times total)",
                name_.c_str(), pollingOp_.irq->name().c_str(),
                static_cast<unsigned long long>(irqWatchdog_),
                static_cast<unsigned long long>(pollingOp_.irq->raiseCount())));
        }
        return false;  // sleeping: no bus traffic, no progress
    }
    if (pollingActive_) {
        const std::uint32_t value = gp_.read(pollingOp_.address);
        const std::uint64_t accessCycles = gp_.consumeAccessCycles();
        driverCycles_ += accessCycles;
        ++cyclesBusy_;
        lastPollValue_ = value;
        if ((value & pollingOp_.mask) == pollingOp_.expect) {
            pollingActive_ = false;
            busyFor_ = accessCycles;
        } else {
            if (pollWatchdog_ > 0 && tickCount_ - waitStartTick_ >= pollWatchdog_) {
                throw WatchdogError(format(
                    "%s: poll of 0x%llx stuck for %llu cycles "
                    "(mask 0x%x expect 0x%x, last value 0x%x)",
                    name_.c_str(),
                    static_cast<unsigned long long>(pollingOp_.address),
                    static_cast<unsigned long long>(tickCount_ - waitStartTick_),
                    pollingOp_.mask, pollingOp_.expect, value));
            }
            busyFor_ = accessCycles + pollingOp_.pollInterval;
        }
        return true;
    }
    if (program_.empty()) {
        return false;
    }
    startNextOp();
    ++cyclesBusy_;
    return true;
}

bool ZynqPs::idle() const {
    return program_.empty() && busyFor_ == 0 && !pollingActive_ && !irqWaitActive_;
}

std::string ZynqPs::debugState() const {
    if (irqWaitActive_) {
        return format("waiting for IRQ '%s' since tick %llu",
                      pollingOp_.irq->name().c_str(),
                      static_cast<unsigned long long>(waitStartTick_));
    }
    if (pollingActive_) {
        return format("polling 0x%llx (mask 0x%x expect 0x%x, last 0x%x) since tick %llu",
                      static_cast<unsigned long long>(pollingOp_.address),
                      pollingOp_.mask, pollingOp_.expect, lastPollValue_,
                      static_cast<unsigned long long>(waitStartTick_));
    }
    if (!program_.empty() || busyFor_ > 0) {
        return format("%zu op(s) queued, busy for %llu more cycles", program_.size(),
                      static_cast<unsigned long long>(busyFor_));
    }
    return {};
}

} // namespace socgen::soc
