#include "socgen/soc/zynq_ps.hpp"

namespace socgen::soc {

ZynqPs::ZynqPs(std::string name, Memory& memory, GpInterconnect& gp)
    : name_(std::move(name)), memory_(memory), gp_(gp) {}

void ZynqPs::task(std::string label, std::uint64_t cycles, TaskFn fn) {
    Op op;
    op.kind = OpKind::Task;
    op.label = std::move(label);
    op.cycles = cycles;
    op.fn = std::move(fn);
    program_.push_back(std::move(op));
}

void ZynqPs::writeReg(std::uint64_t address, std::uint32_t value) {
    Op op;
    op.kind = OpKind::WriteReg;
    op.address = address;
    op.value = value;
    program_.push_back(std::move(op));
}

void ZynqPs::pollEq(std::uint64_t address, std::uint32_t mask, std::uint32_t expect,
                    std::uint64_t pollInterval) {
    Op op;
    op.kind = OpKind::Poll;
    op.address = address;
    op.mask = mask;
    op.expect = expect;
    op.pollInterval = pollInterval == 0 ? 1 : pollInterval;
    program_.push_back(std::move(op));
}

void ZynqPs::delay(std::uint64_t cycles) {
    Op op;
    op.kind = OpKind::Delay;
    op.cycles = cycles;
    program_.push_back(std::move(op));
}

void ZynqPs::waitIrq(IrqLine& line, std::uint64_t wakeLatency) {
    Op op;
    op.kind = OpKind::WaitIrq;
    op.irq = &line;
    op.cycles = wakeLatency;
    program_.push_back(std::move(op));
}

void ZynqPs::startNextOp() {
    Op op = std::move(program_.front());
    program_.pop_front();
    ++opsExecuted_;
    switch (op.kind) {
    case OpKind::Task:
        if (op.fn) {
            op.fn(memory_);
        }
        taskCycles_ += op.cycles;
        busyFor_ = op.cycles;
        break;
    case OpKind::WriteReg: {
        gp_.write(op.address, op.value);
        busyFor_ = gp_.consumeAccessCycles();
        driverCycles_ += busyFor_;
        break;
    }
    case OpKind::Poll:
        pollingActive_ = true;
        pollingOp_ = std::move(op);
        busyFor_ = 0;
        break;
    case OpKind::Delay:
        busyFor_ = op.cycles;
        break;
    case OpKind::WaitIrq:
        irqWaitActive_ = true;
        pollingOp_ = std::move(op);
        busyFor_ = 0;
        break;
    }
}

bool ZynqPs::tick() {
    if (busyFor_ > 0) {
        --busyFor_;
        ++cyclesBusy_;
        return true;
    }
    if (irqWaitActive_) {
        if (pollingOp_.irq->acknowledge()) {
            irqWaitActive_ = false;
            busyFor_ = pollingOp_.cycles;  // ISR entry / context switch
            ++irqWakeups_;
            ++cyclesBusy_;
            return true;
        }
        return false;  // sleeping: no bus traffic, no progress
    }
    if (pollingActive_) {
        const std::uint32_t value = gp_.read(pollingOp_.address);
        const std::uint64_t accessCycles = gp_.consumeAccessCycles();
        driverCycles_ += accessCycles;
        ++cyclesBusy_;
        if ((value & pollingOp_.mask) == pollingOp_.expect) {
            pollingActive_ = false;
            busyFor_ = accessCycles;
        } else {
            busyFor_ = accessCycles + pollingOp_.pollInterval;
        }
        return true;
    }
    if (program_.empty()) {
        return false;
    }
    startNextOp();
    ++cyclesBusy_;
    return true;
}

bool ZynqPs::idle() const {
    return program_.empty() && busyFor_ == 0 && !pollingActive_ && !irqWaitActive_;
}

} // namespace socgen::soc
