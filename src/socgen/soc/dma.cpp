#include "socgen/soc/dma.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::soc {

DmaEngine::DmaEngine(std::string name, Memory& memory, std::uint64_t wordsPerCycle)
    : name_(std::move(name)), memory_(memory), wordsPerCycle_(wordsPerCycle) {
    require(wordsPerCycle_ > 0, "dma words-per-cycle must be positive");
}

int DmaEngine::attachMm2s(axi::StreamChannel& channel) {
    mm2sDests_.push_back(&channel);
    return static_cast<int>(mm2sDests_.size() - 1);
}

int DmaEngine::attachS2mm(axi::StreamChannel& channel) {
    s2mmSrcs_.push_back(&channel);
    return static_cast<int>(s2mmSrcs_.size() - 1);
}

std::uint32_t DmaEngine::corruptValue(Corruption& c, std::uint32_t value) {
    // Derive a fresh, never-zero mask per application (golden-ratio mix)
    // so two back-to-back verification reads of a persistently faulty
    // port cannot be corrupted identically and slip past the compare.
    std::uint64_t z = c.mask ^ (c.applied * 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    const auto effective =
        static_cast<std::uint32_t>((z ^ (z >> 32)) | 1ULL);
    ++c.applied;
    --c.remaining;
    return value ^ effective;
}

std::uint32_t DmaEngine::hpRead(std::uint64_t wordAddress) {
    std::uint32_t value = memory_.readWord(wordAddress);
    if (mm2sCorrupt_.remaining > 0) {
        value = corruptValue(mm2sCorrupt_, value);
    }
    return value;
}

std::uint32_t DmaEngine::hpReadVerified(std::uint64_t wordAddress) {
    std::uint32_t first = hpRead(wordAddress);
    if (retryLimit_ == 0) {
        return first;
    }
    std::uint32_t second = hpRead(wordAddress);
    unsigned attempts = 0;
    while (first != second) {
        if (++attempts > retryLimit_) {
            throw SimulationError(format(
                "%s: MM2S read of word 0x%llx failed verification after %u retries",
                name_.c_str(), static_cast<unsigned long long>(wordAddress),
                retryLimit_));
        }
        ++verifyRetries_;
        first = hpRead(wordAddress);
        second = hpRead(wordAddress);
    }
    return first;
}

void DmaEngine::hpWriteVerified(std::uint64_t wordAddress, std::uint32_t value) {
    std::uint32_t out = value;
    if (s2mmCorrupt_.remaining > 0) {
        out = corruptValue(s2mmCorrupt_, out);
    }
    memory_.writeWord(wordAddress, out);
    if (retryLimit_ == 0) {
        return;
    }
    unsigned attempts = 0;
    while (memory_.readWord(wordAddress) != value) {
        if (++attempts > retryLimit_) {
            throw SimulationError(format(
                "%s: S2MM write of word 0x%llx failed verification after %u retries",
                name_.c_str(), static_cast<unsigned long long>(wordAddress),
                retryLimit_));
        }
        ++verifyRetries_;
        out = value;
        if (s2mmCorrupt_.remaining > 0) {
            out = corruptValue(s2mmCorrupt_, out);
        }
        memory_.writeWord(wordAddress, out);
    }
}

void DmaEngine::injectMm2sCorruption(std::uint64_t xorMask, std::uint64_t words) {
    mm2sCorrupt_.mask = xorMask;
    mm2sCorrupt_.remaining += words;
}

void DmaEngine::injectS2mmCorruption(std::uint64_t xorMask, std::uint64_t words) {
    s2mmCorrupt_.mask = xorMask;
    s2mmCorrupt_.remaining += words;
}

bool DmaEngine::tickMm2s() {
    if (!mm2s_.active) {
        return false;
    }
    auto& dest = *mm2sDests_.at(mm2s_.route);
    bool moved = false;
    for (std::uint64_t i = 0; i < wordsPerCycle_ && mm2s_.remaining > 0; ++i) {
        if (dest.full() || dest.pushBlocked()) {
            break;  // back-pressure: don't consume a verified read
        }
        const std::uint32_t word = hpReadVerified(mm2s_.address);
        const bool last = mm2s_.remaining == 1;
        if (!dest.tryPush(word, last)) {
            break;  // back-pressure
        }
        ++mm2s_.address;
        --mm2s_.remaining;
        ++wordsMoved_;
        moved = true;
    }
    if (mm2s_.remaining == 0) {
        mm2s_.active = false;
        ++transfers_;
        if (mm2sIrq_ != nullptr) {
            mm2sIrq_->raise();
        }
    }
    return moved;
}

bool DmaEngine::tickS2mm() {
    if (!s2mm_.active) {
        return false;
    }
    auto& src = *s2mmSrcs_.at(s2mm_.route);
    bool moved = false;
    for (std::uint64_t i = 0; i < wordsPerCycle_ && s2mm_.remaining > 0; ++i) {
        axi::StreamBeat beat;
        if (!src.tryPop(beat)) {
            break;
        }
        hpWriteVerified(s2mm_.address, static_cast<std::uint32_t>(beat.data));
        ++s2mm_.address;
        --s2mm_.remaining;
        ++wordsMoved_;
        moved = true;
    }
    if (s2mm_.remaining == 0) {
        s2mm_.active = false;
        ++transfers_;
        if (s2mmIrq_ != nullptr) {
            s2mmIrq_->raise();
        }
    }
    return moved;
}

bool DmaEngine::tick() {
    if (stallRemaining_ > 0) {
        --stallRemaining_;
        return false;  // descriptors frozen: no progress this cycle
    }
    const bool a = tickMm2s();
    const bool b = tickS2mm();
    return a || b;
}

bool DmaEngine::idle() const {
    return !mm2s_.active && !s2mm_.active;
}

std::string DmaEngine::debugState() const {
    std::string state;
    if (stallRemaining_ > 0) {
        state += format("stalled for %llu more cycles",
                        static_cast<unsigned long long>(stallRemaining_));
    }
    if (mm2s_.active) {
        if (!state.empty()) {
            state += "; ";
        }
        state += format("MM2S %llu words left at 0x%llx (route %u)",
                        static_cast<unsigned long long>(mm2s_.remaining),
                        static_cast<unsigned long long>(mm2s_.address), mm2s_.route);
    }
    if (s2mm_.active) {
        if (!state.empty()) {
            state += "; ";
        }
        state += format("S2MM %llu words left at 0x%llx (route %u)",
                        static_cast<unsigned long long>(s2mm_.remaining),
                        static_cast<unsigned long long>(s2mm_.address), s2mm_.route);
    }
    return state;
}

std::uint32_t DmaEngine::readRegister(std::uint64_t offset) {
    switch (offset) {
    case dmareg::kMm2sCtrl: return 0;
    case dmareg::kMm2sStatus: return mm2s_.active ? 0 : dmareg::kStatusIdle;
    case dmareg::kMm2sAddr: return static_cast<std::uint32_t>(mm2s_.address);
    case dmareg::kMm2sLength: return static_cast<std::uint32_t>(mm2s_.remaining);
    case dmareg::kMm2sRoute: return mm2s_.route;
    case dmareg::kS2mmCtrl: return 0;
    case dmareg::kS2mmStatus: return s2mm_.active ? 0 : dmareg::kStatusIdle;
    case dmareg::kS2mmAddr: return static_cast<std::uint32_t>(s2mm_.address);
    case dmareg::kS2mmLength: return static_cast<std::uint32_t>(s2mm_.remaining);
    case dmareg::kS2mmRoute: return s2mm_.route;
    default:
        throw SimulationError(format("%s: read of unknown register 0x%llx", name_.c_str(),
                                     static_cast<unsigned long long>(offset)));
    }
}

void DmaEngine::writeRegister(std::uint64_t offset, std::uint32_t value) {
    switch (offset) {
    case dmareg::kMm2sCtrl:
        break;  // run/stop is implicit in this simple-mode model
    case dmareg::kMm2sAddr:
        mm2s_.address = value;
        break;
    case dmareg::kMm2sRoute:
        if (value >= mm2sDests_.size()) {
            throw SimulationError(format("%s: MM2S route %u out of range (%zu attached)",
                                         name_.c_str(), value, mm2sDests_.size()));
        }
        mm2s_.route = value;
        break;
    case dmareg::kMm2sLength:
        if (mm2s_.active) {
            throw SimulationError(name_ + ": MM2S transfer started while busy");
        }
        if (mm2sDests_.empty()) {
            throw SimulationError(name_ + ": MM2S started with no attached stream");
        }
        mm2s_.remaining = value;
        mm2s_.active = value > 0;
        break;
    case dmareg::kS2mmCtrl:
        break;
    case dmareg::kS2mmAddr:
        s2mm_.address = value;
        break;
    case dmareg::kS2mmRoute:
        if (value >= s2mmSrcs_.size()) {
            throw SimulationError(format("%s: S2MM route %u out of range (%zu attached)",
                                         name_.c_str(), value, s2mmSrcs_.size()));
        }
        s2mm_.route = value;
        break;
    case dmareg::kS2mmLength:
        if (s2mm_.active) {
            throw SimulationError(name_ + ": S2MM transfer started while busy");
        }
        if (s2mmSrcs_.empty()) {
            throw SimulationError(name_ + ": S2MM started with no attached stream");
        }
        s2mm_.remaining = value;
        s2mm_.active = value > 0;
        break;
    default:
        throw SimulationError(format("%s: write of unknown register 0x%llx", name_.c_str(),
                                     static_cast<unsigned long long>(offset)));
    }
}

} // namespace socgen::soc
