#pragma once

#include "socgen/axi/monitor.hpp"
#include "socgen/hls/bytecode.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/sim/fault.hpp"
#include "socgen/soc/accelerator.hpp"
#include "socgen/soc/block_design.hpp"
#include "socgen/soc/dma.hpp"
#include "socgen/soc/zynq_ps.hpp"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace socgen::soc {

struct SystemOptions {
    std::size_t channelCapacity = 64;    ///< AXI-Stream FIFO depth per link
    std::uint64_t dmaWordsPerCycle = 1;  ///< HP-port bandwidth model
    bool attachMonitors = true;          ///< per-channel protocol monitors
    /// Completion notification style of the generated driver: busy-wait
    /// register polling (the paper's readDMA/writeDMA) or F2P interrupts.
    bool useInterrupts = false;

    // -- hardening (all disabled by default: the un-hardened paper system) --
    std::uint64_t irqWatchdogCycles = 0;   ///< budget per waitIrq; 0 = off
    bool irqWatchdogFallbackToPoll = true; ///< degrade to polling vs. throw
    std::uint64_t pollWatchdogCycles = 0;  ///< budget per register poll; 0 = off
    unsigned dmaRetryLimit = 0;            ///< HP-port verify retries; 0 = off
    bool memoryEcc = false;                ///< DDR single-bit correction
    std::uint64_t stallLimit = 100'000;    ///< deadlock declaration threshold
};

/// Instantiates the runtime counterpart of a finalised BlockDesign:
/// DDR + ARM PS + GP interconnect + DMA engines + accelerator cores +
/// AXI-Stream channels, wired exactly as the design describes. This is
/// the "board" that generated systems run on in lieu of a Zedboard.
class SystemSimulator {
public:
    SystemSimulator(const BlockDesign& design,
                    const std::map<std::string, hls::Program>& programs,
                    SystemOptions options = {});

    SystemSimulator(const SystemSimulator&) = delete;
    SystemSimulator& operator=(const SystemSimulator&) = delete;

    // -- structure access ------------------------------------------------------
    [[nodiscard]] Memory& memory() { return memory_; }
    [[nodiscard]] ZynqPs& ps() { return *ps_; }
    [[nodiscard]] AcceleratorCore& core(const std::string& name);
    [[nodiscard]] DmaEngine& dma(const std::string& name);
    [[nodiscard]] axi::StreamChannel& channel(std::size_t index);
    [[nodiscard]] std::size_t channelCount() const { return channels_.size(); }
    [[nodiscard]] std::uint64_t baseAddressOf(const std::string& instance) const;
    /// Channel lookup by its "from -> to" name (used for fault targeting);
    /// returns nullptr when absent.
    [[nodiscard]] axi::StreamChannel* channelByName(const std::string& name);
    /// IRQ line lookup across DMA and core completion lines; nullptr when
    /// absent (e.g. the system runs in polling mode).
    [[nodiscard]] IrqLine* irqByName(const std::string& name);

    /// Binds every cycle-level FaultKind handler to this system's
    /// channels, IRQ lines, memory and DMAs, and attaches the injector to
    /// the engine. Call before run(); flow-level kinds (bitstream/HLS)
    /// are not consumed here.
    void armFaults(sim::FaultInjector& injector);

    /// The resource names a FaultPlan::Space can target on this system.
    [[nodiscard]] std::vector<std::string> channelNames() const;
    [[nodiscard]] std::vector<std::string> irqNames() const;
    [[nodiscard]] std::vector<std::string> dmaNames() const;

    // -- generated-driver-equivalent operations (enqueued on the PS) ----------
    /// writeDMA(): programs an MM2S transfer and blocks until it drains.
    void psWriteDma(const std::string& dmaName, int route, std::uint64_t wordAddr,
                    std::uint32_t words);
    /// readDMA() arm half: programs S2MM and returns immediately.
    void psArmReadDma(const std::string& dmaName, int route, std::uint64_t wordAddr,
                      std::uint32_t words);
    /// readDMA() wait half: blocks until the S2MM channel is idle.
    void psWaitReadDma(const std::string& dmaName);
    /// Starts a memory-mapped accelerator via its CTRL register.
    void psStartCore(const std::string& coreName);
    /// Polls an accelerator until ap_done.
    void psWaitCore(const std::string& coreName);
    /// Writes a scalar argument register (by kernel port name).
    void psSetCoreArg(const std::string& coreName, const std::string& portName,
                      std::uint32_t value);

    // -- execution --------------------------------------------------------------
    /// Runs until everything is idle; returns cycles simulated. Protocol
    /// monitors are checked after the run.
    std::uint64_t run(std::uint64_t maxCycles = 200'000'000);

    [[nodiscard]] sim::Engine& engine() { return engine_; }

    /// Multi-line execution report (cycles, per-channel stats, PS split).
    [[nodiscard]] std::string report() const;
    [[nodiscard]] std::uint64_t lastRunCycles() const { return lastRunCycles_; }

private:
    [[nodiscard]] std::uint32_t argIndexOf(const std::string& coreName,
                                           const std::string& portName) const;

    const BlockDesign& design_;
    SystemOptions options_;
    Memory memory_;
    axi::LiteBus bus_;
    GpInterconnect gp_;
    std::unique_ptr<ZynqPs> ps_;
    std::vector<std::unique_ptr<axi::StreamChannel>> channels_;
    std::vector<std::unique_ptr<axi::StreamMonitor>> monitors_;
    std::map<std::string, std::unique_ptr<DmaEngine>> dmas_;
    std::map<std::string, std::unique_ptr<IrqLine>> mm2sIrqs_;
    std::map<std::string, std::unique_ptr<IrqLine>> s2mmIrqs_;
    std::map<std::string, std::unique_ptr<IrqLine>> coreIrqs_;
    std::map<std::string, std::unique_ptr<AcceleratorCore>> cores_;
    std::map<std::string, const hls::Program*> programs_;
    sim::Engine engine_;
    std::uint64_t lastRunCycles_ = 0;
};

} // namespace socgen::soc
