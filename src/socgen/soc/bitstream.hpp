#pragma once

#include "socgen/soc/block_design.hpp"
#include "socgen/soc/synthesis.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::soc {

/// CRC-32 (IEEE 802.3, reflected) used to protect bitstream contents.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Serialized configuration image for a synthesized design — the final
/// artifact of the paper's flow ("the final bitstream for the hardware
/// platform"). The format is socgen-specific but behaves like a real
/// bitstream: it encodes the full design, is integrity-protected, and
/// round-trips through parse().
struct Bitstream {
    std::string designName;
    std::string part;
    std::vector<std::string> configRecords;  ///< one per IP instance
    std::uint32_t crc = 0;

    /// Serialises to the on-disk image (magic, header, per-section CRCs,
    /// records, whole-payload CRC).
    [[nodiscard]] std::string serialize() const;

    /// Parses and verifies an image. Throws socgen::Error on bad magic or
    /// structural truncation; throws BitstreamError on CRC failure, with
    /// the indices of the sections whose per-section CRCs fail (a precise
    /// diff of where the corruption landed — empty if only the header is
    /// damaged).
    static Bitstream parse(std::string_view image);
};

/// Builds the bitstream for a synthesized design.
[[nodiscard]] Bitstream generateBitstream(const BlockDesign& design,
                                          const SynthesisResult& synthesis);

} // namespace socgen::soc
