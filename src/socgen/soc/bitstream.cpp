#include "socgen/soc/bitstream.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <array>
#include <sstream>

namespace socgen::soc {

namespace {

constexpr std::string_view kMagic = "SOCGENBIT1";

std::array<std::uint32_t, 256> makeCrcTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t crc32(std::string_view data) {
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (char ch : data) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

std::string Bitstream::serialize() const {
    std::ostringstream body;
    body << designName << '\n' << part << '\n' << configRecords.size() << '\n';
    for (const auto& record : configRecords) {
        body << record.size() << ':' << record << '\n';
    }
    const std::string payload = body.str();
    std::ostringstream out;
    out << kMagic << '\n' << format("%08x", crc32(payload)) << '\n' << payload;
    return out.str();
}

Bitstream Bitstream::parse(std::string_view image) {
    std::istringstream in{std::string(image)};
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic) {
        throw Error("bitstream: bad magic");
    }
    std::string crcLine;
    if (!std::getline(in, crcLine)) {
        throw Error("bitstream: truncated header");
    }
    std::string payload;
    {
        std::ostringstream rest;
        rest << in.rdbuf();
        payload = rest.str();
    }
    const auto expected = static_cast<std::uint32_t>(std::stoul(crcLine, nullptr, 16));
    if (crc32(payload) != expected) {
        throw Error("bitstream: CRC mismatch (image corrupted)");
    }
    std::istringstream body(payload);
    Bitstream bit;
    if (!std::getline(body, bit.designName) || !std::getline(body, bit.part)) {
        throw Error("bitstream: truncated body");
    }
    std::string countLine;
    if (!std::getline(body, countLine)) {
        throw Error("bitstream: missing record count");
    }
    const std::size_t count = std::stoul(countLine);
    for (std::size_t i = 0; i < count; ++i) {
        std::string lenPrefix;
        if (!std::getline(body, lenPrefix, ':')) {
            throw Error("bitstream: truncated record length");
        }
        const std::size_t len = std::stoul(lenPrefix);
        std::string record(len, '\0');
        body.read(record.data(), static_cast<std::streamsize>(len));
        if (static_cast<std::size_t>(body.gcount()) != len) {
            throw Error("bitstream: truncated record");
        }
        body.get();  // trailing newline
        bit.configRecords.push_back(std::move(record));
    }
    bit.crc = expected;
    return bit;
}

Bitstream generateBitstream(const BlockDesign& design, const SynthesisResult& synthesis) {
    if (!design.finalised()) {
        throw SynthesisError("bitstream generation requires a finalised design");
    }
    Bitstream bit;
    bit.designName = design.name();
    bit.part = design.device().part;
    for (const auto& inst : design.instances()) {
        bit.configRecords.push_back(format(
            "%s kind=%s lut=%lld ff=%lld bram=%lld dsp=%lld", inst.name.c_str(),
            std::string(ipKindName(inst.kind)).c_str(),
            static_cast<long long>(inst.resources.lut),
            static_cast<long long>(inst.resources.ff),
            static_cast<long long>(inst.resources.bram18),
            static_cast<long long>(inst.resources.dsp)));
    }
    bit.configRecords.push_back(format("timing clk=%.2fMHz met=%d",
                                       synthesis.achievedClockMhz,
                                       synthesis.timingMet ? 1 : 0));
    // The payload CRC is embedded by serialize(); parse() fills the field.
    return bit;
}

} // namespace socgen::soc
