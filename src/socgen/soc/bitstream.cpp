#include "socgen/soc/bitstream.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <array>
#include <sstream>

namespace socgen::soc {

namespace {

// v2 adds a per-record CRC so corruption can be localised to a section.
constexpr std::string_view kMagic = "SOCGENBIT2";

std::array<std::uint32_t, 256> makeCrcTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
            c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t crc32(std::string_view data) {
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t crc = 0xFFFFFFFFu;
    for (char ch : data) {
        crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
    }
    return crc ^ 0xFFFFFFFFu;
}

std::string Bitstream::serialize() const {
    std::ostringstream body;
    body << designName << '\n' << part << '\n' << configRecords.size() << '\n';
    for (const auto& record : configRecords) {
        body << record.size() << ':' << format("%08x", crc32(record)) << ':' << record
             << '\n';
    }
    const std::string payload = body.str();
    std::ostringstream out;
    out << kMagic << '\n' << format("%08x", crc32(payload)) << '\n' << payload;
    return out.str();
}

namespace {

struct ScannedRecord {
    std::string record;
    std::uint32_t expectedCrc = 0;
    bool structurallyValid = false;
};

/// Best-effort structural scan of the payload body: recovers as many
/// `len:crc:record` sections as possible even when some are damaged, so
/// a CRC failure can be pinned to specific section indices.
std::vector<ScannedRecord> scanRecords(const std::string& payload,
                                       Bitstream& bit) {
    std::vector<ScannedRecord> scanned;
    std::istringstream body(payload);
    if (!std::getline(body, bit.designName) || !std::getline(body, bit.part)) {
        return scanned;
    }
    std::string countLine;
    if (!std::getline(body, countLine)) {
        return scanned;
    }
    std::size_t count = 0;
    try {
        count = std::stoul(countLine);
    } catch (const std::exception&) {
        return scanned;
    }
    for (std::size_t i = 0; i < count; ++i) {
        ScannedRecord rec;
        std::string lenPrefix;
        std::string crcPrefix;
        if (!std::getline(body, lenPrefix, ':') || !std::getline(body, crcPrefix, ':')) {
            scanned.push_back(std::move(rec));
            break;
        }
        std::size_t len = 0;
        try {
            len = std::stoul(lenPrefix);
            rec.expectedCrc =
                static_cast<std::uint32_t>(std::stoul(crcPrefix, nullptr, 16));
        } catch (const std::exception&) {
            scanned.push_back(std::move(rec));
            break;
        }
        rec.record.assign(len, '\0');
        body.read(rec.record.data(), static_cast<std::streamsize>(len));
        if (static_cast<std::size_t>(body.gcount()) != len) {
            rec.record.clear();
            scanned.push_back(std::move(rec));
            break;
        }
        body.get();  // trailing newline
        rec.structurallyValid = true;
        scanned.push_back(std::move(rec));
    }
    return scanned;
}

std::string renderSectionList(const std::vector<std::size_t>& sections) {
    std::string list;
    for (std::size_t idx : sections) {
        if (!list.empty()) {
            list += ", ";
        }
        list += std::to_string(idx);
    }
    return list;
}

} // namespace

Bitstream Bitstream::parse(std::string_view image) {
    std::istringstream in{std::string(image)};
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic) {
        throw Error("bitstream: bad magic");
    }
    std::string crcLine;
    if (!std::getline(in, crcLine)) {
        throw Error("bitstream: truncated header");
    }
    std::string payload;
    {
        std::ostringstream rest;
        rest << in.rdbuf();
        payload = rest.str();
    }
    std::uint32_t expected = 0;
    try {
        expected = static_cast<std::uint32_t>(std::stoul(crcLine, nullptr, 16));
    } catch (const std::exception&) {
        throw Error("bitstream: malformed CRC header");
    }

    Bitstream bit;
    const std::vector<ScannedRecord> scanned = scanRecords(payload, bit);
    std::vector<std::size_t> badSections;
    for (std::size_t i = 0; i < scanned.size(); ++i) {
        if (!scanned[i].structurallyValid ||
            crc32(scanned[i].record) != scanned[i].expectedCrc) {
            badSections.push_back(i);
        }
    }
    if (crc32(payload) != expected || !badSections.empty()) {
        if (!badSections.empty()) {
            throw BitstreamError(
                format("CRC mismatch in %zu section(s): [%s]", badSections.size(),
                       renderSectionList(badSections).c_str()),
                badSections);
        }
        throw BitstreamError("CRC mismatch in header (all sections verify)", {});
    }
    for (const auto& rec : scanned) {
        bit.configRecords.push_back(rec.record);
    }
    bit.crc = expected;
    return bit;
}

Bitstream generateBitstream(const BlockDesign& design, const SynthesisResult& synthesis) {
    if (!design.finalised()) {
        throw SynthesisError("bitstream generation requires a finalised design");
    }
    Bitstream bit;
    bit.designName = design.name();
    bit.part = design.device().part;
    for (const auto& inst : design.instances()) {
        bit.configRecords.push_back(format(
            "%s kind=%s lut=%lld ff=%lld bram=%lld dsp=%lld", inst.name.c_str(),
            std::string(ipKindName(inst.kind)).c_str(),
            static_cast<long long>(inst.resources.lut),
            static_cast<long long>(inst.resources.ff),
            static_cast<long long>(inst.resources.bram18),
            static_cast<long long>(inst.resources.dsp)));
    }
    bit.configRecords.push_back(format("timing clk=%.2fMHz met=%d",
                                       synthesis.achievedClockMhz,
                                       synthesis.timingMet ? 1 : 0));
    // The payload CRC is embedded by serialize(); parse() fills the field.
    return bit;
}

} // namespace socgen::soc
