#pragma once

#include "socgen/axi/lite.hpp"
#include "socgen/axi/stream.hpp"
#include "socgen/hls/interpreter.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/soc/irq.hpp"

#include <map>
#include <string>

namespace socgen::soc {

/// Control register map of a generated accelerator (Vivado HLS
/// ap_ctrl_hs-style): offset 0x00 is CTRL/STATUS, scalar arguments and
/// results live at 0x10 + 4*portIndex.
namespace accreg {
inline constexpr std::uint64_t kCtrl = 0x00;
inline constexpr std::uint32_t kCtrlStart = 0x1;   ///< write: ap_start
inline constexpr std::uint32_t kStatusDone = 0x2;  ///< read: ap_done
inline constexpr std::uint32_t kStatusIdle = 0x4;  ///< read: ap_idle
inline constexpr std::uint64_t kArgBase = 0x10;

[[nodiscard]] inline std::uint64_t argOffset(std::uint32_t portIndex) {
    return kArgBase + 4ULL * portIndex;
}
} // namespace accreg

/// The PL-side wrapper around one HLS-generated core: it executes the
/// kernel's compiled bytecode with schedule-derived timing, exposes the
/// AXI-Lite control/argument registers, and bridges the kernel's stream
/// ports to AXI-Stream channels.
class AcceleratorCore final : public sim::Component,
                              public axi::LiteSlave,
                              private hls::KernelIo {
public:
    AcceleratorCore(std::string name, const hls::Program& program);

    /// Binds a kernel stream port (by name) to a channel. Every stream
    /// port must be bound before simulation.
    void bindStream(const std::string& portName, axi::StreamChannel& channel);

    /// Auto-start: the core begins executing immediately and does not
    /// wait for an AXI-Lite start command (used for pure-stream dataflow
    /// cores inside a phase, which "fire as soon as the minimum amount of
    /// data is available" — paper Section II-A).
    void setAutoStart(bool autoStart) { autoStart_ = autoStart; }

    /// Optional ap_done interrupt line.
    void setDoneIrq(IrqLine* line) { doneIrq_ = line; }

    /// Sets a scalar argument directly (testing convenience; the system
    /// path goes through writeRegister).
    void setArg(const std::string& portName, std::uint64_t value);
    [[nodiscard]] std::uint64_t result(const std::string& portName) const;

    [[nodiscard]] const hls::KernelVm& vm() const { return vm_; }
    [[nodiscard]] bool done() const { return vm_.finished(); }

    // sim::Component
    [[nodiscard]] const std::string& name() const override { return name_; }
    bool tick() override;
    [[nodiscard]] bool idle() const override;

    // axi::LiteSlave
    [[nodiscard]] std::uint32_t readRegister(std::uint64_t offset) override;
    void writeRegister(std::uint64_t offset, std::uint32_t value) override;

private:
    // hls::KernelIo
    std::uint64_t argValue(hls::PortId port) override;
    void setResult(hls::PortId port, std::uint64_t value) override;
    bool streamRead(hls::PortId port, std::uint64_t& value) override;
    bool streamWrite(hls::PortId port, std::uint64_t value) override;

    [[nodiscard]] hls::PortId portIdOf(const std::string& portName) const;

    std::string name_;
    hls::Program program_;  ///< owned copy (the VM holds a reference)
    hls::KernelVm vm_;
    std::map<hls::PortId, axi::StreamChannel*> streams_;
    std::map<hls::PortId, std::uint64_t> scalars_;  ///< args and results
    bool autoStart_ = false;
    bool doneLatched_ = false;
    IrqLine* doneIrq_ = nullptr;
};

} // namespace socgen::soc
