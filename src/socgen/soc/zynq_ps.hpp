#pragma once

#include "socgen/sim/engine.hpp"
#include "socgen/soc/interconnect.hpp"
#include "socgen/soc/irq.hpp"
#include "socgen/soc/memory.hpp"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace socgen::soc {

/// Model of the dual-core ARM Cortex-A9 processing system: it executes a
/// queued software program consisting of software tasks (host callables
/// with a modelled cycle cost), memory-mapped register accesses through
/// the GP interconnect, and status polling — exactly the operations the
/// generated driver API performs (writeDMA/readDMA and AXI-Lite
/// configuration, paper Section V).
class ZynqPs final : public sim::Component {
public:
    using TaskFn = std::function<void(Memory&)>;

    ZynqPs(std::string name, Memory& memory, GpInterconnect& gp);

    // -- program construction (executed in FIFO order) ------------------------

    /// Pure software task: runs `fn` against memory and occupies the CPU
    /// for `cycles` PL-clock cycles.
    void task(std::string label, std::uint64_t cycles, TaskFn fn);

    /// Single AXI-Lite register write.
    void writeReg(std::uint64_t address, std::uint32_t value);

    /// Polls `address` until (value & mask) == expect, retrying every
    /// `pollInterval` cycles (driver-style busy-wait).
    void pollEq(std::uint64_t address, std::uint32_t mask, std::uint32_t expect,
                std::uint64_t pollInterval = 16);

    /// Fixed stall (e.g. cache maintenance in the generated driver).
    void delay(std::uint64_t cycles);

    /// Blocks until `line` is raised, then acknowledges it and charges
    /// `wakeLatency` cycles (context switch / ISR entry). Unlike pollEq
    /// this generates no bus traffic while waiting — the interrupt-driven
    /// driver alternative to busy-wait polling.
    void waitIrq(IrqLine& line, std::uint64_t wakeLatency = 24);

    /// waitIrq with a registered escape hatch: if the IRQ watchdog
    /// expires, the wait degrades into polling `address` for
    /// (value & mask) == expect instead of throwing — the hardened driver
    /// pattern for a completion source whose interrupt edge may be lost.
    void waitIrqWithFallback(IrqLine& line, std::uint64_t address, std::uint32_t mask,
                             std::uint32_t expect, std::uint64_t wakeLatency = 24,
                             std::uint64_t pollInterval = 16);

    // -- watchdogs -----------------------------------------------------------
    // Budgets are in PL-clock cycles per operation; 0 (default) disables.
    // A poll exceeding its budget throws WatchdogError naming the address,
    // mask and last observed value. An IRQ wait exceeding its budget falls
    // back to polling when the op carries a fallback spec (and fallback is
    // enabled), else throws WatchdogError naming the line.
    void setPollWatchdog(std::uint64_t cycles) { pollWatchdog_ = cycles; }
    void setIrqWatchdog(std::uint64_t cycles, bool fallbackToPoll = true) {
        irqWatchdog_ = cycles;
        irqFallbackEnabled_ = fallbackToPoll;
    }
    [[nodiscard]] std::uint64_t irqWatchdogFires() const { return irqWatchdogFires_; }
    [[nodiscard]] std::uint64_t irqFallbacks() const { return irqFallbacks_; }

    // sim::Component
    [[nodiscard]] const std::string& name() const override { return name_; }
    bool tick() override;
    [[nodiscard]] bool idle() const override;
    [[nodiscard]] std::string debugState() const override;

    // -- statistics ----------------------------------------------------------
    [[nodiscard]] std::uint64_t cyclesBusy() const { return cyclesBusy_; }
    [[nodiscard]] std::uint64_t taskCycles() const { return taskCycles_; }
    [[nodiscard]] std::uint64_t driverCycles() const { return driverCycles_; }
    [[nodiscard]] std::uint64_t irqWakeups() const { return irqWakeups_; }
    [[nodiscard]] std::size_t opsExecuted() const { return opsExecuted_; }

private:
    enum class OpKind { Task, WriteReg, Poll, Delay, WaitIrq };

    struct Op {
        OpKind kind = OpKind::Delay;
        std::string label;
        std::uint64_t cycles = 0;
        TaskFn fn;
        std::uint64_t address = 0;
        std::uint32_t value = 0;
        std::uint32_t mask = 0;
        std::uint32_t expect = 0;
        std::uint64_t pollInterval = 16;
        IrqLine* irq = nullptr;
        bool hasIrqFallback = false;
    };

    void startNextOp();

    std::string name_;
    Memory& memory_;
    GpInterconnect& gp_;
    std::deque<Op> program_;
    std::uint64_t busyFor_ = 0;
    bool pollingActive_ = false;
    bool irqWaitActive_ = false;
    Op pollingOp_;
    std::uint64_t cyclesBusy_ = 0;
    std::uint64_t taskCycles_ = 0;
    std::uint64_t driverCycles_ = 0;
    std::uint64_t irqWakeups_ = 0;
    std::size_t opsExecuted_ = 0;
    std::uint64_t tickCount_ = 0;
    std::uint64_t waitStartTick_ = 0;  ///< tick at which the active poll/wait began
    std::uint32_t lastPollValue_ = 0;
    std::uint64_t pollWatchdog_ = 0;
    std::uint64_t irqWatchdog_ = 0;
    bool irqFallbackEnabled_ = true;
    std::uint64_t irqWatchdogFires_ = 0;
    std::uint64_t irqFallbacks_ = 0;
};

} // namespace socgen::soc
