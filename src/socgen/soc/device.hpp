#pragma once

#include "socgen/hls/resources.hpp"

#include <string>

namespace socgen::soc {

/// Capacity description of the reconfigurable fabric of a target device.
/// The default is the Zynq XC7Z020 on the AVNET Zedboard — the board the
/// paper targets throughout (Section II-B, Figure 2).
struct FpgaDevice {
    std::string part = "xc7z020clg484-1";
    std::string board = "avnet.com:zedboard:part0:1.4";
    std::int64_t lut = 53200;
    std::int64_t ff = 106400;
    std::int64_t bram18 = 280;
    std::int64_t dsp = 220;
    double fabricClockMhz = 100.0;

    [[nodiscard]] bool fits(const hls::ResourceEstimate& r) const {
        return r.lut <= lut && r.ff <= ff && r.bram18 <= bram18 && r.dsp <= dsp;
    }

    /// Utilisation of the scarcest resource, in [0, +inf).
    [[nodiscard]] double worstUtilisation(const hls::ResourceEstimate& r) const;
};

/// The Zedboard device description used by default flows.
[[nodiscard]] FpgaDevice zedboard();

/// Fixed PL-side cost of the infrastructure IP the flow instantiates
/// automatically (paper Section IV-A: Zynq PS configuration, HP ports,
/// DMA core, interconnect, reset).
struct IpCatalog {
    [[nodiscard]] hls::ResourceEstimate zynqPs() const { return {}; }  // hardened
    [[nodiscard]] hls::ResourceEstimate axiDma() const { return {1900, 2500, 4, 0}; }
    [[nodiscard]] hls::ResourceEstimate axiInterconnectBase() const {
        return {430, 590, 0, 0};
    }
    [[nodiscard]] hls::ResourceEstimate axiInterconnectPerPort() const {
        return {120, 150, 0, 0};
    }
    [[nodiscard]] hls::ResourceEstimate procSysReset() const { return {18, 33, 0, 0}; }
};

} // namespace socgen::soc
