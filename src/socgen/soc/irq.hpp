#pragma once

#include <cstdint>
#include <string>

namespace socgen::soc {

/// A PL-to-PS interrupt line (one of the Zynq's F2P IRQs). Completion
/// sources (DMA channels, accelerator done signals) raise it; the PS
/// model's waitIrq() consumes it. Level-latched: stays pending until
/// acknowledged.
class IrqLine {
public:
    explicit IrqLine(std::string name) : name_(std::move(name)) {}

    void raise() {
        pending_ = true;
        ++raiseCount_;
    }

    /// Consumes a pending interrupt; returns false if none.
    bool acknowledge() {
        const bool was = pending_;
        pending_ = false;
        return was;
    }

    [[nodiscard]] bool pending() const { return pending_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t raiseCount() const { return raiseCount_; }

private:
    std::string name_;
    bool pending_ = false;
    std::uint64_t raiseCount_ = 0;
};

} // namespace socgen::soc
