#pragma once

#include <cstdint>
#include <string>

namespace socgen::soc {

/// A PL-to-PS interrupt line (one of the Zynq's F2P IRQs). Completion
/// sources (DMA channels, accelerator done signals) raise it; the PS
/// model's waitIrq() consumes it. Level-latched: stays pending until
/// acknowledged.
///
/// Fault hooks model a flaky IRQ path: armDrop() swallows the next N
/// edges outright, armDelay() holds the next edge for N cycles (the
/// holder must call tickDelay() once per cycle — SystemSimulator does
/// this via an engine probe).
class IrqLine {
public:
    explicit IrqLine(std::string name) : name_(std::move(name)) {}

    void raise() {
        if (dropArmed_ > 0) {
            --dropArmed_;
            ++dropped_;
            return;
        }
        if (delayArm_ > 0) {
            delayRemaining_ = delayArm_;
            delayArm_ = 0;
            delayHeld_ = true;
            return;
        }
        pending_ = true;
        ++raiseCount_;
    }

    /// Consumes a pending interrupt; returns false if none.
    bool acknowledge() {
        const bool was = pending_;
        pending_ = false;
        return was;
    }

    // -- fault hooks ---------------------------------------------------------
    void armDrop(std::uint64_t edges = 1) { dropArmed_ += edges; }
    void armDelay(std::uint64_t cycles) { delayArm_ = cycles; }

    /// Advances a held (delayed) edge by one cycle; delivers it when the
    /// delay expires. No-op unless a delayed edge is in flight.
    void tickDelay() {
        if (delayHeld_ && --delayRemaining_ == 0) {
            delayHeld_ = false;
            pending_ = true;
            ++raiseCount_;
        }
    }

    [[nodiscard]] bool pending() const { return pending_; }
    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] std::uint64_t raiseCount() const { return raiseCount_; }
    [[nodiscard]] std::uint64_t droppedCount() const { return dropped_; }
    [[nodiscard]] bool delayInFlight() const { return delayHeld_; }

private:
    std::string name_;
    bool pending_ = false;
    std::uint64_t raiseCount_ = 0;
    std::uint64_t dropArmed_ = 0;
    std::uint64_t dropped_ = 0;
    std::uint64_t delayArm_ = 0;
    std::uint64_t delayRemaining_ = 0;
    bool delayHeld_ = false;
};

} // namespace socgen::soc
