#include "socgen/soc/accelerator.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::soc {

AcceleratorCore::AcceleratorCore(std::string name, const hls::Program& program)
    : name_(std::move(name)), program_(program), vm_(program_, *this) {}

hls::PortId AcceleratorCore::portIdOf(const std::string& portName) const {
    for (hls::PortId i = 0; i < program_.ports.size(); ++i) {
        if (program_.ports[i].name == portName) {
            return i;
        }
    }
    throw SimulationError(format("%s: no kernel port named '%s'", name_.c_str(),
                                 portName.c_str()));
}

void AcceleratorCore::bindStream(const std::string& portName, axi::StreamChannel& channel) {
    const hls::PortId id = portIdOf(portName);
    if (!hls::isStreamPort(program_.ports[id].kind)) {
        throw SimulationError(format("%s: port '%s' is not a stream port", name_.c_str(),
                                     portName.c_str()));
    }
    streams_[id] = &channel;
}

void AcceleratorCore::setArg(const std::string& portName, std::uint64_t value) {
    scalars_[portIdOf(portName)] = value;
}

std::uint64_t AcceleratorCore::result(const std::string& portName) const {
    const auto it = scalars_.find(portIdOf(portName));
    return it == scalars_.end() ? 0 : it->second;
}

bool AcceleratorCore::tick() {
    if (autoStart_ && !vm_.running() && !vm_.finished()) {
        vm_.start();
    }
    if (!vm_.running()) {
        return false;
    }
    const bool progressed = vm_.tick();
    if (vm_.finished() && !doneLatched_) {
        doneLatched_ = true;
        if (doneIrq_ != nullptr) {
            doneIrq_->raise();
        }
    }
    return progressed;
}

bool AcceleratorCore::idle() const {
    return !vm_.running();
}

std::uint32_t AcceleratorCore::readRegister(std::uint64_t offset) {
    if (offset == accreg::kCtrl) {
        std::uint32_t status = 0;
        if (doneLatched_) {
            status |= accreg::kStatusDone;
        }
        if (!vm_.running()) {
            status |= accreg::kStatusIdle;
        }
        return status;
    }
    if (offset >= accreg::kArgBase && (offset - accreg::kArgBase) % 4 == 0) {
        const auto index = static_cast<std::uint32_t>((offset - accreg::kArgBase) / 4);
        if (index < program_.ports.size()) {
            const auto it = scalars_.find(index);
            return it == scalars_.end() ? 0 : static_cast<std::uint32_t>(it->second);
        }
    }
    throw SimulationError(format("%s: read of unknown register 0x%llx", name_.c_str(),
                                 static_cast<unsigned long long>(offset)));
}

void AcceleratorCore::writeRegister(std::uint64_t offset, std::uint32_t value) {
    if (offset == accreg::kCtrl) {
        if ((value & accreg::kCtrlStart) != 0) {
            if (vm_.running()) {
                throw SimulationError(name_ + ": ap_start while still running");
            }
            doneLatched_ = false;
            vm_.start();
        }
        return;
    }
    if (offset >= accreg::kArgBase && (offset - accreg::kArgBase) % 4 == 0) {
        const auto index = static_cast<std::uint32_t>((offset - accreg::kArgBase) / 4);
        if (index < program_.ports.size() &&
            program_.ports[index].kind == hls::PortKind::ScalarIn) {
            scalars_[index] = value;
            return;
        }
    }
    throw SimulationError(format("%s: write of unknown register 0x%llx", name_.c_str(),
                                 static_cast<unsigned long long>(offset)));
}

std::uint64_t AcceleratorCore::argValue(hls::PortId port) {
    const auto it = scalars_.find(port);
    return it == scalars_.end() ? 0 : it->second;
}

void AcceleratorCore::setResult(hls::PortId port, std::uint64_t value) {
    scalars_[port] = value;
}

bool AcceleratorCore::streamRead(hls::PortId port, std::uint64_t& value) {
    const auto it = streams_.find(port);
    if (it == streams_.end()) {
        throw SimulationError(format("%s: stream port '%s' not bound", name_.c_str(),
                                     program_.ports[port].name.c_str()));
    }
    axi::StreamBeat beat;
    if (!it->second->tryPop(beat)) {
        return false;
    }
    value = beat.data;
    return true;
}

bool AcceleratorCore::streamWrite(hls::PortId port, std::uint64_t value) {
    const auto it = streams_.find(port);
    if (it == streams_.end()) {
        throw SimulationError(format("%s: stream port '%s' not bound", name_.c_str(),
                                     program_.ports[port].name.c_str()));
    }
    return it->second->tryPush(value, false);
}

} // namespace socgen::soc
