#pragma once

#include "socgen/hls/directives.hpp"
#include "socgen/hls/resources.hpp"
#include "socgen/soc/device.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace socgen::soc {

/// IP kinds the integration step instantiates (mirrors the cells a
/// Vivado IP-integrator design for the paper's flow contains).
enum class IpKind {
    ZynqPs,          ///< processing_system7
    AxiDma,          ///< axi_dma (one MM2S + one S2MM channel)
    AxiInterconnect, ///< axi_interconnect / axi_smartconnect
    ProcSysReset,    ///< proc_sys_reset
    HlsCore,         ///< a generated accelerator
};

[[nodiscard]] std::string_view ipKindName(IpKind kind);

/// A stream-capable port of an instantiated HLS core.
struct CorePort {
    std::string name;
    hls::InterfaceProtocol protocol = hls::InterfaceProtocol::AxiStream;
    bool isInput = true;   ///< direction as seen by the core
    unsigned width = 32;
};

struct IpInstance {
    std::string name;
    IpKind kind = IpKind::HlsCore;
    std::string coreName;                 ///< HLS kernel for HlsCore instances
    hls::ResourceEstimate resources;      ///< PL cost of this instance
    std::vector<CorePort> streamPorts;    ///< HlsCore only
    bool hasAxiLiteControl = false;       ///< HlsCore with `i` ports / DMA
};

/// One endpoint of a stream connection. `kSoc` ('soc in the DSL) denotes
/// the processing system reached through a DMA channel.
struct StreamEndpoint {
    static constexpr const char* kSoc = "'soc";
    std::string instance;  ///< IpInstance name or kSoc
    std::string port;      ///< core port (empty for kSoc)

    [[nodiscard]] bool isSoc() const { return instance == kSoc; }
    [[nodiscard]] std::string str() const;
};

/// A point-to-point AXI-Stream connection (DSL `tg link ... to ...`).
struct StreamConnection {
    StreamEndpoint from;
    StreamEndpoint to;
    unsigned width = 32;
    /// Filled by finalise(): which DMA instance and route index serves a
    /// 'soc endpoint (meaningless when neither side is 'soc).
    std::string dmaInstance;
    int dmaRoute = -1;
};

/// An AXI-Lite attachment of a core's control interface to the GP master
/// (DSL `tg connect <node>`).
struct LiteConnection {
    std::string instance;
    std::uint64_t baseAddress = 0;  ///< assigned by finalise()
    std::uint64_t size = 0x10000;
};

/// How 'soc stream endpoints map onto DMA cores. The paper's tool shares
/// one AXI DMA across channels; Xilinx SDSoC "instantiates a DMA
/// component for each of them" (Section VII) — the ablation bench
/// compares both.
enum class DmaPolicy { SharedDma, DmaPerLink };

/// The system-integration model: the set of IP instances and their
/// interconnections that the DSL's edges section assembles, equivalent
/// to the Vivado block design of Figure 10.
class BlockDesign {
public:
    explicit BlockDesign(std::string name, FpgaDevice device = zedboard(),
                         DmaPolicy dmaPolicy = DmaPolicy::SharedDma);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const FpgaDevice& device() const { return device_; }
    [[nodiscard]] DmaPolicy dmaPolicy() const { return dmaPolicy_; }

    /// Adds an accelerator produced by HLS (paper flow: each node of the
    /// DSL becomes one instance).
    void addHlsCore(const std::string& coreName, hls::ResourceEstimate resources,
                    std::vector<CorePort> streamPorts, bool hasAxiLiteControl);

    /// Declares a stream connection; endpoints may be 'soc.
    void connectStream(StreamEndpoint from, StreamEndpoint to, unsigned width);

    /// Attaches a core's AXI-Lite control interface to the GP port.
    void connectLite(const std::string& instanceName);

    /// Instantiates infrastructure (PS, resets, interconnects, DMA cores
    /// according to policy), assigns addresses and DMA routes, and
    /// validates the design. Must be called exactly once, after all
    /// cores/connections are added. Throws SynthesisError on invalid
    /// topologies (dangling ports, double-driven ports, unknown cores).
    void finalise();
    [[nodiscard]] bool finalised() const { return finalised_; }

    // -- inspection -----------------------------------------------------------
    [[nodiscard]] const std::vector<IpInstance>& instances() const { return instances_; }
    [[nodiscard]] const std::vector<StreamConnection>& streams() const { return streams_; }
    [[nodiscard]] const std::vector<LiteConnection>& lites() const { return lites_; }

    [[nodiscard]] const IpInstance& instance(std::string_view name) const;
    [[nodiscard]] bool hasInstance(std::string_view name) const;
    [[nodiscard]] std::vector<const IpInstance*> dmaInstances() const;
    [[nodiscard]] std::vector<const IpInstance*> hlsCores() const;

    /// Total PL resources of all instances plus interconnect scaling.
    [[nodiscard]] hls::ResourceEstimate totalResources() const;

    /// Graphviz dot rendering (the analogue of Figure 10).
    [[nodiscard]] std::string toDot() const;

private:
    void validate() const;

    std::string name_;
    FpgaDevice device_;
    DmaPolicy dmaPolicy_;
    IpCatalog catalog_;
    std::vector<IpInstance> instances_;
    std::vector<StreamConnection> streams_;
    std::vector<LiteConnection> lites_;
    bool finalised_ = false;
};

} // namespace socgen::soc
