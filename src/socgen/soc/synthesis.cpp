#include "socgen/soc/synthesis.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace socgen::soc {

std::string SynthesisResult::utilisationReport() const {
    std::ostringstream out;
    out << "== Utilisation report: " << designName << " ==\n";
    out << format("%-28s %8s %8s %8s %6s\n", "Instance", "LUT", "FF", "RAMB18", "DSP");
    for (const auto& row : perInstance) {
        out << format("%-28s %8lld %8lld %8lld %6lld\n", row.instance.c_str(),
                      static_cast<long long>(row.resources.lut),
                      static_cast<long long>(row.resources.ff),
                      static_cast<long long>(row.resources.bram18),
                      static_cast<long long>(row.resources.dsp));
    }
    out << format("%-28s %8lld %8lld %8lld %6lld\n", "TOTAL",
                  static_cast<long long>(total.lut), static_cast<long long>(total.ff),
                  static_cast<long long>(total.bram18), static_cast<long long>(total.dsp));
    out << format("worst utilisation: %.1f%%   clock: %.1f MHz (%s)\n", utilisationPercent,
                  achievedClockMhz, timingMet ? "timing met" : "TIMING FAILED");
    return out.str();
}

SynthesisResult SynthesisModel::run(const BlockDesign& design) const {
    if (!design.finalised()) {
        throw SynthesisError("synthesis requires a finalised design");
    }
    SynthesisResult result;
    result.designName = design.name();
    for (const auto& inst : design.instances()) {
        result.perInstance.push_back(UtilisationRow{inst.name, inst.resources});
        result.total += inst.resources;
    }
    const FpgaDevice& dev = design.device();
    if (!dev.fits(result.total)) {
        throw SynthesisError(format(
            "design %s does not fit %s: needs %s, device has LUT=%lld FF=%lld "
            "RAMB18=%lld DSP=%lld",
            design.name().c_str(), dev.part.c_str(), result.total.str().c_str(),
            static_cast<long long>(dev.lut), static_cast<long long>(dev.ff),
            static_cast<long long>(dev.bram18), static_cast<long long>(dev.dsp)));
    }
    const double util = dev.worstUtilisation(result.total);
    result.utilisationPercent = util * 100.0;

    // Achieved clock: routing congestion degrades timing as utilisation
    // grows; a deterministic per-design jitter stands in for placement
    // noise (seeded from the design name, so runs are reproducible).
    const double jitter =
        static_cast<double>(fnv1a64(design.name()) % 1000) / 1000.0;  // [0,1)
    const double congestion = 1.0 + 0.55 * util * util;
    result.achievedClockMhz = 148.0 / congestion - 4.0 * jitter;
    result.timingMet = result.achievedClockMhz >= dev.fabricClockMhz;

    // Deterministic tool-time model (seconds), sized so the Otsu case
    // study's four architectures plus per-core HLS land in the ~42 min
    // ballpark the paper reports (Figure 9 discussion).
    const auto lut = static_cast<double>(result.total.lut);
    const auto cells = static_cast<double>(design.instances().size());
    result.synthSeconds = 60.0 + 0.012 * lut + 4.0 * cells;
    result.implSeconds = 90.0 + 0.020 * lut + 6.0 * cells +
                         250.0 * util * util;  // P&R effort grows with congestion
    result.bitgenSeconds = 35.0;

    Logger::global().info(format(
        "synthesis: %s %s util=%.1f%% clk=%.1fMHz tool=%.0fs", design.name().c_str(),
        result.total.str().c_str(), result.utilisationPercent, result.achievedClockMhz,
        result.totalSeconds()));
    return result;
}

} // namespace socgen::soc
