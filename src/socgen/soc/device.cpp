#include "socgen/soc/device.hpp"

#include <algorithm>

namespace socgen::soc {

double FpgaDevice::worstUtilisation(const hls::ResourceEstimate& r) const {
    double worst = 0.0;
    worst = std::max(worst, static_cast<double>(r.lut) / static_cast<double>(lut));
    worst = std::max(worst, static_cast<double>(r.ff) / static_cast<double>(ff));
    worst = std::max(worst, static_cast<double>(r.bram18) / static_cast<double>(bram18));
    worst = std::max(worst, static_cast<double>(r.dsp) / static_cast<double>(dsp));
    return worst;
}

FpgaDevice zedboard() {
    return FpgaDevice{};
}

} // namespace socgen::soc
