#include "socgen/soc/interconnect.hpp"

namespace socgen::soc {

std::uint32_t GpInterconnect::read(std::uint64_t address) {
    pendingCycles_ += axi::LiteBus::kAccessLatency + kHopLatency;
    return bus_.read(address);
}

void GpInterconnect::write(std::uint64_t address, std::uint32_t value) {
    pendingCycles_ += axi::LiteBus::kAccessLatency + kHopLatency;
    bus_.write(address, value);
}

std::uint64_t GpInterconnect::consumeAccessCycles() {
    const std::uint64_t cycles = pendingCycles_;
    pendingCycles_ = 0;
    return cycles;
}

} // namespace socgen::soc
