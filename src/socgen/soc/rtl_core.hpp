#pragma once

#include "socgen/rtl/sim_backend.hpp"
#include "socgen/sim/engine.hpp"

#include <memory>
#include <string>

namespace socgen::soc {

/// Adapts a gate-level rtl::Simulator to a sim::Engine component, so a
/// generated core's netlist can be clocked inside the SoC cycle engine
/// (one netlist clock per engine cycle) under either RTL backend. Used
/// by runtime tests to cosimulate a core at gate level next to the
/// behavioural system model; the backend is selectable per instance and
/// via SOCGEN_SIM_BACKEND like every other simulator construction.
class RtlCoreComponent final : public sim::Component {
public:
    /// `netlist` must outlive the component. `donePort` names an output
    /// that reads non-zero when the core has finished (e.g. "ap_done");
    /// empty means the core free-runs and reports idle immediately.
    RtlCoreComponent(std::string name, const rtl::Netlist& netlist,
                     std::string donePort = "ap_done",
                     rtl::SimBackend backend = rtl::SimBackend::Auto);

    /// Full engine configuration (backend, partitioned-evaluation
    /// threads, band grain); batchLanes is ignored — a component clocks
    /// one instance of the core.
    RtlCoreComponent(std::string name, const rtl::Netlist& netlist, std::string donePort,
                     const rtl::SimConfig& config);

    [[nodiscard]] const std::string& name() const override { return name_; }
    bool tick() override;
    [[nodiscard]] bool idle() const override;
    [[nodiscard]] std::string debugState() const override;

    /// The underlying gate-level simulator (drive inputs, read outputs).
    [[nodiscard]] rtl::Simulator& sim() { return *sim_; }
    [[nodiscard]] const rtl::Simulator& sim() const { return *sim_; }

private:
    std::string name_;
    std::string donePort_;
    std::unique_ptr<rtl::Simulator> sim_;
};

} // namespace socgen::soc
