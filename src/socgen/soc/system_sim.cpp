#include "socgen/soc/system_sim.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <sstream>

namespace socgen::soc {

SystemSimulator::SystemSimulator(const BlockDesign& design,
                                 const std::map<std::string, hls::Program>& programs,
                                 SystemOptions options)
    : design_(design), options_(options), gp_(bus_) {
    if (!design.finalised()) {
        throw SimulationError("system simulation requires a finalised design");
    }
    memory_.setEccEnabled(options_.memoryEcc);
    ps_ = std::make_unique<ZynqPs>("arm_ps", memory_, gp_);
    ps_->setPollWatchdog(options_.pollWatchdogCycles);
    ps_->setIrqWatchdog(options_.irqWatchdogCycles, options_.irqWatchdogFallbackToPoll);

    // DMA engines (with F2P completion interrupts when requested).
    for (const IpInstance* inst : design.dmaInstances()) {
        auto dma = std::make_unique<DmaEngine>(inst->name, memory_,
                                               options_.dmaWordsPerCycle);
        dma->setRetryLimit(options_.dmaRetryLimit);
        if (options_.useInterrupts) {
            mm2sIrqs_[inst->name] =
                std::make_unique<IrqLine>(inst->name + "_mm2s_introut");
            s2mmIrqs_[inst->name] =
                std::make_unique<IrqLine>(inst->name + "_s2mm_introut");
            dma->setMm2sIrq(mm2sIrqs_[inst->name].get());
            dma->setS2mmIrq(s2mmIrqs_[inst->name].get());
        }
        dmas_[inst->name] = std::move(dma);
    }

    // Accelerator cores.
    for (const IpInstance* inst : design.hlsCores()) {
        const auto it = programs.find(inst->coreName);
        if (it == programs.end()) {
            throw SimulationError("no compiled program for core " + inst->coreName);
        }
        programs_[inst->coreName] = &it->second;
        auto core = std::make_unique<AcceleratorCore>(inst->name, it->second);
        // Pure-stream cores (no AXI-Lite control attached) fire as soon as
        // data arrives — the dataflow-phase semantics of Section II-A.
        bool hasLite = false;
        for (const auto& l : design.lites()) {
            if (l.instance == inst->name) {
                hasLite = true;
            }
        }
        core->setAutoStart(!hasLite);
        if (options_.useInterrupts && hasLite) {
            coreIrqs_[inst->name] = std::make_unique<IrqLine>(inst->name + "_interrupt");
            core->setDoneIrq(coreIrqs_[inst->name].get());
        }
        cores_[inst->name] = std::move(core);
    }

    // Stream channels; attach to DMA routes / core ports. Iterate in the
    // design's order so route indices assigned by finalise() line up.
    for (const auto& s : design.streams()) {
        auto chan = std::make_unique<axi::StreamChannel>(
            s.from.str() + " -> " + s.to.str(), options_.channelCapacity, s.width);
        if (s.from.isSoc()) {
            const int route = dmas_.at(s.dmaInstance)->attachMm2s(*chan);
            require(route == s.dmaRoute, "MM2S route mismatch with finalise()");
        } else {
            cores_.at(s.from.instance)->bindStream(s.from.port, *chan);
        }
        if (s.to.isSoc()) {
            const int route = dmas_.at(s.dmaInstance)->attachS2mm(*chan);
            require(route == s.dmaRoute, "S2MM route mismatch with finalise()");
        } else {
            cores_.at(s.to.instance)->bindStream(s.to.port, *chan);
        }
        if (options_.attachMonitors) {
            monitors_.push_back(std::make_unique<axi::StreamMonitor>(*chan));
        }
        channels_.push_back(std::move(chan));
    }

    // Memory-mapped slaves.
    for (const auto& l : design.lites()) {
        axi::LiteSlave* slave = nullptr;
        if (const auto dit = dmas_.find(l.instance); dit != dmas_.end()) {
            slave = dit->second.get();
        } else if (const auto cit = cores_.find(l.instance); cit != cores_.end()) {
            slave = cit->second.get();
        } else {
            throw SimulationError("lite connection to unknown instance " + l.instance);
        }
        bus_.mapSlave(l.instance, axi::AddressRange{l.baseAddress, l.size}, *slave);
    }

    // Registration order: PS first (issues work), then DMAs, then cores.
    engine_.add(*ps_);
    for (auto& [name, dma] : dmas_) {
        engine_.add(*dma);
    }
    for (auto& [name, core] : cores_) {
        engine_.add(*core);
    }
    for (auto& monitor : monitors_) {
        engine_.addProbe([m = monitor.get()] { m->sample(); });
    }
    for (auto& chan : channels_) {
        engine_.addChannelWatch([c = chan.get()] {
            sim::DeadlockReport::ChannelState state;
            state.name = c->name();
            state.occupancy = c->size();
            state.capacity = c->capacity();
            state.pushStalls = c->pushStalls();
            state.popStalls = c->popStalls();
            state.full = c->full();
            state.empty = c->empty();
            return state;
        });
    }
    // Delayed IRQ edges (armDelay fault) need a per-cycle clock.
    engine_.addProbe([this] {
        for (auto* irqMap : {&mm2sIrqs_, &s2mmIrqs_, &coreIrqs_}) {
            for (auto& [name, line] : *irqMap) {
                line->tickDelay();
            }
        }
    });
}

AcceleratorCore& SystemSimulator::core(const std::string& name) {
    const auto it = cores_.find(name);
    if (it == cores_.end()) {
        throw SimulationError("no accelerator core named " + name);
    }
    return *it->second;
}

DmaEngine& SystemSimulator::dma(const std::string& name) {
    const auto it = dmas_.find(name);
    if (it == dmas_.end()) {
        throw SimulationError("no DMA engine named " + name);
    }
    return *it->second;
}

axi::StreamChannel& SystemSimulator::channel(std::size_t index) {
    require(index < channels_.size(), "channel index out of range");
    return *channels_[index];
}

axi::StreamChannel* SystemSimulator::channelByName(const std::string& name) {
    for (auto& chan : channels_) {
        if (chan->name() == name) {
            return chan.get();
        }
    }
    return nullptr;
}

IrqLine* SystemSimulator::irqByName(const std::string& name) {
    for (auto* irqMap : {&mm2sIrqs_, &s2mmIrqs_, &coreIrqs_}) {
        for (auto& [instance, line] : *irqMap) {
            if (line->name() == name) {
                return line.get();
            }
        }
    }
    return nullptr;
}

std::vector<std::string> SystemSimulator::channelNames() const {
    std::vector<std::string> names;
    names.reserve(channels_.size());
    for (const auto& chan : channels_) {
        names.push_back(chan->name());
    }
    return names;
}

std::vector<std::string> SystemSimulator::irqNames() const {
    std::vector<std::string> names;
    for (const auto* irqMap : {&mm2sIrqs_, &s2mmIrqs_, &coreIrqs_}) {
        for (const auto& [instance, line] : *irqMap) {
            names.push_back(line->name());
        }
    }
    return names;
}

std::vector<std::string> SystemSimulator::dmaNames() const {
    std::vector<std::string> names;
    names.reserve(dmas_.size());
    for (const auto& [name, dma] : dmas_) {
        names.push_back(name);
    }
    return names;
}

void SystemSimulator::armFaults(sim::FaultInjector& injector) {
    using sim::FaultEvent;
    using sim::FaultKind;
    injector.onFault(FaultKind::StreamStall, [this, &injector](const FaultEvent& e) {
        axi::StreamChannel* chan = channelByName(e.target);
        if (chan == nullptr) {
            throw SimulationError("fault targets unknown channel: " + e.target);
        }
        chan->setPushBlocked(true);
        chan->setPopBlocked(true);
        injector.schedule(
            {FaultKind::StreamResume, engine_.now() + e.a, e.target, 0, 0});
    });
    injector.onFault(FaultKind::StreamResume, [this](const FaultEvent& e) {
        if (axi::StreamChannel* chan = channelByName(e.target)) {
            chan->setPushBlocked(false);
            chan->setPopBlocked(false);
        }
    });
    injector.onFault(FaultKind::IrqDrop, [this](const FaultEvent& e) {
        if (IrqLine* line = irqByName(e.target)) {
            line->armDrop(e.a == 0 ? 1 : e.a);
        }
    });
    injector.onFault(FaultKind::IrqDelay, [this](const FaultEvent& e) {
        if (IrqLine* line = irqByName(e.target)) {
            line->armDelay(e.a);
        }
    });
    injector.onFault(FaultKind::DdrBitFlip, [this](const FaultEvent& e) {
        memory_.injectBitFlip(e.a, static_cast<unsigned>(e.b));
    });
    injector.onFault(FaultKind::DmaCorruptMm2s, [this](const FaultEvent& e) {
        dma(e.target).injectMm2sCorruption(e.a, e.b == 0 ? 1 : e.b);
    });
    injector.onFault(FaultKind::DmaCorruptS2mm, [this](const FaultEvent& e) {
        dma(e.target).injectS2mmCorruption(e.a, e.b == 0 ? 1 : e.b);
    });
    injector.onFault(FaultKind::DmaStall, [this](const FaultEvent& e) {
        dma(e.target).injectStall(e.a);
    });
    injector.attach(engine_);
}

std::uint64_t SystemSimulator::baseAddressOf(const std::string& instance) const {
    for (const auto& l : design_.lites()) {
        if (l.instance == instance) {
            return l.baseAddress;
        }
    }
    throw SimulationError("instance has no AXI-Lite mapping: " + instance);
}

void SystemSimulator::psWriteDma(const std::string& dmaName, int route,
                                 std::uint64_t wordAddr, std::uint32_t words) {
    const std::uint64_t base = baseAddressOf(dmaName);
    ps_->writeReg(base + dmareg::kMm2sAddr, static_cast<std::uint32_t>(wordAddr));
    ps_->writeReg(base + dmareg::kMm2sRoute, static_cast<std::uint32_t>(route));
    ps_->writeReg(base + dmareg::kMm2sLength, words);
    if (options_.useInterrupts) {
        // Carry the status-poll spec so an IRQ watchdog can degrade the
        // wait into polling instead of hanging on a lost edge.
        ps_->waitIrqWithFallback(*mm2sIrqs_.at(dmaName), base + dmareg::kMm2sStatus,
                                 dmareg::kStatusIdle, dmareg::kStatusIdle);
    } else {
        ps_->pollEq(base + dmareg::kMm2sStatus, dmareg::kStatusIdle,
                    dmareg::kStatusIdle);
    }
}

void SystemSimulator::psArmReadDma(const std::string& dmaName, int route,
                                   std::uint64_t wordAddr, std::uint32_t words) {
    const std::uint64_t base = baseAddressOf(dmaName);
    ps_->writeReg(base + dmareg::kS2mmAddr, static_cast<std::uint32_t>(wordAddr));
    ps_->writeReg(base + dmareg::kS2mmRoute, static_cast<std::uint32_t>(route));
    ps_->writeReg(base + dmareg::kS2mmLength, words);
}

void SystemSimulator::psWaitReadDma(const std::string& dmaName) {
    const std::uint64_t base = baseAddressOf(dmaName);
    if (options_.useInterrupts) {
        ps_->waitIrqWithFallback(*s2mmIrqs_.at(dmaName), base + dmareg::kS2mmStatus,
                                 dmareg::kStatusIdle, dmareg::kStatusIdle);
        return;
    }
    ps_->pollEq(base + dmareg::kS2mmStatus, dmareg::kStatusIdle, dmareg::kStatusIdle);
}

void SystemSimulator::psStartCore(const std::string& coreName) {
    ps_->writeReg(baseAddressOf(coreName) + accreg::kCtrl, accreg::kCtrlStart);
}

void SystemSimulator::psWaitCore(const std::string& coreName) {
    if (options_.useInterrupts) {
        const auto it = coreIrqs_.find(coreName);
        if (it != coreIrqs_.end()) {
            ps_->waitIrqWithFallback(*it->second,
                                     baseAddressOf(coreName) + accreg::kCtrl,
                                     accreg::kStatusDone, accreg::kStatusDone);
            return;
        }
    }
    ps_->pollEq(baseAddressOf(coreName) + accreg::kCtrl, accreg::kStatusDone,
                accreg::kStatusDone);
}

std::uint32_t SystemSimulator::argIndexOf(const std::string& coreName,
                                          const std::string& portName) const {
    const hls::Program& program = *programs_.at(coreName);
    for (std::uint32_t i = 0; i < program.ports.size(); ++i) {
        if (program.ports[i].name == portName) {
            return i;
        }
    }
    throw SimulationError(format("core %s has no port '%s'", coreName.c_str(),
                                 portName.c_str()));
}

void SystemSimulator::psSetCoreArg(const std::string& coreName, const std::string& portName,
                                   std::uint32_t value) {
    const std::uint32_t index = argIndexOf(coreName, portName);
    ps_->writeReg(baseAddressOf(coreName) + accreg::argOffset(index), value);
}

std::uint64_t SystemSimulator::run(std::uint64_t maxCycles) {
    lastRunCycles_ = engine_.runUntilIdle(maxCycles, options_.stallLimit);
    for (const auto& monitor : monitors_) {
        monitor->check();
    }
    return lastRunCycles_;
}

std::string SystemSimulator::report() const {
    std::ostringstream out;
    out << "== Execution report: " << design_.name() << " ==\n";
    out << format("cycles: %llu (%.3f ms at %.0f MHz)\n",
                  static_cast<unsigned long long>(lastRunCycles_),
                  static_cast<double>(lastRunCycles_) /
                      (design_.device().fabricClockMhz * 1000.0),
                  design_.device().fabricClockMhz);
    out << format("PS: %llu busy cycles (%llu task, %llu driver, %llu irq wakeups)\n",
                  static_cast<unsigned long long>(ps_->cyclesBusy()),
                  static_cast<unsigned long long>(ps_->taskCycles()),
                  static_cast<unsigned long long>(ps_->driverCycles()),
                  static_cast<unsigned long long>(ps_->irqWakeups()));
    for (const auto& [name, dma] : dmas_) {
        out << format("%s: %llu words moved, %llu transfers\n", name.c_str(),
                      static_cast<unsigned long long>(dma->wordsMoved()),
                      static_cast<unsigned long long>(dma->transfersCompleted()));
        if (dma->verifyRetries() > 0) {
            out << format("%s: %llu verification retries\n", name.c_str(),
                          static_cast<unsigned long long>(dma->verifyRetries()));
        }
    }
    if (memory_.eccCorrectedCount() > 0) {
        out << format("ddr: %llu ECC-corrected single-bit errors\n",
                      static_cast<unsigned long long>(memory_.eccCorrectedCount()));
    }
    if (ps_->irqWatchdogFires() > 0) {
        out << format("arm_ps: %llu IRQ watchdog fires (%llu fallbacks to polling)\n",
                      static_cast<unsigned long long>(ps_->irqWatchdogFires()),
                      static_cast<unsigned long long>(ps_->irqFallbacks()));
    }
    for (const auto& [name, core] : cores_) {
        out << format("%s: %llu cycles, %llu stalled, %llu instructions\n", name.c_str(),
                      static_cast<unsigned long long>(core->vm().cycles()),
                      static_cast<unsigned long long>(core->vm().stallCycles()),
                      static_cast<unsigned long long>(core->vm().instructionsExecuted()));
    }
    for (const auto& chan : channels_) {
        out << format("stream %-40s %llu beats, high-water %zu\n", chan->name().c_str(),
                      static_cast<unsigned long long>(chan->beatsPushed()),
                      chan->highWater());
    }
    return out.str();
}

} // namespace socgen::soc
