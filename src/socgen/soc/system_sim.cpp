#include "socgen/soc/system_sim.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <sstream>

namespace socgen::soc {

SystemSimulator::SystemSimulator(const BlockDesign& design,
                                 const std::map<std::string, hls::Program>& programs,
                                 SystemOptions options)
    : design_(design), options_(options), gp_(bus_) {
    if (!design.finalised()) {
        throw SimulationError("system simulation requires a finalised design");
    }
    ps_ = std::make_unique<ZynqPs>("arm_ps", memory_, gp_);

    // DMA engines (with F2P completion interrupts when requested).
    for (const IpInstance* inst : design.dmaInstances()) {
        auto dma = std::make_unique<DmaEngine>(inst->name, memory_,
                                               options_.dmaWordsPerCycle);
        if (options_.useInterrupts) {
            mm2sIrqs_[inst->name] =
                std::make_unique<IrqLine>(inst->name + "_mm2s_introut");
            s2mmIrqs_[inst->name] =
                std::make_unique<IrqLine>(inst->name + "_s2mm_introut");
            dma->setMm2sIrq(mm2sIrqs_[inst->name].get());
            dma->setS2mmIrq(s2mmIrqs_[inst->name].get());
        }
        dmas_[inst->name] = std::move(dma);
    }

    // Accelerator cores.
    for (const IpInstance* inst : design.hlsCores()) {
        const auto it = programs.find(inst->coreName);
        if (it == programs.end()) {
            throw SimulationError("no compiled program for core " + inst->coreName);
        }
        programs_[inst->coreName] = &it->second;
        auto core = std::make_unique<AcceleratorCore>(inst->name, it->second);
        // Pure-stream cores (no AXI-Lite control attached) fire as soon as
        // data arrives — the dataflow-phase semantics of Section II-A.
        bool hasLite = false;
        for (const auto& l : design.lites()) {
            if (l.instance == inst->name) {
                hasLite = true;
            }
        }
        core->setAutoStart(!hasLite);
        if (options_.useInterrupts && hasLite) {
            coreIrqs_[inst->name] = std::make_unique<IrqLine>(inst->name + "_interrupt");
            core->setDoneIrq(coreIrqs_[inst->name].get());
        }
        cores_[inst->name] = std::move(core);
    }

    // Stream channels; attach to DMA routes / core ports. Iterate in the
    // design's order so route indices assigned by finalise() line up.
    for (const auto& s : design.streams()) {
        auto chan = std::make_unique<axi::StreamChannel>(
            s.from.str() + " -> " + s.to.str(), options_.channelCapacity, s.width);
        if (s.from.isSoc()) {
            const int route = dmas_.at(s.dmaInstance)->attachMm2s(*chan);
            require(route == s.dmaRoute, "MM2S route mismatch with finalise()");
        } else {
            cores_.at(s.from.instance)->bindStream(s.from.port, *chan);
        }
        if (s.to.isSoc()) {
            const int route = dmas_.at(s.dmaInstance)->attachS2mm(*chan);
            require(route == s.dmaRoute, "S2MM route mismatch with finalise()");
        } else {
            cores_.at(s.to.instance)->bindStream(s.to.port, *chan);
        }
        if (options_.attachMonitors) {
            monitors_.push_back(std::make_unique<axi::StreamMonitor>(*chan));
        }
        channels_.push_back(std::move(chan));
    }

    // Memory-mapped slaves.
    for (const auto& l : design.lites()) {
        axi::LiteSlave* slave = nullptr;
        if (const auto dit = dmas_.find(l.instance); dit != dmas_.end()) {
            slave = dit->second.get();
        } else if (const auto cit = cores_.find(l.instance); cit != cores_.end()) {
            slave = cit->second.get();
        } else {
            throw SimulationError("lite connection to unknown instance " + l.instance);
        }
        bus_.mapSlave(l.instance, axi::AddressRange{l.baseAddress, l.size}, *slave);
    }

    // Registration order: PS first (issues work), then DMAs, then cores.
    engine_.add(*ps_);
    for (auto& [name, dma] : dmas_) {
        engine_.add(*dma);
    }
    for (auto& [name, core] : cores_) {
        engine_.add(*core);
    }
    for (auto& monitor : monitors_) {
        engine_.addProbe([m = monitor.get()] { m->sample(); });
    }
}

AcceleratorCore& SystemSimulator::core(const std::string& name) {
    const auto it = cores_.find(name);
    if (it == cores_.end()) {
        throw SimulationError("no accelerator core named " + name);
    }
    return *it->second;
}

DmaEngine& SystemSimulator::dma(const std::string& name) {
    const auto it = dmas_.find(name);
    if (it == dmas_.end()) {
        throw SimulationError("no DMA engine named " + name);
    }
    return *it->second;
}

axi::StreamChannel& SystemSimulator::channel(std::size_t index) {
    require(index < channels_.size(), "channel index out of range");
    return *channels_[index];
}

std::uint64_t SystemSimulator::baseAddressOf(const std::string& instance) const {
    for (const auto& l : design_.lites()) {
        if (l.instance == instance) {
            return l.baseAddress;
        }
    }
    throw SimulationError("instance has no AXI-Lite mapping: " + instance);
}

void SystemSimulator::psWriteDma(const std::string& dmaName, int route,
                                 std::uint64_t wordAddr, std::uint32_t words) {
    const std::uint64_t base = baseAddressOf(dmaName);
    ps_->writeReg(base + dmareg::kMm2sAddr, static_cast<std::uint32_t>(wordAddr));
    ps_->writeReg(base + dmareg::kMm2sRoute, static_cast<std::uint32_t>(route));
    ps_->writeReg(base + dmareg::kMm2sLength, words);
    if (options_.useInterrupts) {
        ps_->waitIrq(*mm2sIrqs_.at(dmaName));
    } else {
        ps_->pollEq(base + dmareg::kMm2sStatus, dmareg::kStatusIdle,
                    dmareg::kStatusIdle);
    }
}

void SystemSimulator::psArmReadDma(const std::string& dmaName, int route,
                                   std::uint64_t wordAddr, std::uint32_t words) {
    const std::uint64_t base = baseAddressOf(dmaName);
    ps_->writeReg(base + dmareg::kS2mmAddr, static_cast<std::uint32_t>(wordAddr));
    ps_->writeReg(base + dmareg::kS2mmRoute, static_cast<std::uint32_t>(route));
    ps_->writeReg(base + dmareg::kS2mmLength, words);
}

void SystemSimulator::psWaitReadDma(const std::string& dmaName) {
    if (options_.useInterrupts) {
        ps_->waitIrq(*s2mmIrqs_.at(dmaName));
        return;
    }
    const std::uint64_t base = baseAddressOf(dmaName);
    ps_->pollEq(base + dmareg::kS2mmStatus, dmareg::kStatusIdle, dmareg::kStatusIdle);
}

void SystemSimulator::psStartCore(const std::string& coreName) {
    ps_->writeReg(baseAddressOf(coreName) + accreg::kCtrl, accreg::kCtrlStart);
}

void SystemSimulator::psWaitCore(const std::string& coreName) {
    if (options_.useInterrupts) {
        const auto it = coreIrqs_.find(coreName);
        if (it != coreIrqs_.end()) {
            ps_->waitIrq(*it->second);
            return;
        }
    }
    ps_->pollEq(baseAddressOf(coreName) + accreg::kCtrl, accreg::kStatusDone,
                accreg::kStatusDone);
}

std::uint32_t SystemSimulator::argIndexOf(const std::string& coreName,
                                          const std::string& portName) const {
    const hls::Program& program = *programs_.at(coreName);
    for (std::uint32_t i = 0; i < program.ports.size(); ++i) {
        if (program.ports[i].name == portName) {
            return i;
        }
    }
    throw SimulationError(format("core %s has no port '%s'", coreName.c_str(),
                                 portName.c_str()));
}

void SystemSimulator::psSetCoreArg(const std::string& coreName, const std::string& portName,
                                   std::uint32_t value) {
    const std::uint32_t index = argIndexOf(coreName, portName);
    ps_->writeReg(baseAddressOf(coreName) + accreg::argOffset(index), value);
}

std::uint64_t SystemSimulator::run(std::uint64_t maxCycles) {
    lastRunCycles_ = engine_.runUntilIdle(maxCycles);
    for (const auto& monitor : monitors_) {
        monitor->check();
    }
    return lastRunCycles_;
}

std::string SystemSimulator::report() const {
    std::ostringstream out;
    out << "== Execution report: " << design_.name() << " ==\n";
    out << format("cycles: %llu (%.3f ms at %.0f MHz)\n",
                  static_cast<unsigned long long>(lastRunCycles_),
                  static_cast<double>(lastRunCycles_) /
                      (design_.device().fabricClockMhz * 1000.0),
                  design_.device().fabricClockMhz);
    out << format("PS: %llu busy cycles (%llu task, %llu driver, %llu irq wakeups)\n",
                  static_cast<unsigned long long>(ps_->cyclesBusy()),
                  static_cast<unsigned long long>(ps_->taskCycles()),
                  static_cast<unsigned long long>(ps_->driverCycles()),
                  static_cast<unsigned long long>(ps_->irqWakeups()));
    for (const auto& [name, dma] : dmas_) {
        out << format("%s: %llu words moved, %llu transfers\n", name.c_str(),
                      static_cast<unsigned long long>(dma->wordsMoved()),
                      static_cast<unsigned long long>(dma->transfersCompleted()));
    }
    for (const auto& [name, core] : cores_) {
        out << format("%s: %llu cycles, %llu stalled, %llu instructions\n", name.c_str(),
                      static_cast<unsigned long long>(core->vm().cycles()),
                      static_cast<unsigned long long>(core->vm().stallCycles()),
                      static_cast<unsigned long long>(core->vm().instructionsExecuted()));
    }
    for (const auto& chan : channels_) {
        out << format("stream %-40s %llu beats, high-water %zu\n", chan->name().c_str(),
                      static_cast<unsigned long long>(chan->beatsPushed()),
                      chan->highWater());
    }
    return out.str();
}

} // namespace socgen::soc
