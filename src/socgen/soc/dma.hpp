#pragma once

#include "socgen/axi/lite.hpp"
#include "socgen/axi/stream.hpp"
#include "socgen/sim/engine.hpp"
#include "socgen/soc/irq.hpp"
#include "socgen/soc/memory.hpp"

#include <string>
#include <vector>

namespace socgen::soc {

/// Register map of the DMA engine (offsets from the instance base). The
/// layout follows the spirit of the Xilinx AXI DMA in simple mode: write
/// LENGTH last to kick a transfer, poll STATUS for idle.
namespace dmareg {
inline constexpr std::uint64_t kMm2sCtrl = 0x00;
inline constexpr std::uint64_t kMm2sStatus = 0x04;   ///< bit0: idle
inline constexpr std::uint64_t kMm2sAddr = 0x08;     ///< word address
inline constexpr std::uint64_t kMm2sLength = 0x0C;   ///< element count; starts
inline constexpr std::uint64_t kMm2sRoute = 0x10;    ///< destination index
inline constexpr std::uint64_t kS2mmCtrl = 0x30;
inline constexpr std::uint64_t kS2mmStatus = 0x34;
inline constexpr std::uint64_t kS2mmAddr = 0x38;
inline constexpr std::uint64_t kS2mmLength = 0x3C;
inline constexpr std::uint64_t kS2mmRoute = 0x40;
inline constexpr std::uint32_t kStatusIdle = 0x1;
} // namespace dmareg

/// Simulated AXI DMA core: an MM2S channel streaming memory words into
/// one of its attached destination channels, and an S2MM channel draining
/// one of its attached source channels into memory. The shared-DMA policy
/// attaches several channels and selects per transfer via the ROUTE
/// register (the paper's single-DMA-multiple-streams advantage over
/// SDSoC); the per-link policy attaches exactly one.
class DmaEngine final : public sim::Component, public axi::LiteSlave {
public:
    DmaEngine(std::string name, Memory& memory, std::uint64_t wordsPerCycle = 1);

    /// Attaches a destination stream for MM2S; returns the route index.
    int attachMm2s(axi::StreamChannel& channel);
    /// Attaches a source stream for S2MM; returns the route index.
    int attachS2mm(axi::StreamChannel& channel);

    /// Optional completion interrupts (raised when a transfer finishes).
    void setMm2sIrq(IrqLine* line) { mm2sIrq_ = line; }
    void setS2mmIrq(IrqLine* line) { s2mmIrq_ = line; }

    // sim::Component
    [[nodiscard]] const std::string& name() const override { return name_; }
    bool tick() override;
    [[nodiscard]] bool idle() const override;
    [[nodiscard]] std::string debugState() const override;

    // axi::LiteSlave
    [[nodiscard]] std::uint32_t readRegister(std::uint64_t offset) override;
    void writeRegister(std::uint64_t offset, std::uint32_t value) override;

    // -- statistics ----------------------------------------------------------
    [[nodiscard]] std::uint64_t wordsMoved() const { return wordsMoved_; }
    [[nodiscard]] std::uint64_t transfersCompleted() const { return transfers_; }

    // -- hardening -----------------------------------------------------------
    // With a non-zero retry limit every HP-port access is verified (MM2S:
    // two reads must agree; S2MM: read-back must match the intended word)
    // and mismatches are retried up to the limit, after which the engine
    // throws a SimulationError naming the DMA and the word address. A
    // limit of 0 (the default) disables verification: injected corruption
    // then flows through silently, exactly like un-hardened hardware.
    void setRetryLimit(unsigned limit) { retryLimit_ = limit; }
    [[nodiscard]] unsigned retryLimit() const { return retryLimit_; }
    [[nodiscard]] std::uint64_t verifyRetries() const { return verifyRetries_; }

    // -- fault hooks ---------------------------------------------------------
    /// Corrupts the next `words` MM2S memory reads. The effective XOR
    /// mask is re-derived per application from `xorMask` and a counter,
    /// so even a "persistent" fault never corrupts two back-to-back
    /// verification reads identically (which would defeat detection).
    void injectMm2sCorruption(std::uint64_t xorMask, std::uint64_t words = 1);
    /// Corrupts the next `words` S2MM memory writes (same mask scheme).
    void injectS2mmCorruption(std::uint64_t xorMask, std::uint64_t words = 1);
    /// Freezes both descriptors for `cycles` cycles (wedged interconnect).
    void injectStall(std::uint64_t cycles) { stallRemaining_ += cycles; }
    [[nodiscard]] bool stalled() const { return stallRemaining_ > 0; }

private:
    struct Channel {
        bool active = false;
        std::uint64_t address = 0;
        std::uint64_t remaining = 0;
        std::uint32_t route = 0;
    };
    struct Corruption {
        std::uint64_t mask = 0;
        std::uint64_t remaining = 0;
        std::uint64_t applied = 0;
    };

    bool tickMm2s();
    bool tickS2mm();
    [[nodiscard]] std::uint32_t corruptValue(Corruption& c, std::uint32_t value);
    [[nodiscard]] std::uint32_t hpRead(std::uint64_t wordAddress);
    [[nodiscard]] std::uint32_t hpReadVerified(std::uint64_t wordAddress);
    void hpWriteVerified(std::uint64_t wordAddress, std::uint32_t value);

    std::string name_;
    Memory& memory_;
    std::uint64_t wordsPerCycle_;
    std::vector<axi::StreamChannel*> mm2sDests_;
    std::vector<axi::StreamChannel*> s2mmSrcs_;
    Channel mm2s_;
    Channel s2mm_;
    IrqLine* mm2sIrq_ = nullptr;
    IrqLine* s2mmIrq_ = nullptr;
    std::uint64_t wordsMoved_ = 0;
    std::uint64_t transfers_ = 0;
    unsigned retryLimit_ = 0;
    std::uint64_t verifyRetries_ = 0;
    Corruption mm2sCorrupt_;
    Corruption s2mmCorrupt_;
    std::uint64_t stallRemaining_ = 0;
};

} // namespace socgen::soc
