#include "socgen/svc/worker_fleet.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/hls/serialize.hpp"

#include <algorithm>
#include <chrono>

#include <csignal>
#include <sys/types.h>
#include <signal.h>

namespace socgen::svc {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

} // namespace

std::string WorkerFleet::resolveWorkerPath(const std::string& configured) {
    if (!configured.empty()) {
        return configured;
    }
    if (auto env = envString("SOCGEN_WORKER_PATH")) {
        return *env;
    }
#ifdef SOCGEN_WORKER_DEFAULT_PATH
    return SOCGEN_WORKER_DEFAULT_PATH;
#else
    return {};
#endif
}

WorkerFleet::WorkerFleet(WorkerFleetConfig config, std::shared_ptr<core::ArtifactStore> store)
    : config_(config), store_(std::move(store)),
      workerPath_(resolveWorkerPath(config.workerPath)) {
    if (config_.workers == 0) {
        config_.workers = 1;
    }
    slots_.reserve(config_.workers);
    for (unsigned i = 0; i < config_.workers; ++i) {
        slots_.push_back(std::make_unique<Slot>());
    }
    if (workerPath_.empty()) {
        // No worker binary known: the fleet is stillborn and every
        // dispatch fails fast with WorkerUnavailableError (graceful
        // degradation to in-process execution).
        Logger::global().warn("fleet: no worker binary configured "
                              "(set SOCGEN_WORKER_PATH); running unavailable");
        for (auto& slot : slots_) {
            slot->dead = true;
        }
        deadSlots_ = slots_.size();
        return;
    }
    for (unsigned i = 0; i < config_.workers; ++i) {
        slots_[i]->supervisor = std::thread(&WorkerFleet::supervisorLoop, this, i);
    }
}

WorkerFleet::~WorkerFleet() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    queueCv_.notify_all();
    // SIGKILL live workers so supervisors blocked on the pipe unblock via
    // EOF at once. Workers are stateless, so this loses nothing.
    for (auto& slot : slots_) {
        const pid_t pid = slot->pid.load();
        if (pid > 0) {
            ::kill(pid, SIGKILL);
        }
    }
    for (auto& slot : slots_) {
        if (slot->supervisor.joinable()) {
            slot->supervisor.join();
        }
    }
    failAllQueued("worker fleet destroyed");
}

bool WorkerFleet::available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return !shutdown_ && deadSlots_ < slots_.size();
}

WorkerFleetStats WorkerFleet::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<pid_t> WorkerFleet::workerPids() const {
    std::vector<pid_t> pids;
    for (const auto& slot : slots_) {
        const pid_t pid = slot->pid.load();
        if (pid > 0) {
            pids.push_back(pid);
        }
    }
    return pids;
}

std::optional<pid_t> WorkerFleet::killRandomWorker(std::uint64_t seed) {
    const std::vector<pid_t> pids = workerPids();
    if (pids.empty()) {
        return std::nullopt;
    }
    const pid_t victim = pids[static_cast<std::size_t>(seed % pids.size())];
    ::kill(victim, SIGKILL);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.kills;
    }
    Logger::global().info(format("fleet: chaos kill -9 of worker pid %d", victim));
    return victim;
}

std::uint64_t WorkerFleet::nextEpoch(const std::string& key) {
    if (store_ != nullptr) {
        return store_->acquireLease(key);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return ++fallbackEpoch_;
}

core::RemoteSynthesis WorkerFleet::synthesize(const hls::Kernel& kernel,
                                              const hls::Directives& directives,
                                              const std::string& key) {
    RequestPtr request = std::make_shared<Request>();
    request->key = key;
    request->kernelBytes = hls::encodeKernel(kernel);
    request->directiveBytes = hls::encodeDirectives(directives);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdown_) {
            throw WorkerUnavailableError("fleet is shutting down");
        }
        if (deadSlots_ == slots_.size()) {
            throw WorkerUnavailableError("no spawnable workers");
        }
        request->id = nextRequestId_++;
        queue_.push_back(request);
    }
    queueCv_.notify_one();

    std::unique_lock<std::mutex> lock(request->m);
    request->cv.wait(lock, [&] { return request->done; });
    if (request->failed) {
        if (request->hlsFailure) {
            // The worker forwarded e.what(), which already carries the
            // "hls: " prefix HlsError would re-add.
            std::string message = request->error;
            if (message.rfind("hls: ", 0) == 0) {
                message.erase(0, 5);
            }
            throw HlsError(message);
        }
        throw WorkerUnavailableError(request->error);
    }
    return core::RemoteSynthesis{request->result, request->resultEpoch};
}

WorkerFleet::RequestPtr WorkerFleet::popRequest() {
    std::unique_lock<std::mutex> lock(mutex_);
    queueCv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) {
        return nullptr;
    }
    RequestPtr request = queue_.front();
    queue_.pop_front();
    return request;
}

void WorkerFleet::completeFailure(const RequestPtr& request, bool hlsFailure,
                                  std::string message) {
    {
        std::lock_guard<std::mutex> lock(request->m);
        request->failed = true;
        request->hlsFailure = hlsFailure;
        request->error = std::move(message);
        request->done = true;
    }
    request->cv.notify_all();
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requestsFailed;
}

void WorkerFleet::requeueOrFail(const RequestPtr& request, const std::string& why) {
    bool budgetLeft = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        budgetLeft = request->dispatches < 1 + config_.maxRedispatch;
        if (budgetLeft) {
            ++stats_.redispatches;
            queue_.push_front(request);
        }
    }
    if (budgetLeft) {
        Logger::global().warn(format("fleet: re-dispatching %s under a fresh lease (%s)",
                                     request->key.c_str(), why.c_str()));
        queueCv_.notify_one();
    } else {
        completeFailure(request, false,
                        format("attempt abandoned by %u workers (last: %s)",
                               request->dispatches, why.c_str()));
    }
}

void WorkerFleet::markSlotDead(unsigned slotIndex) {
    bool allDead = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!slots_[slotIndex]->dead) {
            slots_[slotIndex]->dead = true;
            ++deadSlots_;
        }
        allDead = deadSlots_ == slots_.size();
    }
    Logger::global().warn(format("fleet: worker slot %u declared unspawnable after %u "
                                 "consecutive failures",
                                 slotIndex, config_.maxConsecutiveSpawnFailures));
    if (allDead) {
        Logger::global().warn("fleet: every worker slot unspawnable; degrading to "
                              "in-process execution");
        failAllQueued("no spawnable workers");
    }
}

void WorkerFleet::failAllQueued(const std::string& why) {
    std::deque<RequestPtr> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        orphans.swap(queue_);
    }
    for (const auto& request : orphans) {
        completeFailure(request, false, why);
    }
}

void WorkerFleet::supervisorLoop(unsigned slotIndex) {
    Slot& slot = *slots_[slotIndex];
    std::optional<Subprocess> child;
    wire::FrameReader reader;
    unsigned consecutiveSpawnFailures = 0;
    unsigned backoffMs = config_.respawnBackoffBaseMs;
    bool everSpawned = false;
    std::optional<Clock::time_point> deathAt;

    auto shuttingDown = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        return shutdown_;
    };
    auto loseChild = [&](const RequestPtr& request, const char* why, bool killedByUs) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.workerDeaths;
            if (killedByUs) {
                ++stats_.kills;
            }
        }
        if (killedByUs && child) {
            child->kill(SIGKILL);
        }
        slot.pid.store(-1);
        child.reset();  // reaps (and SIGKILLs if somehow still alive)
        reader = wire::FrameReader{};
        deathAt = Clock::now();
        Logger::global().warn(format("fleet: worker slot %u lost (%s)", slotIndex, why));
        if (request) {
            requeueOrFail(request, why);
        }
    };

    while (!shuttingDown()) {
        // -- Ensure a live, Hello'd worker ----------------------------------
        if (!child) {
            if (consecutiveSpawnFailures >= config_.maxConsecutiveSpawnFailures) {
                markSlotDead(slotIndex);
                return;
            }
            bool spawned = false;
            try {
                Subprocess fresh = Subprocess::spawn({workerPath_});
                wire::FrameReader freshReader;
                const auto helloDeadline = Clock::now() + std::chrono::seconds(10);
                while (Clock::now() < helloDeadline && !shuttingDown()) {
                    auto chunk = fresh.readAvailable(100);
                    if (!chunk) {
                        break;  // died before Hello
                    }
                    if (chunk->empty()) {
                        continue;
                    }
                    freshReader.feed(*chunk);
                    if (auto frame = freshReader.next()) {
                        if (frame->type != wire::FrameType::Hello) {
                            break;
                        }
                        const wire::HelloFrame hello = wire::decodeHello(frame->payload);
                        if (hello.protocolVersion != wire::kProtocolVersion) {
                            Logger::global().warn(format(
                                "fleet: worker speaks protocol v%u, service v%u — rejecting",
                                hello.protocolVersion, wire::kProtocolVersion));
                            break;
                        }
                        child.emplace(std::move(fresh));
                        reader = std::move(freshReader);
                        spawned = true;
                        break;
                    }
                }
            } catch (const Error& e) {
                Logger::global().warn(format("fleet: worker spawn failed on slot %u: %s",
                                             slotIndex, e.what()));
            }
            if (!spawned) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.spawnFailures;
                }
                ++consecutiveSpawnFailures;
                std::this_thread::sleep_for(std::chrono::milliseconds(backoffMs));
                backoffMs = std::min(backoffMs * 2, config_.respawnBackoffCapMs);
                continue;
            }
            slot.pid.store(child->pid());
            consecutiveSpawnFailures = 0;
            backoffMs = config_.respawnBackoffBaseMs;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.spawns;
                if (everSpawned) {
                    ++stats_.respawns;
                }
                if (deathAt) {
                    stats_.totalRecoverMs += msSince(*deathAt);
                    ++stats_.recoveries;
                    deathAt.reset();
                }
            }
            Logger::global().info(format("fleet: worker pid %d %s on slot %u",
                                         child->pid(),
                                         everSpawned ? "respawned" : "spawned", slotIndex));
            everSpawned = true;
        }

        // -- Take one request -----------------------------------------------
        RequestPtr request = popRequest();
        if (!request) {
            break;  // shutdown
        }

        // -- Dispatch under a fresh lease epoch -----------------------------
        const std::uint64_t epoch = nextEpoch(request->key);
        unsigned dispatchOrdinal = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            request->currentEpoch = epoch;
            dispatchOrdinal = ++request->dispatches;
        }
        wire::RequestFrame frame;
        frame.requestId = request->id;
        frame.leaseEpoch = epoch;
        frame.key = request->key;
        frame.kernel = request->kernelBytes;
        frame.directives = request->directiveBytes;
        // Both chaos hooks fire on the first dispatch only, so recovery
        // always converges: the re-dispatch runs clean.
        frame.delayMsBeforeResult = dispatchOrdinal == 1 ? config_.requestDelayMsForTest : 0;
        frame.crashBeforeResult = config_.crashWorkerBeforeResultForTest && dispatchOrdinal == 1;
        if (!child->writeAll(wire::encodeFrame(wire::FrameType::Request,
                                               wire::encodeRequest(frame)))) {
            loseChild(request, "worker died before accepting dispatch", false);
            continue;
        }

        // -- Await the outcome ----------------------------------------------
        auto lastActivity = Clock::now();
        const auto started = Clock::now();
        bool settled = false;
        while (!settled) {
            if (shuttingDown()) {
                completeFailure(request, false, "fleet is shutting down");
                settled = true;
                break;
            }
            auto chunk = child->readAvailable(static_cast<int>(config_.pollIntervalMs));
            if (!chunk) {
                loseChild(request, "worker died mid-attempt", false);
                settled = true;
                break;
            }
            if (!chunk->empty()) {
                lastActivity = Clock::now();
                bool poisoned = false;
                try {
                    reader.feed(*chunk);
                    while (auto got = reader.next()) {
                        if (got->type == wire::FrameType::Heartbeat) {
                            continue;
                        }
                        if (got->type == wire::FrameType::Result) {
                            const wire::ResultFrame result = wire::decodeResult(got->payload);
                            bool fresh = false;
                            {
                                std::lock_guard<std::mutex> lock(mutex_);
                                fresh = result.requestId == request->id &&
                                        result.leaseEpoch == request->currentEpoch;
                                if (!fresh) {
                                    ++stats_.staleResultsDropped;
                                }
                            }
                            if (!fresh) {
                                Logger::global().warn(format(
                                    "fleet: dropped stale result for request %llu "
                                    "(lease epoch %llu) — fenced off by re-dispatch",
                                    static_cast<unsigned long long>(result.requestId),
                                    static_cast<unsigned long long>(result.leaseEpoch)));
                                continue;
                            }
                            try {
                                hls::HlsResult decoded = hls::decodeHlsResult(result.result);
                                {
                                    std::lock_guard<std::mutex> lock(request->m);
                                    request->result = std::move(decoded);
                                    request->resultEpoch = result.leaseEpoch;
                                    request->done = true;
                                }
                                request->cv.notify_all();
                                std::lock_guard<std::mutex> lock(mutex_);
                                ++stats_.requestsCompleted;
                            } catch (const Error& e) {
                                completeFailure(request, false,
                                                format("worker returned undecodable result: %s",
                                                       e.what()));
                            }
                            settled = true;
                            break;
                        }
                        if (got->type == wire::FrameType::Error) {
                            const wire::ErrorFrame error = wire::decodeError(got->payload);
                            bool fresh = false;
                            {
                                std::lock_guard<std::mutex> lock(mutex_);
                                fresh = error.requestId == request->id &&
                                        error.leaseEpoch == request->currentEpoch;
                                if (!fresh) {
                                    ++stats_.staleResultsDropped;
                                }
                            }
                            if (!fresh) {
                                continue;
                            }
                            completeFailure(request, error.hlsError, error.message);
                            settled = true;
                            break;
                        }
                        // Hello (or anything else) mid-stream: ignore.
                    }
                } catch (const Error& e) {
                    Logger::global().warn(format("fleet: poisoned stream from slot %u: %s",
                                                 slotIndex, e.what()));
                    poisoned = true;
                }
                if (poisoned) {
                    loseChild(request, "poisoned frame stream", true);
                    settled = true;
                    break;
                }
                if (settled) {
                    break;
                }
            }
            if (msSince(lastActivity) > static_cast<double>(config_.heartbeatTimeoutMs)) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.heartbeatTimeouts;
                }
                loseChild(request, "heartbeat timeout", true);
                settled = true;
                break;
            }
            if (config_.requestDeadlineMs > 0 &&
                msSince(started) > static_cast<double>(config_.requestDeadlineMs)) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.deadlineTimeouts;
                }
                if (config_.killOnDeadline) {
                    loseChild(request, "request deadline exceeded", true);
                } else {
                    // Test hook: abandon the attempt but leave the worker
                    // alive; its late result arrives under the old epoch
                    // and is fenced off above.
                    requeueOrFail(request, "request deadline exceeded (worker left alive)");
                }
                settled = true;
                break;
            }
        }
    }
    slot.pid.store(-1);
}

} // namespace socgen::svc
