#pragma once

#include "socgen/common/subprocess.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/core/remote_hls.hpp"
#include "socgen/svc/wire.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

namespace socgen::svc {

struct WorkerFleetConfig {
    /// Number of worker processes to keep alive.
    unsigned workers = 2;

    /// Path to the socgen-worker binary. Empty -> resolveWorkerPath()
    /// (SOCGEN_WORKER_PATH env, then the build-time default).
    std::string workerPath;

    /// A worker that emits nothing (no heartbeat, no result) for this
    /// long is declared hung and SIGKILLed. Generous default: CI
    /// containers run everything on one core under sanitizers.
    unsigned heartbeatTimeoutMs = 3000;

    /// Per-dispatch deadline; 0 disables. When a dispatch exceeds it the
    /// attempt is re-dispatched (and the worker killed, unless
    /// killOnDeadline is off).
    unsigned requestDeadlineMs = 0;

    /// Test hook: leave a deadline-blown worker alive so its *late*
    /// result arrives after the re-dispatch — exercising the stale-epoch
    /// fence instead of the kill path.
    bool killOnDeadline = true;

    /// A request abandoned by this many dead/timed-out workers fails
    /// (the flow then falls back to in-process synthesis).
    unsigned maxRedispatch = 3;

    /// Consecutive spawn failures before a slot is declared unspawnable.
    /// All slots unspawnable -> the fleet reports WorkerUnavailableError
    /// and the service degrades gracefully to in-process execution.
    unsigned maxConsecutiveSpawnFailures = 3;

    /// Capped exponential backoff between respawn attempts.
    unsigned respawnBackoffBaseMs = 10;
    unsigned respawnBackoffCapMs = 1000;

    /// Poll granularity of the supervisor read loop.
    unsigned pollIntervalMs = 20;

    /// Test hooks forwarded into every RequestFrame: delay each result
    /// (models a paused worker) / crash the worker at the stage boundary
    /// on the *first* dispatch of each request (re-dispatches run clean,
    /// so recovery is guaranteed to converge).
    std::uint32_t requestDelayMsForTest = 0;
    bool crashWorkerBeforeResultForTest = false;
};

struct WorkerFleetStats {
    std::size_t spawns = 0;            ///< successful worker spawns (incl. respawns)
    std::size_t respawns = 0;          ///< spawns replacing a dead worker
    std::size_t spawnFailures = 0;
    std::size_t workerDeaths = 0;      ///< EOF/exit observed (kill -9, crash)
    std::size_t kills = 0;             ///< SIGKILLs the fleet itself issued
    std::size_t heartbeatTimeouts = 0;
    std::size_t deadlineTimeouts = 0;
    std::size_t redispatches = 0;      ///< attempts re-queued after losing their worker
    std::size_t staleResultsDropped = 0; ///< frames fenced off by requestId/epoch mismatch
    std::size_t requestsCompleted = 0;
    std::size_t requestsFailed = 0;
    double totalRecoverMs = 0.0;       ///< death observed -> replacement Hello
    std::size_t recoveries = 0;

    [[nodiscard]] double meanRecoverMs() const {
        return recoveries == 0 ? 0.0 : totalRecoverMs / static_cast<double>(recoveries);
    }
};

/// Crash-isolated worker fleet: dispatches stage attempts to a pool of
/// socgen-worker subprocesses over the wire protocol, supervises them
/// (heartbeat timeouts, per-request deadlines -> SIGKILL), respawns the
/// dead with capped exponential backoff, and re-dispatches lost attempts
/// under a fresh lease epoch so a zombie's late result is fenced off at
/// two layers: dropped here (epoch mismatch) and rejected by
/// ArtifactStore::storeFenced if it somehow reached the commit.
///
/// Thread-safe: any number of flow threads may call synthesize()
/// concurrently; one supervisor thread runs per worker slot.
class WorkerFleet : public core::RemoteHlsExecutor {
public:
    /// `store` provides the lease fence; it may be null (epochs then come
    /// from a fleet-local counter — fine for tests without a store).
    WorkerFleet(WorkerFleetConfig config, std::shared_ptr<core::ArtifactStore> store);
    ~WorkerFleet() override;

    WorkerFleet(const WorkerFleet&) = delete;
    WorkerFleet& operator=(const WorkerFleet&) = delete;

    /// Dispatches one synthesis to the fleet and blocks for the outcome.
    /// Throws HlsError for a structured synthesis failure and
    /// WorkerUnavailableError when the fleet cannot serve (no spawnable
    /// workers, redispatch budget exhausted, or shutting down).
    [[nodiscard]] core::RemoteSynthesis synthesize(const hls::Kernel& kernel,
                                                   const hls::Directives& directives,
                                                   const std::string& key) override;

    /// False once every slot has been declared unspawnable (or after
    /// shutdown began); synthesize() then fails fast.
    [[nodiscard]] bool available() const;

    [[nodiscard]] WorkerFleetStats stats() const;

    /// Pids of currently-live workers.
    [[nodiscard]] std::vector<pid_t> workerPids() const;

    /// Chaos hook: SIGKILL one live worker chosen by `seed`. Returns the
    /// pid hit, or nullopt if no worker was alive.
    std::optional<pid_t> killRandomWorker(std::uint64_t seed);

    /// Resolution order: `configured` if non-empty, then the
    /// SOCGEN_WORKER_PATH environment variable, then the build-time
    /// default (SOCGEN_WORKER_DEFAULT_PATH). Empty when none is set.
    [[nodiscard]] static std::string resolveWorkerPath(const std::string& configured);

private:
    struct Request {
        std::uint64_t id = 0;
        std::string key;
        std::string kernelBytes;
        std::string directiveBytes;
        unsigned dispatches = 0;  ///< how many workers have attempted it

        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        bool hlsFailure = false;
        std::string error;
        hls::HlsResult result;
        std::uint64_t resultEpoch = 0;

        /// Epoch of the live dispatch; frames carrying any other epoch
        /// are stale and dropped. Guarded by the fleet mutex.
        std::uint64_t currentEpoch = 0;
    };
    using RequestPtr = std::shared_ptr<Request>;

    struct Slot {
        std::atomic<pid_t> pid{-1};
        std::thread supervisor;
        bool dead = false;  ///< declared unspawnable; guarded by mutex_
    };

    void supervisorLoop(unsigned slotIndex);
    [[nodiscard]] RequestPtr popRequest();
    void requeueOrFail(const RequestPtr& request, const std::string& why);
    void completeFailure(const RequestPtr& request, bool hlsFailure, std::string message);
    void markSlotDead(unsigned slotIndex);
    void failAllQueued(const std::string& why);
    [[nodiscard]] std::uint64_t nextEpoch(const std::string& key);

    WorkerFleetConfig config_;
    std::shared_ptr<core::ArtifactStore> store_;
    std::string workerPath_;

    mutable std::mutex mutex_;
    std::condition_variable queueCv_;
    std::deque<RequestPtr> queue_;
    std::vector<std::unique_ptr<Slot>> slots_;
    std::size_t deadSlots_ = 0;
    bool shutdown_ = false;
    std::uint64_t nextRequestId_ = 1;
    std::uint64_t fallbackEpoch_ = 0;  ///< lease source when store_ is null
    WorkerFleetStats stats_;
};

} // namespace socgen::svc
