/// socgen-worker: the out-of-process stage executor.
///
/// Speaks the wire protocol over stdin/stdout (stderr is inherited from
/// the service for diagnostics): sends Hello once at startup, then loops
/// decoding Request frames, synthesizing the kernel with the same
/// deterministic HlsEngine the in-process path uses, and replying with a
/// Result (or structured Error) frame. A detached heartbeat thread emits
/// Heartbeat frames so the fleet can distinguish "slow tool" from "hung
/// process". The worker holds no durable state — the service owns the
/// artifact store and the lease fence — so SIGKILL at any instant loses
/// at most one in-flight attempt, which the fleet re-dispatches.

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/svc/wire.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include <unistd.h>

namespace {

using namespace socgen;
using namespace socgen::svc;

std::mutex gWriteMutex;

/// Writes one whole frame to stdout. Frames from the request loop and the
/// heartbeat thread must not interleave mid-frame, hence the mutex; a
/// write failure means the service is gone, so the worker just exits.
void writeFrame(wire::FrameType type, const std::string& payload) {
    const std::string bytes = wire::encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(gWriteMutex);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::write(STDOUT_FILENO, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            _exit(3);
        }
        off += static_cast<std::size_t>(n);
    }
}

std::atomic<std::uint64_t> gRequestsServed{0};
std::atomic<std::uint64_t> gInFlightRequestId{0};

void heartbeatLoop(unsigned intervalMs) {
    for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
        wire::HeartbeatFrame beat;
        beat.requestsServed = gRequestsServed.load();
        beat.inFlightRequestId = gInFlightRequestId.load();
        writeFrame(wire::FrameType::Heartbeat, wire::encodeHeartbeat(beat));
    }
}

void serveRequest(const hls::HlsEngine& engine, const wire::RequestFrame& request) {
    gInFlightRequestId.store(request.requestId);
    try {
        const hls::Kernel kernel = hls::decodeKernel(request.kernel);
        const hls::Directives directives = hls::decodeDirectives(request.directives);
        const hls::HlsResult result = engine.synthesize(kernel, directives);
        if (request.delayMsBeforeResult > 0) {
            // Test hook: models a worker paused (SIGSTOP / VM stall) between
            // computing its result and committing it.
            std::this_thread::sleep_for(std::chrono::milliseconds(request.delayMsBeforeResult));
        }
        if (request.crashBeforeResult) {
            // Test hook: die at the attempt/commit stage boundary.
            _exit(137);
        }
        wire::ResultFrame reply;
        reply.requestId = request.requestId;
        reply.leaseEpoch = request.leaseEpoch;
        reply.result = hls::encodeHlsResult(result);
        writeFrame(wire::FrameType::Result, wire::encodeResult(reply));
    } catch (const HlsError& e) {
        wire::ErrorFrame reply;
        reply.requestId = request.requestId;
        reply.leaseEpoch = request.leaseEpoch;
        reply.hlsError = true;
        reply.message = e.what();
        writeFrame(wire::FrameType::Error, wire::encodeError(reply));
    } catch (const std::exception& e) {
        wire::ErrorFrame reply;
        reply.requestId = request.requestId;
        reply.leaseEpoch = request.leaseEpoch;
        reply.hlsError = false;
        reply.message = e.what();
        writeFrame(wire::FrameType::Error, wire::encodeError(reply));
    }
    gInFlightRequestId.store(0);
    gRequestsServed.fetch_add(1);
}

} // namespace

int main() {
    wire::HelloFrame hello;
    hello.protocolVersion = wire::kProtocolVersion;
    hello.pid = static_cast<std::uint64_t>(::getpid());
    writeFrame(wire::FrameType::Hello, wire::encodeHello(hello));

    const unsigned heartbeatMs = envUnsigned("SOCGEN_WORKER_HEARTBEAT_MS").value_or(50u);
    std::thread(heartbeatLoop, heartbeatMs).detach();

    const hls::HlsEngine engine;
    wire::FrameReader reader;
    char buf[64 * 1024];
    for (;;) {
        const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            _exit(2);
        }
        if (n == 0) {
            // Service closed the pipe (crashed or shut down): nothing left
            // to serve.
            _exit(0);
        }
        try {
            reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
            while (auto frame = reader.next()) {
                switch (frame->type) {
                case wire::FrameType::Request:
                    serveRequest(engine, wire::decodeRequest(frame->payload));
                    break;
                case wire::FrameType::Shutdown:
                    _exit(0);
                default:
                    // Hello/Result/Error/Heartbeat are worker->service only;
                    // ignore rather than die on a confused peer.
                    break;
                }
            }
        } catch (const Error&) {
            // Desynced or malformed stream: the pipe is useless; exit so
            // the fleet respawns a clean worker.
            _exit(4);
        }
    }
}
