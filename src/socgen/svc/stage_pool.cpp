#include "socgen/svc/stage_pool.hpp"

#include <algorithm>

namespace socgen::svc {

/// The per-tenant StageScheduler view handed to ExecutorConfig: just a
/// tag around the pool's submit.
class SharedStagePool::TenantScheduler : public core::StageScheduler {
public:
    TenantScheduler(SharedStagePool* pool, std::string tenant)
        : pool_(pool), tenant_(std::move(tenant)) {}

    void submit(std::function<void()> task) override {
        pool_->submit(tenant_, std::move(task));
    }

private:
    SharedStagePool* pool_;
    std::string tenant_;
};

SharedStagePool::SharedStagePool(unsigned workers) {
    const unsigned count = workers < 1 ? 1 : workers;
    workers_.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

SharedStagePool::~SharedStagePool() {
    // Drain before joining: queued tasks belong to flows still blocked
    // in execute(), and the StageScheduler contract forbids dropping
    // them. The service destroys flows before the pool, so in practice
    // the queues are already empty here; the drain keeps the pool safe
    // to tear down in any order.
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void SharedStagePool::configureTenant(const std::string& tenant, unsigned weight,
                                      unsigned maxInFlightStages) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Tenant& t = tenants_[tenant];
    t.weight = weight < 1 ? 1 : weight;
    t.maxInFlight = maxInFlightStages < 1 ? 1 : maxInFlightStages;
    // A newly-registered tenant starts at the current global virtual
    // time: it competes from "now", it does not get credit for the past.
    t.virtualTime = std::max(t.virtualTime, globalVirtualTime_);
}

std::shared_ptr<core::StageScheduler>
SharedStagePool::schedulerFor(const std::string& tenant) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (tenants_.count(tenant) == 0) {
            Tenant& t = tenants_[tenant];
            t.maxInFlight = static_cast<unsigned>(workers_.size());
            t.virtualTime = globalVirtualTime_;
        }
    }
    return std::make_shared<TenantScheduler>(this, tenant);
}

void SharedStagePool::submit(const std::string& tenant, std::function<void()> task) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        Tenant& t = tenants_[tenant];
        if (t.queue.empty() && t.inFlight == 0) {
            // Waking from idle: jump to the present so the tenant cannot
            // spend "saved up" virtual time starving everyone else.
            t.virtualTime = std::max(t.virtualTime, globalVirtualTime_);
        }
        t.queue.push_back(std::move(task));
        ++queuedTotal_;
        stats_.maxQueueDepth = std::max(stats_.maxQueueDepth, queuedTotal_);
    }
    cv_.notify_one();
}

std::string SharedStagePool::pickTenant() const {
    std::string best;
    double bestTime = 0.0;
    for (const auto& [name, t] : tenants_) {
        if (t.queue.empty() || t.inFlight >= t.maxInFlight) {
            continue;
        }
        if (best.empty() || t.virtualTime < bestTime) {
            best = name;
            bestTime = t.virtualTime;
        }
        // Map iteration is ordered, so the first of equal virtual times
        // (the lexicographically smallest name) wins deterministically.
    }
    return best;
}

void SharedStagePool::workerLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        const std::string pick = pickTenant();
        if (pick.empty()) {
            if (shutdown_ && queuedTotal_ == 0) {
                return;
            }
            cv_.wait(lock);
            continue;
        }
        Tenant& t = tenants_[pick];
        std::function<void()> task = std::move(t.queue.front());
        t.queue.pop_front();
        --queuedTotal_;
        ++t.inFlight;
        // WFQ accounting: every dispatched stage costs 1/weight virtual
        // time, so under contention dispatch counts are proportional to
        // weights.
        t.virtualTime += 1.0 / static_cast<double>(t.weight);
        globalVirtualTime_ = std::max(globalVirtualTime_, t.virtualTime);
        ++stats_.tasksExecuted;
        lock.unlock();
        task();
        task = nullptr;  // release captures before re-locking
        lock.lock();
        --tenants_[pick].inFlight;
        // A freed in-flight slot (or a task the epilogue enqueued) may
        // make another tenant dispatchable.
        cv_.notify_all();
    }
}

SharedStagePool::Stats SharedStagePool::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace socgen::svc
