#pragma once

#include "socgen/core/flow.hpp"
#include "socgen/svc/stage_pool.hpp"
#include "socgen/svc/worker_fleet.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace socgen::svc {

/// Per-tenant service-level knobs (the stage-level knobs — weight and
/// in-flight cap — are forwarded to the SharedStagePool).
struct TenantConfig {
    unsigned weight = 1;             ///< WFQ share of the stage pool
    unsigned maxInFlightStages = 4;  ///< concurrently running stages cap
    std::size_t maxQueueDepth = 8;   ///< queued + running flows for this tenant
    int priority = 0;                ///< admission priority: lower is shed first
};

struct ServiceConfig {
    /// Service root. Layout: rootDir/store (shared artifact store),
    /// rootDir/tenants/<tenant>/ (per-tenant journals + artifacts),
    /// rootDir/requests/ (the durable request ledger).
    std::string rootDir;
    unsigned stageWorkers = 4;  ///< shared stage pool size
    unsigned flowRunners = 2;   ///< concurrently *running* flows
    /// Service-wide bound on queued (admitted, not yet running) flows.
    /// At the bound, a new submission sheds the lowest-priority queued
    /// flow if one ranks strictly below it, else is rejected Overloaded
    /// — admission is always O(queue), memory always bounded.
    std::size_t maxQueuedFlows = 32;
    core::StagePolicy stagePolicy;  ///< default per-stage retry/deadline policy
    /// Circuit breaker: this many consecutive faulted flows (failed or
    /// crashed) quarantine the tenant (submissions rejected CircuitOpen)...
    unsigned breakerFaultThreshold = 3;
    /// ...until this many rejections have accumulated, after which one
    /// probe flow is admitted; a clean probe closes the breaker, a
    /// faulted one re-opens it.
    unsigned breakerCooldownRejects = 4;
    /// Template for every flow's options (device, directives, backend,
    /// synthesis toggles). outputDir / store / gate / scheduler /
    /// policy / faults are overwritten per request by the service.
    core::FlowOptions flowDefaults;

    /// Out-of-process worker fleet size. 0 (the default) keeps every
    /// stage in-process; overridable via SOCGEN_SVC_WORKERS (0 disables,
    /// N spawns N socgen-worker processes). Workers that cannot be
    /// spawned degrade the service gracefully back to in-process
    /// execution — never to failure.
    unsigned workers = 0;
    /// socgen-worker binary; "" resolves via SOCGEN_WORKER_PATH, then
    /// the build-time default.
    std::string workerPath;
    /// Fleet supervision knobs, forwarded to WorkerFleetConfig (the
    /// workers/workerPath fields above take precedence).
    WorkerFleetConfig fleetConfig;

    /// Run an ArtifactStore::scrub() pass at service start: every object
    /// in every shard is digest-verified, corrupt ones quarantined, so
    /// the store self-heals before the first tenant hits it.
    bool scrubOnOpen = true;
};

enum class RequestState {
    Queued,
    Running,
    Completed,
    Failed,    ///< structured failure (error recorded, ledger closed)
    Crashed,   ///< simulated kill -9: ledger entry stays pending for recovery
    Rejected,  ///< never admitted, or shed after admission
};

enum class RejectReason { None, Overloaded, TenantQueueFull, CircuitOpen, Shed };

[[nodiscard]] const char* toString(RequestState state);
[[nodiscard]] const char* toString(RejectReason reason);

/// One tenant's compile request.
struct FlowRequest {
    std::string tenant;
    std::string project;
    core::TaskGraph graph;
    /// Flow-level fault injection (chaos harness).
    sim::FaultPlan faults;
    std::map<std::string, unsigned> transientHlsFailures;
    /// Per-request deadline knobs, propagated into the StageSupervisor
    /// (0 keeps the service default): per-attempt deadline and total
    /// retry wall-clock cap.
    double stageDeadlineMs = 0.0;
    double maxRetryWallClockMs = 0.0;
};

struct RequestOutcome {
    RequestState state = RequestState::Queued;
    RejectReason rejectReason = RejectReason::None;
    std::string error;
    core::FlowDiagnostics diagnostics;
    std::string bitstreamDigest;  ///< bit-identity witness ("" if no synthesis)
    double waitMs = 0.0;          ///< submit → start (queueing delay)
    double runMs = 0.0;           ///< start → terminal
};

class FlowService;

/// Ticket for one submitted request; cheap to copy.
class FlowHandle {
public:
    /// Blocks until the request is terminal and returns its outcome.
    [[nodiscard]] RequestOutcome wait() const;
    [[nodiscard]] bool isTerminal() const;
    [[nodiscard]] const std::string& tenant() const;
    [[nodiscard]] const std::string& project() const;

private:
    friend class FlowService;
    struct Cell;
    std::shared_ptr<Cell> cell_;
};

struct ServiceStats {
    std::size_t submitted = 0;
    std::size_t admitted = 0;
    std::size_t completed = 0;
    std::size_t failed = 0;
    std::size_t crashed = 0;
    std::size_t shed = 0;
    std::size_t rejectedOverloaded = 0;
    std::size_t rejectedTenantFull = 0;
    std::size_t rejectedBreaker = 0;
    std::size_t breakerTrips = 0;
    std::size_t recovered = 0;
};

/// Long-lived in-process compile service: many tenants submit
/// FlowRequests concurrently; flows run on `flowRunners` runner threads
/// with every stage scheduled on one SharedStagePool (weighted fair
/// queueing + per-tenant quotas), deduping identical HLS work through
/// one shared ArtifactStore/HlsCache/SynthGate.
///
/// Robustness contract:
///  - admission control is bounded (tenant queue depth, service queue
///    bound with priority shedding) and rejections are structured
///    (RequestState::Rejected + reason), never exceptions or OOM;
///  - a tenant whose flows keep faulting is quarantined by a per-tenant
///    circuit breaker and later probed back in;
///  - every admitted request is durably recorded in rootDir/requests/
///    before it runs and marked done on structured completion/failure;
///    a crash (FlowCrashError — the simulated kill -9) leaves the
///    record pending, and a new service on the same root resumes every
///    pending flow via recoverPending() — bit-identically and with zero
///    re-synthesis, courtesy of the per-tenant FlowJournals and the
///    content-addressed store.
class FlowService {
public:
    /// `kernels` must outlive the service (flows hold a reference).
    FlowService(ServiceConfig config, const hls::KernelLibrary& kernels);
    ~FlowService();

    FlowService(const FlowService&) = delete;
    FlowService& operator=(const FlowService&) = delete;

    void configureTenant(const std::string& name, TenantConfig config);

    /// Admission-controlled, never-blocking submit: returns a handle
    /// whose outcome is either a terminal rejection (already resolved)
    /// or resolves when the flow finishes.
    [[nodiscard]] FlowHandle submit(FlowRequest request);

    /// Re-submits every ledger entry without a done marker — the flows
    /// in flight when the previous service instance died. Call once,
    /// right after construction on a root a crashed service left behind.
    std::vector<FlowHandle> recoverPending();

    /// Blocks until no request is queued or running.
    void drain();

    [[nodiscard]] ServiceStats stats() const;
    [[nodiscard]] SharedStagePool::Stats poolStats() const;
    /// In-flight synthesis dedupe waits observed by the shared gate.
    [[nodiscard]] std::size_t synthDedupeWaits() const;
    [[nodiscard]] const core::ArtifactStore& store() const { return *store_; }

    /// The out-of-process worker fleet (nullptr when workers == 0 or
    /// SOCGEN_SVC_WORKERS=0).
    [[nodiscard]] WorkerFleet* fleet() const { return fleet_.get(); }

    /// Objects the startup scrub quarantined (0 when scrubOnOpen off).
    [[nodiscard]] std::size_t scrubQuarantined() const { return scrubQuarantined_; }

private:
    enum class BreakerState { Closed, Open, HalfOpen };
    struct Breaker {
        BreakerState state = BreakerState::Closed;
        unsigned consecutiveFaults = 0;
        unsigned rejectsSinceOpen = 0;
        bool probeInFlight = false;
    };
    struct TenantState {
        TenantConfig config;
        std::size_t active = 0;  ///< queued + running flows
        Breaker breaker;
    };

    void runnerLoop();
    RequestOutcome runFlow(const FlowRequest& request);
    void finishCell(const std::shared_ptr<FlowHandle::Cell>& cell,
                    RequestOutcome outcome);
    /// Resolves `cell` as Rejected(reason) (caller holds mutex_).
    void rejectCell(const std::shared_ptr<FlowHandle::Cell>& cell,
                    RejectReason reason);
    [[nodiscard]] std::string requestPath(const std::string& id) const;
    [[nodiscard]] std::string donePath(const std::string& id) const;

    ServiceConfig config_;
    const hls::KernelLibrary& kernels_;
    std::shared_ptr<core::ArtifactStore> store_;
    std::shared_ptr<core::HlsCache> cache_;
    std::shared_ptr<core::SynthGate> gate_;
    std::unique_ptr<SharedStagePool> pool_;
    std::shared_ptr<WorkerFleet> fleet_;
    std::size_t scrubQuarantined_ = 0;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::string, TenantState> tenants_;
    std::deque<std::shared_ptr<FlowHandle::Cell>> queue_;
    std::size_t running_ = 0;
    std::uint64_t nextSequence_ = 0;
    bool shutdown_ = false;
    ServiceStats stats_;
    std::vector<std::thread> runners_;
};

} // namespace socgen::svc
