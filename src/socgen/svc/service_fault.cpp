#include "socgen/svc/service_fault.hpp"

#include "socgen/common/strings.hpp"

namespace socgen::svc {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

const std::string& pick(const std::vector<std::string>& from, std::uint64_t r,
                        const std::string& fallback) {
    if (from.empty()) {
        return fallback;
    }
    return from[static_cast<std::size_t>(r % from.size())];
}

} // namespace

const char* toString(ServiceFaultKind kind) {
    switch (kind) {
    case ServiceFaultKind::None: return "none";
    case ServiceFaultKind::CrashAtBegin: return "crash-at-begin";
    case ServiceFaultKind::CrashPreCommit: return "crash-pre-commit";
    case ServiceFaultKind::ArtifactCorrupt: return "artifact-corrupt";
    case ServiceFaultKind::StageHang: return "stage-hang";
    case ServiceFaultKind::QueueStorm: return "queue-storm";
    }
    return "?";
}

const std::vector<ServiceFaultKind>& allServiceFaultKinds() {
    static const std::vector<ServiceFaultKind> kinds = {
        ServiceFaultKind::CrashAtBegin,    ServiceFaultKind::CrashPreCommit,
        ServiceFaultKind::ArtifactCorrupt, ServiceFaultKind::StageHang,
        ServiceFaultKind::QueueStorm,
    };
    return kinds;
}

std::uint64_t ServiceFaultPlan::mix(const std::string& tenant,
                                    const std::string& project) const {
    return splitmix64(seed ^ splitmix64(fnv1a64(tenant) ^ fnv1a64(project)));
}

sim::FaultPlan ServiceFaultPlan::planFor(const std::string& tenant,
                                         const std::string& project,
                                         ServiceFaultKind kind,
                                         const std::vector<std::string>& stages,
                                         const std::vector<std::string>& kernels,
                                         std::uint64_t hangMs) const {
    static const std::string kDefaultStage = "integrate";
    const std::uint64_t r = mix(tenant, project);
    sim::FaultPlan plan(seed);
    switch (kind) {
    case ServiceFaultKind::None:
    case ServiceFaultKind::QueueStorm:
        // No flow-level events: healthy flow (the storm happens at the
        // submission boundary, driven by the harness).
        break;
    case ServiceFaultKind::CrashAtBegin:
        plan.crashFlow(pick(stages, r, kDefaultStage), 0);
        break;
    case ServiceFaultKind::CrashPreCommit:
        plan.crashFlow(pick(stages, r, kDefaultStage), 1);
        break;
    case ServiceFaultKind::ArtifactCorrupt:
        if (!kernels.empty()) {
            plan.corruptArtifact(pick(kernels, r, kDefaultStage));
        }
        break;
    case ServiceFaultKind::StageHang:
        plan.hangStage(pick(stages, r, kDefaultStage), hangMs);
        break;
    }
    return plan;
}

} // namespace socgen::svc
