#pragma once

#include "socgen/sim/fault.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::svc {

/// The service-level chaos vocabulary: what can go wrong to one
/// tenant's flow while the service runs a fleet of them. Each kind maps
/// onto a flow-level sim::FaultPlan (consumed by the flow's
/// StageFaultHooks), except QueueStorm, which is an *admission* fault —
/// it is realised by the harness submitting a burst, not by the flow.
enum class ServiceFaultKind {
    None,            ///< healthy tenant (the control group)
    CrashAtBegin,    ///< kill -9 right after a stage's begin record
    CrashPreCommit,  ///< kill -9 with work done but the commit unwritten
    ArtifactCorrupt, ///< flip a byte of a stored artifact post-commit
    StageHang,       ///< one stage blocks until the deadline abandons it
    QueueStorm,      ///< burst of extra submissions against full queues
};

[[nodiscard]] const char* toString(ServiceFaultKind kind);

/// All kinds a sweep should iterate (excludes None).
[[nodiscard]] const std::vector<ServiceFaultKind>& allServiceFaultKinds();

/// Seed-deterministic chaos assignment for one request: the same
/// (seed, tenant, project, kind) always yields the same victim stage /
/// kernel and the same plan, so a failing sweep iteration replays
/// exactly. `stages` and `kernels` name the request's fault surface
/// (stage names for crash/hang, kernel names for corruption); the plan
/// picks victims from them by PRNG.
struct ServiceFaultPlan {
    std::uint64_t seed = 0;

    [[nodiscard]] sim::FaultPlan
    planFor(const std::string& tenant, const std::string& project,
            ServiceFaultKind kind, const std::vector<std::string>& stages,
            const std::vector<std::string>& kernels,
            std::uint64_t hangMs = 50) const;

    /// The deterministic per-request PRNG stream head (exposed so the
    /// harness can derive matching burst sizes for QueueStorm).
    [[nodiscard]] std::uint64_t mix(const std::string& tenant,
                                    const std::string& project) const;
};

} // namespace socgen::svc
