#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>

namespace socgen::svc::wire {

/// Length-prefixed pipe IPC protocol between the flow service and its
/// `socgen-worker` processes. Every frame is
///
///     u32 LE length  |  u8 type  |  payload (length-1 bytes)
///
/// with payloads encoded by the same BinWriter/BinReader primitives as
/// the artifact codec. The protocol is internal to one build (the
/// service spawns the worker binary it was built with); Hello carries a
/// version so a mismatched pairing fails loudly instead of mis-decoding.
///
/// Kernel and directives travel as their own encoded blobs
/// (hls::encodeKernel / hls::encodeDirectives): tenants submit arbitrary
/// kernels, so the worker must receive the full AST, not a name to look
/// up in some library it does not have.

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on one frame; anything larger is certain corruption of
/// the length prefix (a desynced or hostile peer), not a real payload.
inline constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
    Hello = 1,      ///< worker -> service, once at startup
    Request = 2,    ///< service -> worker: run one stage attempt
    Result = 3,     ///< worker -> service: attempt succeeded
    Error = 4,      ///< worker -> service: attempt failed (structured)
    Heartbeat = 5,  ///< worker -> service: liveness
    Shutdown = 6,   ///< service -> worker: exit cleanly
};

[[nodiscard]] const char* toString(FrameType type);

struct Frame {
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/// Renders one frame (length prefix included).
[[nodiscard]] std::string encodeFrame(FrameType type, std::string_view payload);

/// Incremental frame decoder: feed() arbitrary byte chunks, next() pops
/// complete frames. Throws WireError on an implausible length prefix or
/// unknown frame type — the fleet treats that as a poisoned worker.
class FrameReader {
public:
    void feed(std::string_view bytes);
    [[nodiscard]] std::optional<Frame> next();

    /// Bytes buffered but not yet consumed as a complete frame.
    [[nodiscard]] std::size_t pendingBytes() const { return buffer_.size(); }

private:
    std::string buffer_;
};

// ---------------------------------------------------------------------------
// Typed payloads.

struct HelloFrame {
    std::uint32_t protocolVersion = kProtocolVersion;
    std::uint64_t pid = 0;
};

struct RequestFrame {
    std::uint64_t requestId = 0;
    std::uint64_t leaseEpoch = 0;
    std::string key;         ///< content-addressed artifact key
    std::string kernel;      ///< hls::encodeKernel blob
    std::string directives;  ///< hls::encodeDirectives blob
    /// Test hooks, honoured by the worker before replying: sleep (models
    /// a slow vendor tool / a SIGSTOPped worker) and deliberate death at
    /// the stage boundary (models kill -9 between attempt and commit).
    std::uint32_t delayMsBeforeResult = 0;
    bool crashBeforeResult = false;
};

struct ResultFrame {
    std::uint64_t requestId = 0;
    std::uint64_t leaseEpoch = 0;
    std::string result;  ///< hls::encodeHlsResult blob
};

/// Structured attempt failure. `hlsError` distinguishes a kernel the
/// engine genuinely rejects (surfaces as HlsError, exactly like an
/// in-process failure) from a worker-side infrastructure problem.
struct ErrorFrame {
    std::uint64_t requestId = 0;
    std::uint64_t leaseEpoch = 0;
    bool hlsError = false;
    std::string message;
};

struct HeartbeatFrame {
    std::uint64_t requestsServed = 0;
    std::uint64_t inFlightRequestId = 0;  ///< 0 when idle
};

[[nodiscard]] std::string encodeHello(const HelloFrame& hello);
[[nodiscard]] HelloFrame decodeHello(std::string_view payload);
[[nodiscard]] std::string encodeRequest(const RequestFrame& request);
[[nodiscard]] RequestFrame decodeRequest(std::string_view payload);
[[nodiscard]] std::string encodeResult(const ResultFrame& result);
[[nodiscard]] ResultFrame decodeResult(std::string_view payload);
[[nodiscard]] std::string encodeError(const ErrorFrame& error);
[[nodiscard]] ErrorFrame decodeError(std::string_view payload);
[[nodiscard]] std::string encodeHeartbeat(const HeartbeatFrame& heartbeat);
[[nodiscard]] HeartbeatFrame decodeHeartbeat(std::string_view payload);

} // namespace socgen::svc::wire
