#include "socgen/svc/wire.hpp"

#include "socgen/common/binio.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::svc::wire {
namespace {

/// Wraps payload decoding so a malformed frame always surfaces as
/// WireError, whatever the BinReader threw.
template <typename Fn>
auto decodePayload(const char* what, Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (const WireError&) {
        throw;
    } catch (const Error& e) {
        throw WireError(format("malformed %s frame: %s", what, e.what()));
    }
}

} // namespace

const char* toString(FrameType type) {
    switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::Request: return "request";
    case FrameType::Result: return "result";
    case FrameType::Error: return "error";
    case FrameType::Heartbeat: return "heartbeat";
    case FrameType::Shutdown: return "shutdown";
    }
    return "?";
}

std::string encodeFrame(FrameType type, std::string_view payload) {
    if (payload.size() + 1 > kMaxFrameBytes) {
        throw WireError(format("frame payload of %zu bytes exceeds the %u-byte cap",
                               payload.size(), kMaxFrameBytes));
    }
    const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
    std::string out;
    out.reserve(5 + payload.size());
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
    }
    out.push_back(static_cast<char>(type));
    out.append(payload);
    return out;
}

void FrameReader::feed(std::string_view bytes) { buffer_.append(bytes); }

std::optional<Frame> FrameReader::next() {
    if (buffer_.size() < 4) {
        return std::nullopt;
    }
    std::uint32_t length = 0;
    for (int i = 3; i >= 0; --i) {
        length = (length << 8) | static_cast<unsigned char>(buffer_[static_cast<std::size_t>(i)]);
    }
    if (length == 0 || length > kMaxFrameBytes) {
        throw WireError(format("implausible frame length %u — desynced stream", length));
    }
    if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
        return std::nullopt;
    }
    const std::uint8_t rawType = static_cast<std::uint8_t>(buffer_[4]);
    if (rawType < static_cast<std::uint8_t>(FrameType::Hello) ||
        rawType > static_cast<std::uint8_t>(FrameType::Shutdown)) {
        throw WireError(format("unknown frame type %u", rawType));
    }
    Frame frame;
    frame.type = static_cast<FrameType>(rawType);
    frame.payload = buffer_.substr(5, length - 1);
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
    return frame;
}

std::string encodeHello(const HelloFrame& hello) {
    BinWriter w;
    w.u32(hello.protocolVersion);
    w.u64(hello.pid);
    return w.take();
}

HelloFrame decodeHello(std::string_view payload) {
    return decodePayload("hello", [&] {
        BinReader r(payload);
        HelloFrame hello;
        hello.protocolVersion = r.u32();
        hello.pid = r.u64();
        r.expectEnd();
        return hello;
    });
}

std::string encodeRequest(const RequestFrame& request) {
    BinWriter w;
    w.u64(request.requestId);
    w.u64(request.leaseEpoch);
    w.str(request.key);
    w.str(request.kernel);
    w.str(request.directives);
    w.u32(request.delayMsBeforeResult);
    w.u8(request.crashBeforeResult ? 1 : 0);
    return w.take();
}

RequestFrame decodeRequest(std::string_view payload) {
    return decodePayload("request", [&] {
        BinReader r(payload);
        RequestFrame request;
        request.requestId = r.u64();
        request.leaseEpoch = r.u64();
        request.key = r.str();
        request.kernel = r.str();
        request.directives = r.str();
        request.delayMsBeforeResult = r.u32();
        request.crashBeforeResult = r.u8() != 0;
        r.expectEnd();
        return request;
    });
}

std::string encodeResult(const ResultFrame& result) {
    BinWriter w;
    w.u64(result.requestId);
    w.u64(result.leaseEpoch);
    w.str(result.result);
    return w.take();
}

ResultFrame decodeResult(std::string_view payload) {
    return decodePayload("result", [&] {
        BinReader r(payload);
        ResultFrame result;
        result.requestId = r.u64();
        result.leaseEpoch = r.u64();
        result.result = r.str();
        r.expectEnd();
        return result;
    });
}

std::string encodeError(const ErrorFrame& error) {
    BinWriter w;
    w.u64(error.requestId);
    w.u64(error.leaseEpoch);
    w.u8(error.hlsError ? 1 : 0);
    w.str(error.message);
    return w.take();
}

ErrorFrame decodeError(std::string_view payload) {
    return decodePayload("error", [&] {
        BinReader r(payload);
        ErrorFrame error;
        error.requestId = r.u64();
        error.leaseEpoch = r.u64();
        error.hlsError = r.u8() != 0;
        error.message = r.str();
        r.expectEnd();
        return error;
    });
}

std::string encodeHeartbeat(const HeartbeatFrame& heartbeat) {
    BinWriter w;
    w.u64(heartbeat.requestsServed);
    w.u64(heartbeat.inFlightRequestId);
    return w.take();
}

HeartbeatFrame decodeHeartbeat(std::string_view payload) {
    return decodePayload("heartbeat", [&] {
        BinReader r(payload);
        HeartbeatFrame heartbeat;
        heartbeat.requestsServed = r.u64();
        heartbeat.inFlightRequestId = r.u64();
        r.expectEnd();
        return heartbeat;
    });
}

} // namespace socgen::svc::wire
