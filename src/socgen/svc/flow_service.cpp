#include "socgen/svc/flow_service.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/parser.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>

namespace socgen::svc {

const char* toString(RequestState state) {
    switch (state) {
    case RequestState::Queued: return "queued";
    case RequestState::Running: return "running";
    case RequestState::Completed: return "completed";
    case RequestState::Failed: return "failed";
    case RequestState::Crashed: return "crashed";
    case RequestState::Rejected: return "rejected";
    }
    return "?";
}

const char* toString(RejectReason reason) {
    switch (reason) {
    case RejectReason::None: return "none";
    case RejectReason::Overloaded: return "overloaded";
    case RejectReason::TenantQueueFull: return "tenant-queue-full";
    case RejectReason::CircuitOpen: return "circuit-open";
    case RejectReason::Shed: return "shed";
    }
    return "?";
}

// ---------------------------------------------------------------------------
// FlowHandle

struct FlowHandle::Cell {
    FlowRequest request;
    std::string id;        ///< ledger identity: <tenant>__<project>
    int priority = 0;      ///< tenant priority at admission (shedding rank)
    std::uint64_t sequence = 0;  ///< FIFO order within a priority class
    std::chrono::steady_clock::time_point submitTime;

    std::mutex mutex;
    std::condition_variable cv;
    RequestOutcome outcome;
    bool terminal = false;
};

RequestOutcome FlowHandle::wait() const {
    std::unique_lock<std::mutex> lock(cell_->mutex);
    cell_->cv.wait(lock, [this] { return cell_->terminal; });
    return cell_->outcome;
}

bool FlowHandle::isTerminal() const {
    const std::lock_guard<std::mutex> lock(cell_->mutex);
    return cell_->terminal;
}

const std::string& FlowHandle::tenant() const { return cell_->request.tenant; }
const std::string& FlowHandle::project() const { return cell_->request.project; }

// ---------------------------------------------------------------------------
// Request ledger
//
// One file per admitted request, written atomically *before* the request
// becomes runnable, plus a done marker written on structured completion,
// failure or shed. A crash between the two leaves a pending entry —
// exactly the set recoverPending() re-submits. The body carries the
// request's canonical DSL rendering, so recovery re-parses the graph
// (parseDsl(renderDsl(g)) == g) instead of trusting in-memory state that
// died with the process. Fault plans and injected failures are
// deliberately NOT persisted: they model events of the dead process, and
// a recovery run must run clean.

namespace {

constexpr const char* kLedgerMagic = "SOCGENREQ1";

std::string renderLedger(const FlowRequest& request) {
    std::string out;
    out += kLedgerMagic;
    out += "\ntenant ";
    out += request.tenant;
    out += format("\ndeadline %.6f", request.stageDeadlineMs);
    out += format("\nretrycap %.6f", request.maxRetryWallClockMs);
    out += "\ndsl\n";
    out += request.graph.renderDsl(request.project);
    return out;
}

/// Parses a ledger file body back into a request. Throws socgen::Error
/// on malformed input (a foreign or truncated file — never one written
/// by renderLedger, which lands atomically).
FlowRequest parseLedger(const std::string& body, const std::string& path) {
    const auto fail = [&path](const std::string& why) -> FlowRequest {
        throw Error(format("request ledger %s: %s", path.c_str(), why.c_str()));
    };
    std::size_t pos = 0;
    const auto nextLine = [&]() -> std::string {
        const std::size_t end = body.find('\n', pos);
        if (end == std::string::npos) {
            return fail("truncated header").tenant;  // unreachable (throws)
        }
        std::string line = body.substr(pos, end - pos);
        pos = end + 1;
        return line;
    };
    FlowRequest request;
    if (nextLine() != kLedgerMagic) {
        fail("bad magic");
    }
    const std::string tenantLine = nextLine();
    if (tenantLine.rfind("tenant ", 0) != 0) {
        fail("missing tenant line");
    }
    request.tenant = tenantLine.substr(7);
    const std::string deadlineLine = nextLine();
    if (deadlineLine.rfind("deadline ", 0) != 0) {
        fail("missing deadline line");
    }
    request.stageDeadlineMs = std::strtod(deadlineLine.c_str() + 9, nullptr);
    const std::string retryLine = nextLine();
    if (retryLine.rfind("retrycap ", 0) != 0) {
        fail("missing retrycap line");
    }
    request.maxRetryWallClockMs = std::strtod(retryLine.c_str() + 9, nullptr);
    if (nextLine() != "dsl") {
        fail("missing dsl marker");
    }
    const core::ParsedDsl parsed = core::parseDsl(std::string_view(body).substr(pos));
    request.project = parsed.projectName;
    request.graph = parsed.graph;
    return request;
}

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

// ---------------------------------------------------------------------------
// FlowService

FlowService::FlowService(ServiceConfig config, const hls::KernelLibrary& kernels)
    : config_(std::move(config)), kernels_(kernels) {
    store_ = std::make_shared<core::ArtifactStore>(config_.rootDir + "/store");
    if (config_.scrubOnOpen) {
        // Self-healing pass: verify every object in every shard before
        // the first tenant reads one; corrupt objects move to
        // quarantine/ and are transparently re-synthesized on demand.
        const core::ArtifactStore::ScrubReport report = store_->scrub();
        scrubQuarantined_ = report.quarantined.size();
        if (scrubQuarantined_ > 0) {
            Logger::global().warn(format("service: startup scrub quarantined %zu of %zu "
                                         "stored objects",
                                         scrubQuarantined_, report.scanned));
        }
    }
    cache_ = std::make_shared<core::HlsCache>();
    gate_ = std::make_shared<core::SynthGate>();
    pool_ = std::make_unique<SharedStagePool>(config_.stageWorkers);
    unsigned workers = config_.workers;
    if (const auto env = envUnsignedOrZero("SOCGEN_SVC_WORKERS")) {
        workers = *env;
    }
    if (workers > 0) {
        WorkerFleetConfig fleetConfig = config_.fleetConfig;
        fleetConfig.workers = workers;
        if (!config_.workerPath.empty()) {
            fleetConfig.workerPath = config_.workerPath;
        }
        fleet_ = std::make_shared<WorkerFleet>(fleetConfig, store_);
        Logger::global().info(format("service: worker fleet enabled (%u workers)", workers));
    }
    const unsigned runners = config_.flowRunners < 1 ? 1 : config_.flowRunners;
    runners_.reserve(runners);
    for (unsigned i = 0; i < runners; ++i) {
        runners_.emplace_back([this] { runnerLoop(); });
    }
}

FlowService::~FlowService() {
    // Admitted work is never dropped: finish the queue, then stop.
    drain();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& runner : runners_) {
        runner.join();
    }
    pool_.reset();  // joins the stage workers (queues are empty by now)
    fleet_.reset(); // then the worker fleet: no stage can dispatch anymore
}

std::string FlowService::requestPath(const std::string& id) const {
    return config_.rootDir + "/requests/" + id + ".req";
}

std::string FlowService::donePath(const std::string& id) const {
    return config_.rootDir + "/requests/" + id + ".done";
}

void FlowService::configureTenant(const std::string& name, TenantConfig config) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        tenants_[name].config = config;
    }
    pool_->configureTenant(name, config.weight, config.maxInFlightStages);
}

void FlowService::rejectCell(const std::shared_ptr<FlowHandle::Cell>& cell,
                             RejectReason reason) {
    RequestOutcome outcome;
    outcome.state = RequestState::Rejected;
    outcome.rejectReason = reason;
    outcome.error = format("request %s rejected: %s", cell->id.c_str(),
                           toString(reason));
    finishCell(cell, std::move(outcome));
}

void FlowService::finishCell(const std::shared_ptr<FlowHandle::Cell>& cell,
                             RequestOutcome outcome) {
    {
        const std::lock_guard<std::mutex> lock(cell->mutex);
        cell->outcome = std::move(outcome);
        cell->terminal = true;
    }
    cell->cv.notify_all();
}

FlowHandle FlowService::submit(FlowRequest request) {
    FlowHandle handle;
    auto cell = std::make_shared<FlowHandle::Cell>();
    cell->request = std::move(request);
    cell->id = cell->request.tenant + "__" + cell->request.project;
    cell->submitTime = std::chrono::steady_clock::now();
    handle.cell_ = cell;

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.submitted;
        if (shutdown_) {
            ++stats_.rejectedOverloaded;
            rejectCell(cell, RejectReason::Overloaded);
            return handle;
        }
        TenantState& tenant = tenants_[cell->request.tenant];

        // 1. Circuit breaker: a quarantined tenant is rejected outright;
        //    enough rejections earn one half-open probe slot.
        Breaker& breaker = tenant.breaker;
        if (breaker.state == BreakerState::Open) {
            ++breaker.rejectsSinceOpen;
            if (breaker.rejectsSinceOpen >= config_.breakerCooldownRejects) {
                breaker.state = BreakerState::HalfOpen;
                breaker.probeInFlight = false;
            } else {
                ++stats_.rejectedBreaker;
                rejectCell(cell, RejectReason::CircuitOpen);
                return handle;
            }
        }
        if (breaker.state == BreakerState::HalfOpen && breaker.probeInFlight) {
            ++stats_.rejectedBreaker;
            rejectCell(cell, RejectReason::CircuitOpen);
            return handle;
        }

        // 2. Tenant quota: bounded queue per tenant (queued + running).
        if (tenant.active >= tenant.config.maxQueueDepth) {
            ++stats_.rejectedTenantFull;
            rejectCell(cell, RejectReason::TenantQueueFull);
            return handle;
        }

        // 3. Service-wide bound: shed the lowest-priority *queued* flow
        //    if it ranks strictly below the incomer, else reject the
        //    incomer. Either way the queue never grows past the bound.
        if (queue_.size() >= config_.maxQueuedFlows) {
            auto victim = queue_.end();
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (victim == queue_.end() || (*it)->priority < (*victim)->priority) {
                    victim = it;
                }
            }
            if (victim != queue_.end() && (*victim)->priority < tenant.config.priority) {
                const std::shared_ptr<FlowHandle::Cell> shedCell = *victim;
                queue_.erase(victim);
                --tenants_[shedCell->request.tenant].active;
                ++stats_.shed;
                // The shed flow was admitted (ledger entry exists): close
                // it so recovery does not resurrect a rejected request.
                writeFileAtomic(donePath(shedCell->id), "shed\n");
                rejectCell(shedCell, RejectReason::Shed);
            } else {
                ++stats_.rejectedOverloaded;
                rejectCell(cell, RejectReason::Overloaded);
                return handle;
            }
        }

        // Admit: durable ledger record first, then visible to runners.
        if (breaker.state == BreakerState::HalfOpen) {
            breaker.probeInFlight = true;
        }
        cell->priority = tenant.config.priority;
        cell->sequence = nextSequence_++;
        ++tenant.active;
        ++stats_.admitted;
        writeFileAtomic(requestPath(cell->id), renderLedger(cell->request));
        queue_.push_back(cell);
    }
    cv_.notify_one();
    return handle;
}

RequestOutcome FlowService::runFlow(const FlowRequest& request) {
    RequestOutcome out;
    core::FlowOptions opts = config_.flowDefaults;
    opts.outputDir = config_.rootDir + "/tenants/" + request.tenant;
    opts.sharedStore = store_;
    opts.synthGate = gate_;
    opts.stageScheduler = pool_->schedulerFor(request.tenant);
    opts.remoteHls = fleet_;
    opts.stagePolicy = config_.stagePolicy;
    if (request.stageDeadlineMs > 0.0) {
        opts.stagePolicy.deadlineMs = request.stageDeadlineMs;
    }
    if (request.maxRetryWallClockMs > 0.0) {
        opts.stagePolicy.maxRetryWallClockMs = request.maxRetryWallClockMs;
    }
    // Decorrelated backoff: each (tenant, project) retries on its own
    // jitter stream, so colliding tenants spread apart instead of
    // hammering the tools in lockstep.
    opts.stagePolicy.seed =
        splitmix64(opts.stagePolicy.seed ^
                   splitmix64(fnv1a64(request.tenant) ^ fnv1a64(request.project)));
    opts.flowFaults = request.faults;
    opts.transientHlsFailures = request.transientHlsFailures;
    try {
        core::Flow flow(opts, kernels_, cache_);
        core::FlowResult result = flow.run(request.project, request.graph);
        out.state = RequestState::Completed;
        out.diagnostics = std::move(result.diagnostics);
        if (opts.runSynthesis) {
            out.bitstreamDigest = digest128(result.bitstream.serialize()).hex();
        }
    } catch (const FlowCrashError& e) {
        // The simulated kill -9: no done marker, the ledger entry stays
        // pending for the next service instance to recover.
        out.state = RequestState::Crashed;
        out.error = e.what();
    } catch (const std::exception& e) {
        out.state = RequestState::Failed;
        out.error = e.what();
    }
    return out;
}

void FlowService::runnerLoop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        if (queue_.empty()) {
            if (shutdown_) {
                return;
            }
            cv_.wait(lock);
            continue;
        }
        // Highest admission priority first; FIFO within a class (the
        // queue is in submission order, so the first maximum wins).
        auto pick = queue_.begin();
        for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
            if ((*it)->priority > (*pick)->priority) {
                pick = it;
            }
        }
        const std::shared_ptr<FlowHandle::Cell> cell = *pick;
        queue_.erase(pick);
        ++running_;
        lock.unlock();

        const auto start = std::chrono::steady_clock::now();
        RequestOutcome outcome = runFlow(cell->request);
        const auto end = std::chrono::steady_clock::now();
        outcome.waitMs =
            std::chrono::duration<double, std::milli>(start - cell->submitTime).count();
        outcome.runMs = std::chrono::duration<double, std::milli>(end - start).count();
        if (outcome.state != RequestState::Crashed) {
            // Structured terminal state: close the ledger entry. Crashes
            // skip this on purpose — that is what recovery keys off.
            writeFileAtomic(donePath(cell->id), std::string(toString(outcome.state)) + "\n");
        }
        const RequestState state = outcome.state;

        lock.lock();
        TenantState& tenant = tenants_[cell->request.tenant];
        --tenant.active;
        --running_;
        const bool fault =
            state == RequestState::Failed || state == RequestState::Crashed;
        Breaker& breaker = tenant.breaker;
        if (fault) {
            ++breaker.consecutiveFaults;
            if (breaker.state == BreakerState::HalfOpen ||
                breaker.consecutiveFaults >= config_.breakerFaultThreshold) {
                if (breaker.state != BreakerState::Open) {
                    ++stats_.breakerTrips;
                }
                breaker.state = BreakerState::Open;
                breaker.rejectsSinceOpen = 0;
                breaker.probeInFlight = false;
            }
            if (state == RequestState::Failed) {
                ++stats_.failed;
            } else {
                ++stats_.crashed;
            }
        } else {
            breaker.consecutiveFaults = 0;
            breaker.probeInFlight = false;
            breaker.state = BreakerState::Closed;
            ++stats_.completed;
        }
        // Resolve the handle only after the accounting above: a client
        // that wait()s and immediately resubmits must observe the
        // breaker/quota state this outcome implies. (mutex_ before the
        // cell mutex is the lock order used everywhere.)
        finishCell(cell, std::move(outcome));
        cv_.notify_all();
    }
}

std::vector<FlowHandle> FlowService::recoverPending() {
    namespace fs = std::filesystem;
    std::vector<fs::path> pending;
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(config_.rootDir + "/requests", ec)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".req") {
            continue;
        }
        pending.push_back(entry.path());
    }
    std::sort(pending.begin(), pending.end());

    std::vector<FlowHandle> handles;
    for (const auto& path : pending) {
        const std::string id = path.stem().string();
        if (fileExists(donePath(id))) {
            continue;
        }
        FlowRequest request;
        try {
            request = parseLedger(readTextFile(path.string()), path.string());
        } catch (const Error& e) {
            // A foreign or damaged file must not wedge recovery of the
            // healthy entries; report it and move on.
            Logger::global().warn(format("service: skipping unreadable ledger "
                                         "entry: %s",
                                         e.what()));
            continue;
        }
        Logger::global().info(format("service: recovering pending flow %s", id.c_str()));
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.recovered;
        }
        handles.push_back(submit(std::move(request)));
    }
    return handles;
}

void FlowService::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

ServiceStats FlowService::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

SharedStagePool::Stats FlowService::poolStats() const { return pool_->stats(); }

std::size_t FlowService::synthDedupeWaits() const { return gate_->waits(); }

} // namespace socgen::svc
