#pragma once

#include "socgen/core/stage_graph.hpp"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace socgen::svc {

/// One worker pool shared by every concurrently running flow of the
/// service, scheduling stage tasks with weighted fair queueing across
/// tenants. Each tenant gets a core::StageScheduler view (schedulerFor)
/// that tags its submissions; dispatch picks the eligible tenant with
/// the smallest virtual time, so a tenant of weight 2 gets twice the
/// stage throughput of a weight-1 tenant under contention — and an idle
/// tenant's unused share is redistributed rather than wasted.
///
/// Per-tenant isolation knobs:
///  - weight: WFQ share under contention;
///  - maxInFlightStages: hard cap on a tenant's concurrently *running*
///    stages, so one tenant's wide HLS fan-out cannot occupy every
///    worker no matter its weight.
///
/// Stage queues are deliberately unbounded: the StageScheduler contract
/// forbids dropping tasks, and boundedness is enforced one level up, at
/// flow admission (FlowService) — a tenant can only queue stages for
/// flows it was admitted to run, so queue depth here is bounded by
/// (admitted flows) × (stages per flow) by construction.
///
/// Liveness: leadership in a SynthGate is only ever held by a *running*
/// task and released when that task finishes, so a task blocked waiting
/// on a gate always waits on a running (or already finished) task,
/// never on a queued one — no worker-starvation deadlock, even with one
/// worker.
class SharedStagePool {
public:
    explicit SharedStagePool(unsigned workers);
    ~SharedStagePool();

    SharedStagePool(const SharedStagePool&) = delete;
    SharedStagePool& operator=(const SharedStagePool&) = delete;

    /// Registers (or re-configures) a tenant. Unknown tenants that
    /// submit without configuration get weight 1 and an in-flight cap
    /// equal to the worker count.
    void configureTenant(const std::string& tenant, unsigned weight,
                         unsigned maxInFlightStages);

    /// A StageScheduler view that tags every submission with `tenant`.
    /// Valid for the pool's lifetime; flows must finish (execute()
    /// returned) before the pool is destroyed.
    [[nodiscard]] std::shared_ptr<core::StageScheduler>
    schedulerFor(const std::string& tenant);

    struct Stats {
        std::size_t tasksExecuted = 0;
        std::size_t maxQueueDepth = 0;  ///< high-water mark across tenants
    };
    [[nodiscard]] Stats stats() const;

private:
    struct Tenant {
        unsigned weight = 1;
        unsigned maxInFlight = 1;
        unsigned inFlight = 0;
        double virtualTime = 0.0;
        std::deque<std::function<void()>> queue;
    };

    void submit(const std::string& tenant, std::function<void()> task);
    void workerLoop();
    /// Name of the eligible tenant with the least virtual time, or ""
    /// (caller holds mutex_). Ties break lexicographically so dispatch
    /// is a deterministic function of the queue state.
    [[nodiscard]] std::string pickTenant() const;

    class TenantScheduler;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::string, Tenant> tenants_;
    double globalVirtualTime_ = 0.0;
    bool shutdown_ = false;
    std::size_t queuedTotal_ = 0;
    Stats stats_;
    std::vector<std::thread> workers_;
};

} // namespace socgen::svc
