#include "socgen/axi/stream.hpp"

#include "socgen/common/error.hpp"

#include <algorithm>

namespace socgen::axi {

StreamChannel::StreamChannel(std::string name, std::size_t capacity, unsigned width)
    : name_(std::move(name)), capacity_(capacity), width_(width) {
    if (capacity_ == 0) {
        throw Error("stream channel capacity must be positive: " + name_);
    }
}

bool StreamChannel::tryPush(StreamBeat beat) {
    if (full() || pushBlocked_) {
        ++pushStalls_;
        return false;
    }
    if (width_ < 64) {
        beat.data &= (1ULL << width_) - 1ULL;
    }
    fifo_.push_back(beat);
    ++pushed_;
    if (beat.last) {
        ++framesCompleted_;
        beatsSinceTlast_ = 0;
    } else {
        ++beatsSinceTlast_;
    }
    highWater_ = std::max(highWater_, fifo_.size());
    return true;
}

bool StreamChannel::tryPop(StreamBeat& beat) {
    if (fifo_.empty() || popBlocked_) {
        ++popStalls_;
        return false;
    }
    beat = fifo_.front();
    fifo_.pop_front();
    ++popped_;
    return true;
}

void StreamChannel::forcePush(StreamBeat beat) {
    if (width_ < 64) {
        beat.data &= (1ULL << width_) - 1ULL;
    }
    fifo_.push_back(beat);
    ++pushed_;
    if (beat.last) {
        ++framesCompleted_;
        beatsSinceTlast_ = 0;
    } else {
        ++beatsSinceTlast_;
    }
    highWater_ = std::max(highWater_, fifo_.size());
}

bool StreamChannel::dropFront() {
    if (fifo_.empty()) {
        return false;
    }
    fifo_.pop_front();
    return true;
}

const StreamBeat& StreamChannel::front() const {
    if (fifo_.empty()) {
        throw Error("front() on empty stream channel " + name_);
    }
    return fifo_.front();
}

void StreamChannel::reset() {
    fifo_.clear();
    pushed_ = popped_ = pushStalls_ = popStalls_ = 0;
    highWater_ = 0;
    beatsSinceTlast_ = framesCompleted_ = 0;
    pushBlocked_ = popBlocked_ = false;
}

} // namespace socgen::axi
