#include "socgen/axi/lite.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::axi {

void LiteBus::mapSlave(const std::string& name, AddressRange range, LiteSlave& slave) {
    if (range.size == 0) {
        throw Error("axi-lite: empty address range for " + name);
    }
    for (const auto& m : mappings_) {
        if (m.range.overlaps(range)) {
            throw Error(format("axi-lite: address range of %s overlaps %s", name.c_str(),
                               m.name.c_str()));
        }
    }
    mappings_.push_back(Mapping{name, range, &slave});
}

LiteBus::Mapping& LiteBus::resolve(std::uint64_t address) {
    for (auto& m : mappings_) {
        if (m.range.contains(address)) {
            return m;
        }
    }
    throw Error(format("axi-lite: access to unmapped address 0x%llx",
                       static_cast<unsigned long long>(address)));
}

std::uint32_t LiteBus::read(std::uint64_t address) {
    Mapping& m = resolve(address);
    busCycles_ += kAccessLatency;
    ++transactions_;
    return m.slave->readRegister(address - m.range.base);
}

void LiteBus::write(std::uint64_t address, std::uint32_t value) {
    Mapping& m = resolve(address);
    busCycles_ += kAccessLatency;
    ++transactions_;
    m.slave->writeRegister(address - m.range.base, value);
}

std::string LiteBus::slaveAt(std::uint64_t address) const {
    for (const auto& m : mappings_) {
        if (m.range.contains(address)) {
            return m.name;
        }
    }
    return "<unmapped>";
}

} // namespace socgen::axi
