#pragma once

#include <cstdint>
#include <deque>
#include <string>

namespace socgen::axi {

/// One AXI-Stream beat: TDATA plus TLAST framing.
struct StreamBeat {
    std::uint64_t data = 0;
    bool last = false;
};

/// Transaction-level model of an AXI4-Stream channel with a bounded FIFO
/// standing in for the skid/FIFO stages of a real interconnect. Producers
/// call tryPush (TVALID && TREADY), consumers tryPop. Capacity models the
/// ready/valid back-pressure that lets stream-connected cores overlap
/// computation and communication (paper Section II-B).
class StreamChannel {
public:
    explicit StreamChannel(std::string name, std::size_t capacity = 16,
                           unsigned width = 32);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] unsigned width() const { return width_; }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    [[nodiscard]] std::size_t size() const { return fifo_.size(); }
    [[nodiscard]] bool empty() const { return fifo_.empty(); }
    [[nodiscard]] bool full() const { return fifo_.size() >= capacity_; }

    /// TVALID asserted by producer: accepted only when not full.
    bool tryPush(StreamBeat beat);
    bool tryPush(std::uint64_t data, bool last = false) {
        return tryPush(StreamBeat{data, last});
    }

    /// TREADY asserted by consumer: succeeds only when data is waiting.
    bool tryPop(StreamBeat& beat);

    /// Front beat without consuming (TDATA visible while TVALID high).
    [[nodiscard]] const StreamBeat& front() const;

    // -- fault hooks ---------------------------------------------------------
    // Fault injection forces the interconnect's ready low: a blocked
    // direction refuses the handshake (and counts the stall) until
    // unblocked, modeling a wedged skid buffer or clock-gated stage.
    void setPushBlocked(bool blocked) { pushBlocked_ = blocked; }
    void setPopBlocked(bool blocked) { popBlocked_ = blocked; }
    [[nodiscard]] bool pushBlocked() const { return pushBlocked_; }
    [[nodiscard]] bool popBlocked() const { return popBlocked_; }

    /// Protocol-violating push that ignores capacity and blocking — used
    /// by tests to provoke the monitor, never by well-behaved masters.
    void forcePush(StreamBeat beat);

    /// Drops the front beat without counting it as popped (beat loss).
    /// Returns false on an empty channel.
    bool dropFront();

    // -- statistics ----------------------------------------------------------
    [[nodiscard]] std::uint64_t beatsPushed() const { return pushed_; }
    [[nodiscard]] std::uint64_t beatsPopped() const { return popped_; }
    [[nodiscard]] std::uint64_t pushStalls() const { return pushStalls_; }
    [[nodiscard]] std::uint64_t popStalls() const { return popStalls_; }
    [[nodiscard]] std::size_t highWater() const { return highWater_; }

    /// Beats pushed since the most recent TLAST (0 right after a frame
    /// boundary); used by monitors to bound frame length.
    [[nodiscard]] std::uint64_t beatsSinceLastTlast() const { return beatsSinceTlast_; }
    [[nodiscard]] std::uint64_t framesCompleted() const { return framesCompleted_; }

    void reset();

private:
    std::string name_;
    std::size_t capacity_;
    unsigned width_;
    std::deque<StreamBeat> fifo_;
    std::uint64_t pushed_ = 0;
    std::uint64_t popped_ = 0;
    std::uint64_t pushStalls_ = 0;
    std::uint64_t popStalls_ = 0;
    std::size_t highWater_ = 0;
    std::uint64_t beatsSinceTlast_ = 0;
    std::uint64_t framesCompleted_ = 0;
    bool pushBlocked_ = false;
    bool popBlocked_ = false;
};

} // namespace socgen::axi
