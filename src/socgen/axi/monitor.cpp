#include "socgen/axi/monitor.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>

namespace socgen::axi {

void StreamMonitor::sample() {
    ++samples_;
    occupancySum_ += channel_->size();
    maxObservedFrameBeats_ =
        std::max(maxObservedFrameBeats_, channel_->beatsSinceLastTlast());
}

void StreamMonitor::check() const {
    const auto& c = *channel_;
    if (c.beatsPopped() + c.size() != c.beatsPushed()) {
        throw SimulationError(format(
            "stream %s lost beats: pushed=%llu popped=%llu in-flight=%zu",
            c.name().c_str(), static_cast<unsigned long long>(c.beatsPushed()),
            static_cast<unsigned long long>(c.beatsPopped()), c.size()));
    }
    if (c.size() > c.capacity()) {
        throw SimulationError(format("stream %s exceeded capacity: %zu > %zu",
                                     c.name().c_str(), c.size(), c.capacity()));
    }
    if (c.highWater() > c.capacity()) {
        throw SimulationError(format("stream %s high-water above capacity",
                                     c.name().c_str()));
    }
    const std::uint64_t openFrame =
        std::max(maxObservedFrameBeats_, c.beatsSinceLastTlast());
    if (maxFrameBeats_ != 0 && openFrame > maxFrameBeats_) {
        throw SimulationError(format(
            "stream %s TLAST violation: %llu beats without end-of-frame (limit %llu)",
            c.name().c_str(), static_cast<unsigned long long>(openFrame),
            static_cast<unsigned long long>(maxFrameBeats_)));
    }
}

double StreamMonitor::averageOccupancy() const {
    return samples_ == 0 ? 0.0
                         : static_cast<double>(occupancySum_) /
                               static_cast<double>(samples_);
}

} // namespace socgen::axi
