#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace socgen::axi {

/// Address range on the AXI-Lite bus.
struct AddressRange {
    std::uint64_t base = 0;
    std::uint64_t size = 0;

    [[nodiscard]] bool contains(std::uint64_t addr) const {
        return addr >= base && addr < base + size;
    }
    [[nodiscard]] bool overlaps(const AddressRange& other) const {
        return base < other.base + other.size && other.base < base + size;
    }
};

/// A memory-mapped slave: register file semantics with per-access
/// callbacks (used by accelerator control registers).
class LiteSlave {
public:
    virtual ~LiteSlave() = default;
    [[nodiscard]] virtual std::uint32_t readRegister(std::uint64_t offset) = 0;
    virtual void writeRegister(std::uint64_t offset, std::uint32_t value) = 0;
};

/// Transaction-level AXI-Lite bus: single outstanding transaction,
/// fixed per-access latency (address + data phases). The GPP uses it to
/// program accelerators and the DMA engine (paper Section II-B: "well
/// suited for small chunks of data ... like sending commands or
/// parameter values to an accelerator").
class LiteBus {
public:
    /// Cycles charged per single-beat read/write (ARVALID..RVALID path
    /// through one interconnect level).
    static constexpr std::uint64_t kAccessLatency = 6;

    /// Maps a slave at [base, base+size); throws on overlap.
    void mapSlave(const std::string& name, AddressRange range, LiteSlave& slave);

    [[nodiscard]] std::uint32_t read(std::uint64_t address);
    void write(std::uint64_t address, std::uint32_t value);

    /// Total bus cycles consumed by transactions so far.
    [[nodiscard]] std::uint64_t busCycles() const { return busCycles_; }
    [[nodiscard]] std::uint64_t transactionCount() const { return transactions_; }

    /// Name of the slave mapped at `address` (diagnostics).
    [[nodiscard]] std::string slaveAt(std::uint64_t address) const;

private:
    struct Mapping {
        std::string name;
        AddressRange range;
        LiteSlave* slave;
    };

    [[nodiscard]] Mapping& resolve(std::uint64_t address);

    std::vector<Mapping> mappings_;
    std::uint64_t busCycles_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace socgen::axi
