#pragma once

#include "socgen/axi/stream.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::axi {

/// Protocol monitor for a StreamChannel: records per-cycle occupancy and
/// checks conservation invariants (pushed == popped + in-flight, no beat
/// loss/duplication). Tests attach one to every channel of a simulated
/// system; SystemSimulator samples it each cycle.
class StreamMonitor {
public:
    explicit StreamMonitor(const StreamChannel& channel) : channel_(&channel) {}

    /// Samples the channel (call once per simulated cycle).
    void sample();

    /// Throws SimulationError if an invariant is violated.
    void check() const;

    [[nodiscard]] double averageOccupancy() const;
    [[nodiscard]] std::uint64_t samples() const { return samples_; }
    [[nodiscard]] const StreamChannel& channel() const { return *channel_; }

private:
    const StreamChannel* channel_;
    std::uint64_t samples_ = 0;
    std::uint64_t occupancySum_ = 0;
};

} // namespace socgen::axi
