#pragma once

#include "socgen/axi/stream.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace socgen::axi {

/// Protocol monitor for a StreamChannel: records per-cycle occupancy and
/// checks conservation invariants (pushed == popped + in-flight, no beat
/// loss/duplication). Tests attach one to every channel of a simulated
/// system; SystemSimulator samples it each cycle.
class StreamMonitor {
public:
    explicit StreamMonitor(const StreamChannel& channel) : channel_(&channel) {}

    /// Samples the channel (call once per simulated cycle).
    void sample();

    /// Throws SimulationError if an invariant is violated.
    void check() const;

    /// Bounds frame length: check() fails if more than `beats` beats are
    /// ever pushed without a TLAST (a master that never closes a frame
    /// starves TLAST-gated consumers). 0 disables the check.
    void setMaxFrameBeats(std::uint64_t beats) { maxFrameBeats_ = beats; }

    [[nodiscard]] double averageOccupancy() const;
    [[nodiscard]] std::uint64_t samples() const { return samples_; }
    [[nodiscard]] const StreamChannel& channel() const { return *channel_; }

private:
    const StreamChannel* channel_;
    std::uint64_t samples_ = 0;
    std::uint64_t occupancySum_ = 0;
    std::uint64_t maxFrameBeats_ = 0;
    std::uint64_t maxObservedFrameBeats_ = 0;
};

} // namespace socgen::axi
