#pragma once

#include "socgen/core/event_bus.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/supervisor.hpp"
#include "socgen/sim/fault.hpp"

#include <any>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace socgen::core {

/// Passed to a stage's attempt callback. `attempt` is 1-based and counts
/// supervised attempts including the current one, so a body can record
/// "how many tries this took" without owning a counter.
struct StageContext {
    int attempt = 1;
};

/// What a finished stage reports back to the executor.
struct StageOutput {
    std::string digest;          ///< committed to the journal ("" = skip commit)
    double toolSeconds = 0.0;    ///< simulated tool time for the timeline
    std::string timelineLabel;   ///< phase name ("" = no timeline entry)
};

/// One node of the flow graph. Execution is split in two so supervision
/// stays safe under abandoned (timed-out) attempts:
///
///  - `attempt` runs under the supervisor's retry/deadline policy and may
///    execute concurrently with an abandoned sibling of itself, so it
///    must not mutate shared state — compute and return.
///  - `commit` runs exactly once, on the winning attempt's value, and is
///    where results land in shared structures (the executor establishes
///    a happens-before edge to every dependent stage).
///
/// `absorbFailure`, when set, may convert a post-retry failure into a
/// completed-without-commit stage (returning a non-empty journal note);
/// returning "" propagates the error. `postCommit` runs after the commit
/// record is durably appended — the hook point for artifact-corruption
/// fault injection.
struct Stage {
    std::string name;
    std::vector<std::string> deps;
    std::function<std::any(const StageContext&)> attempt;
    std::function<StageOutput(std::any&&, const StageRun&)> commit;
    std::function<std::string(const std::exception&, const StageRun&)> absorbFailure{};
    std::function<void()> postCommit{};
    /// Count a journal-verified re-execution in resumedStages (the HLS
    /// stages opt out: their resume is tracked per node instead).
    bool trackResume = true;
};

/// Declarative DAG of flow stages. Insertion order is significant: the
/// topological order is Kahn's algorithm with an insertion-ordered ready
/// set, so it is total, deterministic, and — for a linear chain — equal
/// to insertion order. Validation (duplicate names, unknown deps,
/// cycles) throws StageGraphError.
class StageGraph {
public:
    Stage& add(Stage stage);

    [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }
    [[nodiscard]] bool has(const std::string& name) const;

    /// Indices into stages() in deterministic topological order.
    [[nodiscard]] std::vector<std::size_t> topologicalOrder() const;

    /// Stage names in topological order (convenience for tables).
    [[nodiscard]] std::vector<std::string> topologicalNames() const;

private:
    std::vector<Stage> stages_;
    std::map<std::string, std::size_t> index_;
};

/// Flow-level fault delivery, extracted from Flow: one-shot FlowCrash /
/// StageHang / ArtifactCorrupt events from a sim::FaultPlan, consumed by
/// the executor (crash, hang) and by stage postCommit hooks (corrupt).
/// Thread-safe; every event fires at most once.
class StageFaultHooks {
public:
    StageFaultHooks() = default;
    explicit StageFaultHooks(const sim::FaultPlan& plan);

    /// Throws FlowCrashError if a FlowCrash event is armed for this
    /// (stage, phase) boundary (0 = at begin, 1 = pre-commit).
    void maybeCrash(const std::string& stage, std::uint64_t phase);

    /// Sleeps if a StageHang event is armed for `stage`.
    void maybeHang(const std::string& stage);

    /// True if an ArtifactCorrupt event was armed for `target` (the
    /// caller applies the corruption; the event is consumed).
    [[nodiscard]] bool consumeCorrupt(const std::string& target);

    [[nodiscard]] bool empty() const;

private:
    mutable std::mutex mutex_;
    std::vector<sim::FaultEvent> pending_;
};

/// Sink for ready-to-run stage tasks, letting many executors — one per
/// concurrently running flow — share a single worker pool (the
/// flow-service deployment). submit() must eventually run the task
/// exactly once on some thread; the submitting executor blocks in
/// execute() until every task it submitted has finished, so a scheduler
/// must drain on shutdown, never drop.
class StageScheduler {
public:
    virtual ~StageScheduler() = default;
    virtual void submit(std::function<void()> task) = 0;
};

struct ExecutorConfig {
    unsigned jobs = 1;              ///< worker threads over the whole graph
    StagePolicy stagePolicy;        ///< retry/backoff/deadline per stage
    FlowJournal* journal = nullptr; ///< nullable: journaling off
    /// External scheduler: when set, ready stages are submitted here
    /// instead of a private worker pool and `jobs` is ignored — the
    /// scheduler owns concurrency (and fairness across flows).
    StageScheduler* scheduler = nullptr;
    /// Digests committed by a previous run (journal resume): re-executed
    /// stages are verified against these at commit-flush time.
    std::map<std::string, std::string> digestsAtOpen;
};

/// Deterministic aggregate counters of one execution.
struct ExecutorStats {
    std::size_t stageRetries = 0;
    std::size_t stageTimeouts = 0;
    std::size_t resumedStages = 0;
    std::size_t digestMismatches = 0;
};

/// Result record of one stage's execution.
struct StageExecution {
    StageOutput output;
    double hostMs = 0.0;
    StageRun meta;
    bool ran = false;       ///< stage reached execution (false = flow aborted first)
    bool absorbed = false;  ///< failure absorbed; `absorbedNote` journaled
    std::string absorbedNote;
};

/// Generic DAG executor owning — once, not per stage — journaling,
/// supervision, fault hooks, event publication and the worker pool.
///
/// Execution contract:
///  - `begin` journal records for every stage land up front, in
///    topological order (write-ahead), before any stage runs;
///  - any stage whose dependencies completed may run; with jobs=1 the
///    execution order is exactly the topological order;
///  - commit records are flushed in topological order over the longest
///    completed prefix, so the final journal is byte-identical for any
///    `jobs` setting (a crash can only lose trailing commits, which the
///    next run re-derives from the artifact store);
///  - the first error (lowest topological rank) aborts scheduling,
///    already-running stages finish, and the error is rethrown.
class StageGraphExecutor {
public:
    StageGraphExecutor(ExecutorConfig config, FlowEventBus* bus,
                       StageFaultHooks* hooks);

    /// Runs the graph; returns one StageExecution per graph stage
    /// (indexed like graph.stages()). Throws the first stage error.
    std::vector<StageExecution> execute(const StageGraph& graph);

    [[nodiscard]] const ExecutorStats& stats() const { return stats_; }

private:
    struct RunState;

    void runStage(RunState& state, std::size_t index, unsigned worker);
    void flushCommitted(RunState& state);
    /// Submits every unscheduled ready stage to the external scheduler
    /// (caller holds state.mutex; external-pool mode only).
    void submitReady(RunState& state);

    ExecutorConfig config_;
    FlowEventBus* bus_;
    StageFaultHooks* hooks_;
    ExecutorStats stats_;
};

} // namespace socgen::core
