#include "socgen/core/event_bus.hpp"

#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <algorithm>

namespace socgen::core {

const char* toString(FlowEventKind kind) {
    switch (kind) {
    case FlowEventKind::FlowBegin: return "flow-begin";
    case FlowEventKind::FlowEnd: return "flow-end";
    case FlowEventKind::StageBegin: return "stage-begin";
    case FlowEventKind::StageRetry: return "stage-retry";
    case FlowEventKind::StageTimeout: return "stage-timeout";
    case FlowEventKind::StageCommit: return "stage-commit";
    case FlowEventKind::StageDegraded: return "stage-degraded";
    case FlowEventKind::StageFailed: return "stage-failed";
    case FlowEventKind::CacheHit: return "cache-hit";
    case FlowEventKind::StoreHit: return "store-hit";
    case FlowEventKind::ArtifactRejected: return "artifact-rejected";
    case FlowEventKind::DigestMismatch: return "digest-mismatch";
    case FlowEventKind::ArtifactQuarantined: return "artifact-quarantined";
    case FlowEventKind::RemoteSynthesis: return "remote-synthesis";
    }
    return "unknown";
}

std::string FlowEvent::render() const {
    std::string out = format("%s %s", toString(kind), stage.c_str());
    if (!detail.empty()) {
        out += ": " + detail;
    }
    if (attempt > 0) {
        out += format(" (attempt %u)", attempt);
    }
    return out;
}

FlowEventBus::FlowEventBus() : epoch_(std::chrono::steady_clock::now()) {}

void FlowEventBus::subscribe(std::shared_ptr<FlowEventSubscriber> subscriber) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (subscriber != nullptr) {
        subscribers_.push_back(std::move(subscriber));
    }
}

void FlowEventBus::publish(FlowEvent event) {
    const std::lock_guard<std::mutex> lock(mutex_);
    event.seq = nextSeq_++;
    event.wallMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
    for (const auto& subscriber : subscribers_) {
        subscriber->onEvent(event);
    }
}

std::uint64_t FlowEventBus::published() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return nextSeq_;
}

void LogSubscriber::onEvent(const FlowEvent& event) {
    switch (event.kind) {
    case FlowEventKind::StageRetry:
    case FlowEventKind::StageTimeout:
    case FlowEventKind::StageDegraded:
    case FlowEventKind::StageFailed:
    case FlowEventKind::DigestMismatch:
    case FlowEventKind::ArtifactRejected:
    case FlowEventKind::ArtifactQuarantined:
        Logger::global().warn("flow: " + event.render());
        break;
    case FlowEventKind::CacheHit:
    case FlowEventKind::StoreHit:
    case FlowEventKind::RemoteSynthesis:
        Logger::global().info("flow: " + event.render());
        break;
    default:
        Logger::global().debug("flow: " + event.render());
        break;
    }
}

void StageTableSubscriber::onEvent(const FlowEvent& event) {
    if (event.stage.empty()) {
        return;
    }
    FlowDiagnostics::StageOutcome& row = rows_[event.stage];
    row.stage = event.stage;
    switch (event.kind) {
    case FlowEventKind::StageBegin:
        row.source = "ran";
        break;
    case FlowEventKind::StageTimeout:
        ++row.timeouts;
        break;
    case FlowEventKind::StageCommit:
        row.attempts = event.attempt;
        row.toolSeconds = event.toolSeconds;
        row.hostMs = event.hostMs;
        row.committed = true;
        break;
    case FlowEventKind::StageDegraded:
        row.attempts = event.attempt;
        row.hostMs = event.hostMs;
        row.source = "degraded";
        break;
    case FlowEventKind::StageFailed:
        row.attempts = event.attempt;
        row.hostMs = event.hostMs;
        row.source = "failed";
        break;
    case FlowEventKind::CacheHit:
        row.source = "cache hit";
        ++cacheHits_;
        break;
    case FlowEventKind::StoreHit:
        row.source = "store hit";
        ++storeHits_;
        break;
    case FlowEventKind::ArtifactRejected:
        ++rejections_;
        break;
    case FlowEventKind::ArtifactQuarantined:
        ++quarantines_;
        break;
    case FlowEventKind::RemoteSynthesis:
        ++remoteSyntheses_;
        break;
    default:
        break;
    }
}

std::vector<FlowDiagnostics::StageOutcome> StageTableSubscriber::orderedRows(
    const std::vector<std::string>& stageOrder) const {
    std::vector<FlowDiagnostics::StageOutcome> ordered;
    ordered.reserve(stageOrder.size());
    for (const std::string& stage : stageOrder) {
        const auto it = rows_.find(stage);
        if (it != rows_.end()) {
            ordered.push_back(it->second);
        }
    }
    return ordered;
}

void ChromeTraceSubscriber::onEvent(const FlowEvent& event) {
    switch (event.kind) {
    case FlowEventKind::StageBegin:
        openBegins_[event.stage] = event.wallMs;
        openWorkers_[event.stage] = event.worker;
        break;
    case FlowEventKind::StageCommit:
    case FlowEventKind::StageDegraded:
    case FlowEventKind::StageFailed: {
        const auto it = openBegins_.find(event.stage);
        if (it == openBegins_.end()) {
            break;
        }
        Span span;
        span.name = event.stage;
        span.worker = openWorkers_[event.stage];
        span.beginMs = it->second;
        span.endMs = event.wallMs;
        span.outcome = event.kind == FlowEventKind::StageCommit     ? "commit"
                       : event.kind == FlowEventKind::StageDegraded ? "degraded"
                                                                    : "failed";
        spans_.push_back(std::move(span));
        openBegins_.erase(it);
        break;
    }
    default:
        break;
    }
}

std::string ChromeTraceSubscriber::renderJson() const {
    // Stable ordering: spans sorted by begin time, then name, so a serial
    // run's trace is reproducible.
    std::vector<Span> sorted = spans_;
    std::sort(sorted.begin(), sorted.end(), [](const Span& a, const Span& b) {
        if (a.beginMs != b.beginMs) {
            return a.beginMs < b.beginMs;
        }
        return a.name < b.name;
    });
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const auto& span : sorted) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += format("{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"ts\":%.1f,\"dur\":%.1f,\"args\":{\"outcome\":\"%s\"}}",
                      span.name.c_str(), span.worker, span.beginMs * 1000.0,
                      (span.endMs - span.beginMs) * 1000.0, span.outcome.c_str());
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

void ChromeTraceSubscriber::write(const std::string& path) const {
    writeFileAtomic(path, renderJson());
}

} // namespace socgen::core
