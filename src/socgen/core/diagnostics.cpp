#include "socgen/core/diagnostics.hpp"

#include "socgen/common/strings.hpp"

namespace socgen::core {

bool FlowDiagnostics::anyDegraded() const {
    for (const auto& n : nodes) {
        if (n.degraded) {
            return true;
        }
    }
    return false;
}

std::vector<std::string> FlowDiagnostics::degradedNodes() const {
    std::vector<std::string> names;
    for (const auto& n : nodes) {
        if (n.degraded) {
            names.push_back(n.node);
        }
    }
    return names;
}

std::size_t FlowDiagnostics::engineRuns() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (!n.degraded && n.attempts > 0) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::cacheHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.cacheHit) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::storeHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.storeHit) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::inFlightDedupes() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.dedupedInFlight) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::processEngineRuns() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.processes.empty()) {
            count += (!n.degraded && n.attempts > 0) ? 1 : 0;
            continue;
        }
        for (const auto& p : n.processes) {
            if (!p.degraded && p.attempts > 0) {
                ++count;
            }
        }
    }
    return count;
}

std::size_t FlowDiagnostics::processCacheHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.processes.empty()) {
            count += n.cacheHit ? 1 : 0;
            continue;
        }
        for (const auto& p : n.processes) {
            if (p.cacheHit) {
                ++count;
            }
        }
    }
    return count;
}

std::size_t FlowDiagnostics::processStoreHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.processes.empty()) {
            count += n.storeHit ? 1 : 0;
            continue;
        }
        for (const auto& p : n.processes) {
            if (p.storeHit) {
                ++count;
            }
        }
    }
    return count;
}

std::string FlowDiagnostics::render(bool withHostTimes) const {
    std::string out = "HLS diagnostics:";
    for (const auto& n : nodes) {
        if (n.degraded) {
            out += format("\n  %s: DEGRADED to software fallback after %u attempt(s) — %s",
                          n.node.c_str(), n.attempts, n.error.c_str());
        } else {
            const char* source = n.cacheHit    ? "cache hit"
                                 : n.storeHit  ? (n.resumedFromJournal ? "store hit (journaled)"
                                                                       : "store hit")
                                               : "synthesized";
            out += format("\n  %s: ok (%.1f tool-s, %s, %u attempt(s))", n.node.c_str(),
                          n.toolSeconds, source, n.attempts);
        }
        for (const auto& p : n.processes) {
            if (p.degraded) {
                out += format("\n    %s/%s: DEGRADED after %u attempt(s) — %s",
                              n.node.c_str(), p.process.c_str(), p.attempts,
                              p.error.c_str());
                continue;
            }
            const char* psource = p.cacheHit   ? "cache hit"
                                  : p.storeHit ? (p.resumedFromJournal
                                                      ? "store hit (journaled)"
                                                      : "store hit")
                                               : "synthesized";
            out += format("\n    %s/%s: ok (%.1f tool-s, %s, %u attempt(s))",
                          n.node.c_str(), p.process.c_str(), p.toolSeconds, psource,
                          p.attempts);
        }
    }
    if (!stages.empty()) {
        out += "\nstage timeline:";
        out += format("\n  %-16s %8s %8s %10s %10s  %s", "stage", "attempts", "timeouts",
                      "tool-s", "host-ms", "source");
        for (const auto& s : stages) {
            const std::string hostMs =
                withHostTimes ? format("%10.3f", s.hostMs) : format("%10s", "-");
            out += format("\n  %-16s %8u %8u %10.1f %s  %s", s.stage.c_str(), s.attempts,
                          s.timeouts, s.toolSeconds, hostMs.c_str(), s.source.c_str());
        }
    }
    if (stageRetries > 0 || stageTimeouts > 0 || resumedStages > 0 ||
        digestMismatches > 0 || corruptArtifacts > 0) {
        out += format("\n  flow: %zu stage retr%s, %zu timeout(s), %zu resumed stage(s), "
                      "%zu digest mismatch(es), %zu corrupt artifact(s)",
                      stageRetries, stageRetries == 1 ? "y" : "ies", stageTimeouts,
                      resumedStages, digestMismatches, corruptArtifacts);
    }
    return out;
}

} // namespace socgen::core
