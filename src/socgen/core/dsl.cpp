#include "socgen/core/dsl.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::core {

SocProject::SocProject(std::string name, const hls::KernelLibrary& kernels,
                       FlowOptions options, std::shared_ptr<HlsCache> cache)
    : name_(std::move(name)), options_(options),
      cache_(cache != nullptr ? std::move(cache) : std::make_shared<HlsCache>()),
      flow_(std::move(options), kernels, cache_) {}

void SocProject::requireSection(Section expected, const char* keyword) const {
    if (section_ != expected) {
        throw DslError(format("project %s: keyword '%s' used out of order", name_.c_str(),
                              keyword));
    }
}

SocProject& SocProject::tg_nodes() {
    requireSection(Section::Start, "tg nodes");
    section_ = Section::Nodes;
    Logger::global().info("dsl step 1: nodes — creating new project " + name_);
    return *this;
}

SocProject::NodeScope SocProject::tg_node(std::string name) {
    requireSection(Section::Nodes, "tg node");
    Logger::global().info(format(
        "dsl step 2: node %s — new Node instance, creating Vivado HLS project",
        name.c_str()));
    return NodeScope(*this, std::move(name));
}

SocProject& SocProject::tg_end_nodes() {
    requireSection(Section::Nodes, "tg end_nodes");
    if (graph_.nodes().empty()) {
        throw DslError("tg end_nodes: the nodes list is empty");
    }
    section_ = Section::BetweenSections;
    return *this;
}

SocProject& SocProject::tg_edges() {
    requireSection(Section::BetweenSections, "tg edges");
    section_ = Section::Edges;
    return *this;
}

SocProject& SocProject::tg_connect(const std::string& nodeName) {
    requireSection(Section::Edges, "tg connect");
    Logger::global().info(format(
        "dsl step 5: connect %s — AXI-Lite attachment to the system bus",
        nodeName.c_str()));
    graph_.addConnect(TgConnect{nodeName});
    return *this;
}

SocProject::LinkScope SocProject::tg_link(TgEndpoint from) {
    requireSection(Section::Edges, "tg link");
    Logger::global().info("dsl step 6: link — new Link instance from " + from.str());
    return LinkScope(*this, std::move(from));
}

SocProject& SocProject::tg_end_edges() {
    requireSection(Section::Edges, "tg end_edges");
    Logger::global().info(
        "dsl step 8: end_edges — executing integration tcl, synthesis up to bitstream, "
        "then API generation");
    section_ = Section::Done;
    result_ = flow_.run(name_, graph_);
    return *this;
}

const FlowResult& SocProject::result() const {
    if (!result_) {
        throw DslError(format("project %s: result() before tg_end_edges", name_.c_str()));
    }
    return *result_;
}

void SocProject::finishNode(TgNode node) {
    Logger::global().info(format("dsl step 4: end — invoking HLS synthesis of %s",
                                 node.name.c_str()));
    // Executable-keyword semantics: run HLS now; the result lands in the
    // shared cache so tg_end_edges' flow run reuses it.
    (void)flow_.synthesizeNode(node);
    ++hlsRuns_;
    graph_.addNode(std::move(node));
}

void SocProject::finishLink(TgLink link) {
    graph_.addLink(std::move(link));
}

// ---------------------------------------------------------------------------
// NodeScope

SocProject::NodeScope::NodeScope(SocProject& project, std::string name)
    : project_(project) {
    node_.name = std::move(name);
}

SocProject::NodeScope& SocProject::NodeScope::i(std::string portName) {
    Logger::global().info(format(
        "dsl step 3: interface i %s — AXI-Lite directive added for %s", portName.c_str(),
        node_.name.c_str()));
    node_.ports.push_back(TgPort{std::move(portName), hls::InterfaceProtocol::AxiLite});
    return *this;
}

SocProject::NodeScope& SocProject::NodeScope::is(std::string portName) {
    Logger::global().info(format(
        "dsl step 3: interface is %s — AXI-Stream directive added for %s",
        portName.c_str(), node_.name.c_str()));
    node_.ports.push_back(TgPort{std::move(portName), hls::InterfaceProtocol::AxiStream});
    return *this;
}

SocProject& SocProject::NodeScope::end() {
    if (ended_) {
        throw DslError("tg node ... end: end called twice");
    }
    if (node_.ports.empty()) {
        throw DslError(format("tg node %s: at least one interface (i/is) is required",
                              node_.name.c_str()));
    }
    ended_ = true;
    project_.finishNode(std::move(node_));
    return project_;
}

// ---------------------------------------------------------------------------
// LinkScope

SocProject::LinkScope::LinkScope(SocProject& project, TgEndpoint from) : project_(project) {
    link_.from = std::move(from);
}

SocProject::LinkScope& SocProject::LinkScope::to(TgEndpoint destination) {
    Logger::global().info(format(
        "dsl step 7: to %s — tcl for the AXI-Stream connection (or DMA core)",
        destination.str().c_str()));
    if (hasTo_) {
        throw DslError("tg link: to() called twice");
    }
    link_.to = std::move(destination);
    hasTo_ = true;
    return *this;
}

SocProject& SocProject::LinkScope::end() {
    if (!hasTo_) {
        throw DslError("tg link ... end: missing to()");
    }
    project_.finishLink(std::move(link_));
    return project_;
}

} // namespace socgen::core
