#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace socgen::core {

/// Per-run outcome record of one flow execution, carried by FlowResult so
/// callers can tell a clean all-hardware build from a degraded one and a
/// cold build from a resumed one. Node outcomes describe the per-kernel
/// HLS phase; stage outcomes describe every stage of the flow graph (one
/// row per executed stage, in deterministic topological order), sourced
/// from the FlowEventBus rather than scattered counters.
struct FlowDiagnostics {
    /// Per-process outcome of a multi-process network node: each process
    /// is synthesized (and cached) under its own artifact key, so each
    /// gets its own attempt/hit record. Trivial one-process networks keep
    /// the legacy shape — the node-level fields carry the story and
    /// `processes` stays empty.
    struct ProcessOutcome {
        std::string process;       ///< process name within the node
        bool degraded = false;
        std::string error;
        double toolSeconds = 0.0;
        unsigned attempts = 0;
        bool cacheHit = false;
        bool storeHit = false;
        bool resumedFromJournal = false;
        bool dedupedInFlight = false;
        bool remoteWorker = false;
        std::string artifactKey;
    };

    struct NodeOutcome {
        std::string node;
        bool degraded = false;  ///< HLS failed; node needs software fallback
        std::string error;      ///< failure text when degraded
        double toolSeconds = 0.0;
        unsigned attempts = 0;     ///< HLS engine attempts this run (0 = reused)
        bool cacheHit = false;     ///< served from the in-memory HlsCache
        bool storeHit = false;     ///< served from the persistent ArtifactStore
        bool resumedFromJournal = false;  ///< store hit confirmed by a prior
                                          ///< run's journal commit record
        bool dedupedInFlight = false;  ///< waited on another flow synthesizing
                                       ///< the same key (SynthGate), then reused
        bool remoteWorker = false;  ///< synthesized by an out-of-process worker
        std::uint64_t leaseEpoch = 0;  ///< lease epoch of the remote dispatch
        std::string artifactKey;   ///< content key (empty if key not derived)
        /// Per-process records for a multi-process network node; empty
        /// for a trivial (single-kernel) node. Node-level hit flags are
        /// the conjunction over processes, attempts the sum.
        std::vector<ProcessOutcome> processes;
    };

    /// One row of the per-stage wall-clock table. Every field except
    /// `hostMs` is deterministic: two runs of the same flow (at any
    /// `jobs` setting) agree on everything but the measured wall time.
    struct StageOutcome {
        std::string stage;         ///< stage name ("scala", "hls:GAUSS", ...)
        unsigned attempts = 0;     ///< supervised attempts (1 = clean first try)
        unsigned timeouts = 0;     ///< attempts abandoned at the deadline
        double toolSeconds = 0.0;  ///< simulated tool time charged
        double hostMs = 0.0;       ///< measured wall time (non-deterministic)
        std::string source;        ///< "ran", "cache hit", "store hit", "degraded"
        bool committed = false;    ///< reached a journal commit record
    };

    std::vector<NodeOutcome> nodes;
    std::vector<StageOutcome> stages;  ///< per-stage table, topological order

    std::size_t stageRetries = 0;      ///< extra attempts across all stages
    std::size_t stageTimeouts = 0;     ///< deadline expiries across all stages
    std::size_t resumedStages = 0;     ///< non-HLS stages re-verified against a
                                       ///< prior run's journal commit
    std::size_t digestMismatches = 0;  ///< journal digest disagreements (should
                                       ///< stay 0 for deterministic flows)
    std::size_t corruptArtifacts = 0;  ///< store objects rejected by validation

    [[nodiscard]] bool anyDegraded() const;
    [[nodiscard]] std::vector<std::string> degradedNodes() const;
    /// Number of nodes actually synthesized by the HLS engine this run.
    [[nodiscard]] std::size_t engineRuns() const;
    [[nodiscard]] std::size_t cacheHits() const;
    [[nodiscard]] std::size_t storeHits() const;
    /// Nodes that reused a result after waiting on another flow's
    /// in-flight synthesis of the same key.
    [[nodiscard]] std::size_t inFlightDedupes() const;

    /// Process-granular counters. A trivial node (no per-process records)
    /// counts as one process so the totals stay comparable whether a node
    /// is a single kernel or a network.
    [[nodiscard]] std::size_t processEngineRuns() const;
    [[nodiscard]] std::size_t processCacheHits() const;
    [[nodiscard]] std::size_t processStoreHits() const;

    /// Renders the per-node lines, the per-stage table and the flow
    /// summary. With `withHostTimes` false (the default) the output is
    /// byte-identical across runs and `jobs` settings — the wall-clock
    /// column prints "-"; pass true for the measured milliseconds.
    [[nodiscard]] std::string render(bool withHostTimes = false) const;
};

} // namespace socgen::core
