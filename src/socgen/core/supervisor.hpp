#pragma once

#include "socgen/common/error.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace socgen::core {

/// Retry/deadline policy applied by StageSupervisor to every flow stage.
/// Defaults are tuned for the simulated tool models (millisecond-scale
/// backoff); real-tool deployments would scale these up.
struct StagePolicy {
    int maxAttempts = 3;           ///< total attempts per stage (>= 1)
    double backoffBaseMs = 1.0;    ///< sleep before attempt 2
    double backoffFactor = 2.0;    ///< exponential growth per retry
    double jitterFraction = 0.25;  ///< +/- fraction applied to each backoff
    double deadlineMs = 0.0;       ///< per-attempt deadline; 0 disables
    /// Hard cap on the total wall-clock one supervised stage may spend
    /// across all attempts and backoffs; once exceeded, the next failure
    /// propagates even if the attempt budget is not used up. 0 disables.
    /// This bounds the worst case under pathological retry storms: a
    /// stage can never block its flow longer than roughly this cap plus
    /// one attempt's deadline.
    double maxRetryWallClockMs = 0.0;
    /// Jitter PRNG seed. Deterministic per (seed, stage, attempt) — and
    /// deliberately part of the policy so independent tenants of a shared
    /// service can be given different seeds: with one shared seed, two
    /// flows retrying the same stage name would back off by identical
    /// amounts and collide again in lockstep (a thundering herd).
    std::uint64_t seed = 0x50c9e11;
};

/// Outcome metadata of one supervised stage execution.
struct StageRun {
    int attempts = 0;      ///< attempts consumed (1 = first try succeeded)
    int timeouts = 0;      ///< attempts that hit the deadline
    std::vector<std::string> transientErrors;  ///< messages of absorbed failures
};

/// Wraps flow stages with bounded retry (exponential backoff + jitter,
/// deterministic per seed/stage/attempt) and an optional per-attempt
/// deadline. Transient failures — HlsError (a flaky tool run),
/// ArtifactError (store corruption), StageTimeoutError (a hung attempt)
/// — are retried up to the policy's attempt budget; everything else
/// (DslError, FlowCrashError, internal errors) propagates immediately
/// because retrying a broken input or a simulated kill is meaningless.
///
/// Deadline mechanics: the attempt runs on a worker thread; if it misses
/// the deadline the supervisor abandons it (recording the thread for a
/// join in the destructor), throws StageTimeoutError into the retry
/// loop, and the retry starts fresh. Abandoned attempts write only to
/// their own result slot, so a late finisher cannot corrupt the
/// winning attempt's output.
class StageSupervisor {
public:
    explicit StageSupervisor(StagePolicy policy = {}) : policy_(policy) {}

    StageSupervisor(const StageSupervisor&) = delete;
    StageSupervisor& operator=(const StageSupervisor&) = delete;

    ~StageSupervisor() {
        // Abandoned (timed-out) attempts must finish before the stage
        // state they captured dies with the flow.
        for (auto& thread : stranded_) {
            if (thread.joinable()) {
                thread.join();
            }
        }
    }

    /// True if `error` is worth retrying.
    [[nodiscard]] static bool isTransient(const std::exception& error) {
        return dynamic_cast<const HlsError*>(&error) != nullptr ||
               dynamic_cast<const ArtifactError*>(&error) != nullptr ||
               dynamic_cast<const StageTimeoutError*>(&error) != nullptr;
    }

    /// Runs `fn` under the policy and returns its result. `runOut`, when
    /// non-null, receives attempt/timeout counts for diagnostics.
    ///
    /// Lifetime: `fn` is copied into shared ownership so an abandoned
    /// (timed-out) attempt can never outlive the closure object it runs.
    /// Anything `fn` captures BY REFERENCE must still outlive this
    /// supervisor — declare the supervisor after such locals so its
    /// destructor joins stranded attempts before they dangle.
    template <typename Fn>
    auto run(const std::string& stage, Fn&& fn, StageRun* runOut = nullptr)
        -> std::invoke_result_t<Fn&> {
        using T = std::invoke_result_t<Fn&>;
        auto owned = std::make_shared<std::decay_t<Fn>>(std::forward<Fn>(fn));
        StageRun local;
        StageRun& meta = runOut != nullptr ? *runOut : local;
        const int maxAttempts = policy_.maxAttempts < 1 ? 1 : policy_.maxAttempts;
        const auto start = std::chrono::steady_clock::now();
        for (int attempt = 1;; ++attempt) {
            meta.attempts = attempt;
            try {
                if constexpr (std::is_void_v<T>) {
                    attemptOnce<int>(stage, [owned] {
                        (*owned)();
                        return 0;
                    });
                    return;
                } else {
                    return attemptOnce<T>(stage, [owned] { return (*owned)(); });
                }
            } catch (const StageTimeoutError& e) {
                ++meta.timeouts;
                if (attempt >= maxAttempts || retryBudgetExhausted(start)) {
                    throw;
                }
                meta.transientErrors.push_back(e.what());
            } catch (const std::exception& e) {
                if (attempt >= maxAttempts || !isTransient(e) ||
                    retryBudgetExhausted(start)) {
                    throw;
                }
                meta.transientErrors.push_back(e.what());
            }
            sleepBackoff(stage, attempt);
        }
    }

    [[nodiscard]] const StagePolicy& policy() const { return policy_; }

    /// The backoff the supervisor sleeps after `attempt` fails: base ×
    /// factor^(attempt-1), scaled by a deterministic jitter in
    /// [1-jitterFraction, 1+jitterFraction) derived from (seed, stage,
    /// attempt). Exposed so tests can assert determinism and the
    /// seed/stage decorrelation that breaks retry thundering herds.
    [[nodiscard]] static double backoffDelayMs(const StagePolicy& policy,
                                               const std::string& stage, int attempt);

private:
    template <typename T, typename Call>
    T attemptOnce(const std::string& stage, Call call) {
        if (policy_.deadlineMs <= 0.0) {
            return call();
        }
        struct Shared {
            std::mutex mutex;
            std::condition_variable cv;
            bool done = false;
            std::optional<T> value;
            std::exception_ptr error;
        };
        auto shared = std::make_shared<Shared>();
        std::thread worker([shared, call] {
            std::optional<T> value;
            std::exception_ptr error;
            try {
                value.emplace(call());
            } catch (...) {
                error = std::current_exception();
            }
            const std::lock_guard<std::mutex> lock(shared->mutex);
            shared->value = std::move(value);
            shared->error = error;
            shared->done = true;
            shared->cv.notify_all();
        });
        std::unique_lock<std::mutex> lock(shared->mutex);
        const bool finished = shared->cv.wait_for(
            lock, std::chrono::duration<double, std::milli>(policy_.deadlineMs),
            [&] { return shared->done; });
        if (!finished) {
            lock.unlock();
            {
                const std::lock_guard<std::mutex> strandedLock(strandedMutex_);
                stranded_.push_back(std::move(worker));
            }
            throw StageTimeoutError(
                stage + " exceeded its deadline; abandoning the attempt");
        }
        lock.unlock();
        worker.join();
        if (shared->error) {
            std::rethrow_exception(shared->error);
        }
        return std::move(*shared->value);
    }

    void sleepBackoff(const std::string& stage, int attempt);

    /// True once the cumulative wall-clock since `start` exceeds the
    /// policy's total retry budget (false when the cap is disabled).
    [[nodiscard]] bool retryBudgetExhausted(
        std::chrono::steady_clock::time_point start) const {
        if (policy_.maxRetryWallClockMs <= 0.0) {
            return false;
        }
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() >= policy_.maxRetryWallClockMs;
    }

    StagePolicy policy_;
    std::mutex strandedMutex_;
    std::vector<std::thread> stranded_;
};

} // namespace socgen::core
