#include "socgen/core/flow.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/report.hpp"
#include "socgen/soc/tcl.hpp"
#include "socgen/sw/devicetree.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <set>
#include <thread>

namespace socgen::core {

const hls::HlsResult* HlsCache::find(const std::string& kernelName) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = results_.find(kernelName);
    return it == results_.end() ? nullptr : &it->second;
}

void HlsCache::store(const std::string& kernelName, hls::HlsResult result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    results_.emplace(kernelName, std::move(result));
}

std::size_t HlsCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

bool FlowDiagnostics::anyDegraded() const {
    for (const auto& n : nodes) {
        if (n.degraded) {
            return true;
        }
    }
    return false;
}

std::vector<std::string> FlowDiagnostics::degradedNodes() const {
    std::vector<std::string> names;
    for (const auto& n : nodes) {
        if (n.degraded) {
            names.push_back(n.node);
        }
    }
    return names;
}

std::string FlowDiagnostics::render() const {
    std::string out = "HLS diagnostics:";
    for (const auto& n : nodes) {
        if (n.degraded) {
            out += format("\n  %s: DEGRADED to software fallback — %s", n.node.c_str(),
                          n.error.c_str());
        } else {
            out += format("\n  %s: ok (%.1f tool-s)", n.node.c_str(), n.toolSeconds);
        }
    }
    return out;
}

Flow::Flow(FlowOptions options, const hls::KernelLibrary& kernels,
           std::shared_ptr<HlsCache> cache)
    : options_(std::move(options)), kernels_(kernels), cache_(std::move(cache)) {}

hls::Directives Flow::directivesFor(const TgNode& node) const {
    hls::Directives d = options_.defaultDirectives;
    const auto it = options_.kernelDirectives.find(node.name);
    if (it != options_.kernelDirectives.end()) {
        d = it->second;
    }
    // The DSL `i`/`is` keywords inject interface directives (paper
    // Section IV-B step 3).
    for (const auto& port : node.ports) {
        d.interfaces[port.name] = port.protocol;
    }
    return d;
}

std::pair<hls::HlsResult, double> Flow::synthesizeNode(const TgNode& node) {
    if (options_.injectHlsFailures.count(node.name) > 0) {
        // Fires before the cache so the failure is deterministic even when
        // a previous architecture already synthesized this kernel.
        throw HlsError(format("injected HLS failure for kernel \"%s\"",
                              node.name.c_str()));
    }
    if (cache_ != nullptr) {
        if (const hls::HlsResult* hit = cache_->find(node.name)) {
            Logger::global().info("hls: cache hit for " + node.name);
            return {*hit, 0.0};
        }
    }
    if (!kernels_.has(node.name)) {
        throw DslError(format("no kernel source registered for node \"%s\" (the flow "
                              "needs a synthesizable description per hardware task)",
                              node.name.c_str()));
    }
    const hls::Kernel& kernel = kernels_.get(node.name);
    // Interface consistency: every DSL port must exist on the kernel with
    // a compatible kind.
    for (const auto& port : node.ports) {
        if (!kernel.hasPort(port.name)) {
            throw DslError(format("node \"%s\": kernel has no port '%s'",
                                  node.name.c_str(), port.name.c_str()));
        }
        const auto kind = kernel.port(kernel.portId(port.name)).kind;
        const bool stream = hls::isStreamPort(kind);
        const bool wantStream = port.protocol == hls::InterfaceProtocol::AxiStream;
        if (stream != wantStream) {
            throw DslError(format("node \"%s\": port '%s' is declared %s in the DSL but "
                                  "the kernel exposes a %s interface",
                                  node.name.c_str(), port.name.c_str(),
                                  wantStream ? "is (AXI-Stream)" : "i (AXI-Lite)",
                                  std::string(hls::portKindName(kind)).c_str()));
        }
    }
    hls::HlsResult result = engine_.synthesize(kernel, directivesFor(node));
    const double toolSeconds = result.toolSeconds;
    if (cache_ != nullptr) {
        cache_->store(node.name, result);
    }
    return {std::move(result), toolSeconds};
}

void Flow::runAllHls(const TaskGraph& graph, FlowResult& result) {
    const auto& nodes = graph.nodes();
    std::vector<std::pair<hls::HlsResult, double>> results(nodes.size());
    std::vector<std::exception_ptr> errors(nodes.size());

    // An HlsError is an engine failure; under the Degrade policy the node
    // is isolated instead of sinking the whole flow. Anything else
    // (DslError, internal errors) always propagates.
    const auto degradeOrRethrow = [&](std::size_t i, std::exception_ptr error) {
        try {
            std::rethrow_exception(error);
        } catch (const HlsError& e) {
            if (options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                throw;
            }
            Logger::global().info(format("hls: node %s degraded to software: %s",
                                         nodes[i].name.c_str(), e.what()));
            FlowDiagnostics::NodeOutcome outcome;
            outcome.node = nodes[i].name;
            outcome.degraded = true;
            outcome.error = e.what();
            result.diagnostics.nodes.push_back(std::move(outcome));
        }
    };

    const unsigned jobs = std::max(1u, options_.jobs);
    if (jobs == 1 || nodes.size() <= 1) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            Stopwatch watch;
            try {
                results[i] = synthesizeNode(nodes[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            if (!errors[i]) {
                result.timeline.add("HLS " + nodes[i].name, watch.elapsedMs(),
                                    results[i].second);
            }
        }
    } else {
        // Independent per-node HLS runs on a worker pool; results land in
        // per-node slots so the merge is deterministic regardless of
        // scheduling.
        std::atomic<std::size_t> next{0};
        std::vector<double> hostMs(nodes.size(), 0.0);
        const auto worker = [&] {
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= nodes.size()) {
                    return;
                }
                Stopwatch watch;
                try {
                    results[i] = synthesizeNode(nodes[i]);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                hostMs[i] = watch.elapsedMs();
            }
        };
        std::vector<std::thread> pool;
        const unsigned threadCount =
            std::min<unsigned>(jobs, static_cast<unsigned>(nodes.size()));
        pool.reserve(threadCount);
        for (unsigned t = 0; t < threadCount; ++t) {
            pool.emplace_back(worker);
        }
        for (auto& t : pool) {
            t.join();
        }
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (!errors[i]) {
                result.timeline.add("HLS " + nodes[i].name, hostMs[i],
                                    results[i].second);
            }
        }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (errors[i]) {
            degradeOrRethrow(i, errors[i]);
            continue;
        }
        FlowDiagnostics::NodeOutcome outcome;
        outcome.node = nodes[i].name;
        outcome.toolSeconds = results[i].second;
        result.diagnostics.nodes.push_back(std::move(outcome));
        result.programs.emplace(nodes[i].name, results[i].first.program);
        result.hlsResults.emplace(nodes[i].name, std::move(results[i].first));
    }
}

void Flow::integrate(const std::string& projectName, const TaskGraph& graph,
                     FlowResult& result) const {
    soc::BlockDesign design(projectName, options_.device, options_.dmaPolicy);
    // Degraded nodes get no hardware instance; their links are rewired to
    // the PS ('soc endpoints) below so surviving cores stay fully
    // connected and the PS feeds/drains them in software.
    std::set<std::string> degraded;
    for (const std::string& name : result.diagnostics.degradedNodes()) {
        degraded.insert(name);
    }
    for (const auto& node : graph.nodes()) {
        if (degraded.count(node.name) > 0) {
            continue;
        }
        const hls::HlsResult& hlsResult = result.hlsResults.at(node.name);
        std::vector<soc::CorePort> streamPorts;
        for (const auto& kp : hlsResult.program.ports) {
            if (hls::isStreamPort(kp.kind)) {
                streamPorts.push_back(soc::CorePort{
                    kp.name, hls::InterfaceProtocol::AxiStream,
                    kp.kind == hls::PortKind::StreamIn, kp.width});
            }
        }
        design.addHlsCore(node.name, hlsResult.resources, std::move(streamPorts),
                          node.hasAxiLitePort());
    }
    for (const auto& link : graph.links()) {
        const bool fromDegraded = !link.from.soc && degraded.count(link.from.node) > 0;
        const bool toDegraded = !link.to.soc && degraded.count(link.to.node) > 0;
        // A link with no surviving hardware end disappears entirely.
        if ((fromDegraded || link.from.soc) && (toDegraded || link.to.soc)) {
            continue;
        }
        // Stream width comes from the hardware end(s); direction checks
        // happen inside BlockDesign::finalise().
        unsigned width = 32;
        const auto widthOf = [&](const TgEndpoint& ep, bool wantInput) -> unsigned {
            const hls::Program& p = result.programs.at(ep.node);
            for (const auto& kp : p.ports) {
                if (kp.name == ep.port) {
                    const bool isInput = kp.kind == hls::PortKind::StreamIn;
                    if (isInput != wantInput) {
                        throw DslError(format(
                            "link endpoint (\"%s\",\"%s\") has the wrong direction",
                            ep.node.c_str(), ep.port.c_str()));
                    }
                    return kp.width;
                }
            }
            throw DslError(format("link endpoint (\"%s\",\"%s\") not found on kernel",
                                  ep.node.c_str(), ep.port.c_str()));
        };
        if (!link.from.soc && !fromDegraded) {
            width = widthOf(link.from, false);
        }
        if (!link.to.soc && !toDegraded) {
            width = std::max(width, widthOf(link.to, true));
        }
        const auto toEndpoint = [](const TgEndpoint& ep, bool epDegraded) {
            return (ep.soc || epDegraded)
                       ? soc::StreamEndpoint{soc::StreamEndpoint::kSoc, ""}
                       : soc::StreamEndpoint{ep.node, ep.port};
        };
        design.connectStream(toEndpoint(link.from, fromDegraded),
                             toEndpoint(link.to, toDegraded), width);
    }
    for (const auto& connect : graph.connects()) {
        if (degraded.count(connect.node) > 0) {
            continue;
        }
        design.connectLite(connect.node);
    }
    design.finalise();
    result.tclText = soc::TclEmitter{}.emitProject(design);
    result.design = std::move(design);
}

FlowResult Flow::run(const std::string& projectName, const TaskGraph& graph) {
    Logger::global().info("flow: starting project " + projectName);
    FlowResult result;
    result.projectName = projectName;
    result.graph = graph;

    // Phase 1 — "compile the Scala task graph" (paper: ~6 s).
    {
        Stopwatch watch;
        graph.validate();
        result.dslText = graph.renderDsl(projectName);
        result.timeline.add("SCALA", watch.elapsedMs(),
                            5.4 + 0.15 * static_cast<double>(graph.nodes().size()));
    }

    // Phase 2 — per-node HLS (cached across architectures).
    runAllHls(graph, result);
    if (result.diagnostics.anyDegraded()) {
        Logger::global().info(result.diagnostics.render());
    }

    // Phase 3 — system integration / Vivado project generation (~50 s).
    {
        Stopwatch watch;
        integrate(projectName, graph, result);
        result.timeline.add(
            "PROJECT " + projectName, watch.elapsedMs(),
            31.0 + 2.4 * static_cast<double>(result.design.instances().size()));
    }

    // Phase 4 — synthesis, implementation, bitstream.
    if (options_.runSynthesis) {
        Stopwatch watch;
        result.synthesis = soc::SynthesisModel{}.run(result.design);
        result.bitstream = soc::generateBitstream(result.design, result.synthesis);
        result.timeline.add("SYNTH " + projectName, watch.elapsedMs(),
                            result.synthesis.totalSeconds());
    }

    // Phase 5 — software generation (device tree, drivers, boot files).
    if (options_.generateSoftware) {
        Stopwatch watch;
        result.deviceTree = sw::DeviceTreeGenerator{}.generate(result.design);
        result.driverFiles = sw::DriverGenerator{}.generate(result.design, result.programs);
        if (options_.runSynthesis) {
            result.bootImage = sw::makeBootImage(result.design, result.bitstream,
                                                 result.deviceTree);
        }
        result.timeline.add(
            "SW " + projectName, watch.elapsedMs(),
            6.0 + 0.8 * static_cast<double>(result.design.lites().size()));
    }

    if (!options_.outputDir.empty()) {
        writeArtifacts(result);
    }
    Logger::global().info(format("flow: project %s complete (%.1f simulated tool-seconds)",
                                 projectName.c_str(),
                                 result.timeline.totalToolSeconds()));
    return result;
}

void Flow::writeArtifacts(const FlowResult& result) const {
    const std::string dir = options_.outputDir + "/" + result.projectName;
    writeTextFile(dir + "/" + result.projectName + ".tg", result.dslText);
    writeTextFile(dir + "/" + result.projectName + ".tcl", result.tclText);
    for (const auto& [name, hlsResult] : result.hlsResults) {
        writeTextFile(dir + "/hls/" + name + ".vhd", hlsResult.vhdl);
        writeTextFile(dir + "/hls/" + name + ".v", hlsResult.verilog);
        writeTextFile(dir + "/hls/" + name + "_directives.tcl", hlsResult.directiveText);
        writeTextFile(dir + "/hls/" + name + "_report.txt", hlsResult.reportText);
    }
    if (options_.runSynthesis) {
        writeBinaryFile(dir + "/" + result.projectName + ".bit",
                        result.bitstream.serialize());
        writeTextFile(dir + "/utilisation.txt", result.synthesis.utilisationReport());
    }
    if (options_.generateSoftware) {
        writeTextFile(dir + "/devicetree.dts", result.deviceTree);
        for (const auto& file : result.driverFiles) {
            writeTextFile(dir + "/sw/" + file.path, file.content);
        }
        if (options_.runSynthesis) {
            writeBinaryFile(dir + "/boot.bin", result.bootImage.serialize());
        }
    }
    writeTextFile(dir + "/design.dot", result.design.toDot());
    writeTextFile(dir + "/REPORT.md", renderFlowReport(result));
}

} // namespace socgen::core
