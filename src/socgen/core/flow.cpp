#include "socgen/core/flow.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/report.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/soc/tcl.hpp"
#include "socgen/sw/devicetree.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace socgen::core {
namespace {

struct SynthOut {
    soc::SynthesisResult synthesis;
    soc::Bitstream bitstream;
};

struct SoftwareOut {
    std::string deviceTree;
    std::vector<sw::GeneratedFile> driverFiles;
    sw::BootImage bootImage;
};

} // namespace

const hls::HlsResult* HlsCache::find(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = results_.find(key);
    return it == results_.end() ? nullptr : &it->second;
}

void HlsCache::store(const std::string& key, hls::HlsResult result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    results_.emplace(key, std::move(result));
}

std::size_t HlsCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

bool FlowDiagnostics::anyDegraded() const {
    for (const auto& n : nodes) {
        if (n.degraded) {
            return true;
        }
    }
    return false;
}

std::vector<std::string> FlowDiagnostics::degradedNodes() const {
    std::vector<std::string> names;
    for (const auto& n : nodes) {
        if (n.degraded) {
            names.push_back(n.node);
        }
    }
    return names;
}

std::size_t FlowDiagnostics::engineRuns() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (!n.degraded && n.attempts > 0) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::cacheHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.cacheHit) {
            ++count;
        }
    }
    return count;
}

std::size_t FlowDiagnostics::storeHits() const {
    std::size_t count = 0;
    for (const auto& n : nodes) {
        if (n.storeHit) {
            ++count;
        }
    }
    return count;
}

std::string FlowDiagnostics::render() const {
    std::string out = "HLS diagnostics:";
    for (const auto& n : nodes) {
        if (n.degraded) {
            out += format("\n  %s: DEGRADED to software fallback after %u attempt(s) — %s",
                          n.node.c_str(), n.attempts, n.error.c_str());
        } else {
            const char* source = n.cacheHit    ? "cache hit"
                                 : n.storeHit  ? (n.resumedFromJournal ? "store hit (journaled)"
                                                                       : "store hit")
                                               : "synthesized";
            out += format("\n  %s: ok (%.1f tool-s, %s, %u attempt(s))", n.node.c_str(),
                          n.toolSeconds, source, n.attempts);
        }
    }
    if (stageRetries > 0 || stageTimeouts > 0 || resumedStages > 0 ||
        digestMismatches > 0 || corruptArtifacts > 0) {
        out += format("\n  flow: %zu stage retr%s, %zu timeout(s), %zu resumed stage(s), "
                      "%zu digest mismatch(es), %zu corrupt artifact(s)",
                      stageRetries, stageRetries == 1 ? "y" : "ies", stageTimeouts,
                      resumedStages, digestMismatches, corruptArtifacts);
    }
    return out;
}

Flow::Flow(FlowOptions options, const hls::KernelLibrary& kernels,
           std::shared_ptr<HlsCache> cache)
    : options_(std::move(options)), kernels_(kernels), cache_(std::move(cache)) {
    if (!options_.outputDir.empty()) {
        store_ = std::make_unique<ArtifactStore>(options_.outputDir + "/.socgen/store");
    }
    for (const auto& event : options_.flowFaults.events()) {
        if (event.kind == sim::FaultKind::FlowCrash ||
            event.kind == sim::FaultKind::ArtifactCorrupt ||
            event.kind == sim::FaultKind::StageHang) {
            pendingFlowFaults_.push_back(event);
        }
    }
    transientRemaining_ = options_.transientHlsFailures;
}

hls::Directives Flow::directivesFor(const TgNode& node) const {
    hls::Directives d = options_.defaultDirectives;
    const auto it = options_.kernelDirectives.find(node.name);
    if (it != options_.kernelDirectives.end()) {
        d = it->second;
    }
    // The DSL `i`/`is` keywords inject interface directives (paper
    // Section IV-B step 3).
    for (const auto& port : node.ports) {
        d.interfaces[port.name] = port.protocol;
    }
    return d;
}

std::string Flow::flowFingerprint(const std::string& projectName,
                                  const TaskGraph& graph) const {
    // Everything that determines the flow's outputs; fault-injection
    // hooks, retry policy and `jobs` are deliberately excluded so a
    // crashed run and its recovery run agree on the fingerprint.
    HashStream h;
    h.field("socgen-flow-v1");
    h.field(projectName);
    h.field(graph.renderDsl(projectName));
    h.field(options_.device.part).field(options_.device.board);
    h.field(options_.device.lut).field(options_.device.ff);
    h.field(options_.device.bram18).field(options_.device.dsp);
    h.field(options_.device.fabricClockMhz);
    h.field(static_cast<std::uint64_t>(options_.dmaPolicy));
    h.field(static_cast<std::uint64_t>(options_.runSynthesis ? 1 : 0));
    h.field(static_cast<std::uint64_t>(options_.generateSoftware ? 1 : 0));
    h.field(options_.toolVersion);
    h.field(hls::fingerprintDirectives(options_.defaultDirectives).hex());
    for (const auto& [name, directives] : options_.kernelDirectives) {
        h.field(name).field(hls::fingerprintDirectives(directives).hex());
    }
    return h.digest().hex();
}

void Flow::maybeCrash(const std::string& stage, std::uint64_t phase) {
    const std::lock_guard<std::mutex> lock(faultMutex_);
    for (auto it = pendingFlowFaults_.begin(); it != pendingFlowFaults_.end(); ++it) {
        if (it->kind == sim::FaultKind::FlowCrash && it->target == stage &&
            it->a == phase) {
            pendingFlowFaults_.erase(it);
            throw FlowCrashError(format("injected crash at stage %s (%s)", stage.c_str(),
                                        phase == 0 ? "at begin" : "pre-commit"));
        }
    }
}

void Flow::maybeHang(const std::string& stage) {
    std::uint64_t milliseconds = 0;
    bool armed = false;
    {
        const std::lock_guard<std::mutex> lock(faultMutex_);
        for (auto it = pendingFlowFaults_.begin(); it != pendingFlowFaults_.end(); ++it) {
            if (it->kind == sim::FaultKind::StageHang && it->target == stage) {
                milliseconds = it->a;
                pendingFlowFaults_.erase(it);
                armed = true;
                break;
            }
        }
    }
    if (armed) {
        Logger::global().info(format("fault: stage %s hanging for %llu ms", stage.c_str(),
                                     static_cast<unsigned long long>(milliseconds)));
        std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
    }
}

void Flow::maybeCorruptArtifact(const std::string& kernel, const std::string& key) {
    bool armed = false;
    {
        const std::lock_guard<std::mutex> lock(faultMutex_);
        for (auto it = pendingFlowFaults_.begin(); it != pendingFlowFaults_.end(); ++it) {
            if (it->kind == sim::FaultKind::ArtifactCorrupt && it->target == kernel) {
                pendingFlowFaults_.erase(it);
                armed = true;
                break;
            }
        }
    }
    if (armed && store_ != nullptr && store_->contains(key)) {
        Logger::global().info("fault: corrupting stored artifact of " + kernel);
        store_->corruptObject(key);
    }
}

bool Flow::consumeTransientFailure(const std::string& kernel) {
    const std::lock_guard<std::mutex> lock(faultMutex_);
    const auto it = transientRemaining_.find(kernel);
    if (it == transientRemaining_.end() || it->second == 0) {
        return false;
    }
    --it->second;
    return true;
}

std::pair<hls::HlsResult, double> Flow::synthesizeNode(const TgNode& node) {
    StageSupervisor supervisor(options_.stagePolicy);
    FlowDiagnostics::NodeOutcome outcome;
    return synthesizeNodeTracked(node, supervisor, outcome);
}

std::pair<hls::HlsResult, double> Flow::synthesizeNodeTracked(
    const TgNode& node, StageSupervisor& supervisor,
    FlowDiagnostics::NodeOutcome& outcome) {
    const std::string stage = "hls:" + node.name;
    outcome.node = node.name;
    maybeCrash(stage, 0);
    if (!kernels_.has(node.name)) {
        throw DslError(format("no kernel source registered for node \"%s\" (the flow "
                              "needs a synthesizable description per hardware task)",
                              node.name.c_str()));
    }
    const hls::Kernel& kernel = kernels_.get(node.name);
    // Interface consistency: every DSL port must exist on the kernel with
    // a compatible kind.
    for (const auto& port : node.ports) {
        if (!kernel.hasPort(port.name)) {
            throw DslError(format("node \"%s\": kernel has no port '%s'",
                                  node.name.c_str(), port.name.c_str()));
        }
        const auto kind = kernel.port(kernel.portId(port.name)).kind;
        const bool stream = hls::isStreamPort(kind);
        const bool wantStream = port.protocol == hls::InterfaceProtocol::AxiStream;
        if (stream != wantStream) {
            throw DslError(format("node \"%s\": port '%s' is declared %s in the DSL but "
                                  "the kernel exposes a %s interface",
                                  node.name.c_str(), port.name.c_str(),
                                  wantStream ? "is (AXI-Stream)" : "i (AXI-Lite)",
                                  std::string(hls::portKindName(kind)).c_str()));
        }
    }
    const hls::Directives directives = directivesFor(node);
    const std::string key =
        ArtifactStore::deriveKey(kernel, directives, options_.device, options_.toolVersion);
    outcome.artifactKey = key;

    const bool injected = options_.injectHlsFailures.count(node.name) > 0;
    if (!injected) {
        // Reuse order: in-memory cache (same process), then the persistent
        // store (earlier run / crashed run). A store object that fails
        // validation is reported and rebuilt — never silently loaded.
        if (cache_ != nullptr) {
            if (const hls::HlsResult* hit = cache_->find(key)) {
                Logger::global().info("hls: cache hit for " + node.name);
                outcome.cacheHit = true;
                return {*hit, 0.0};
            }
        }
        if (store_ != nullptr) {
            std::string whyMiss;
            if (std::optional<hls::HlsResult> loaded = store_->load(key, &whyMiss)) {
                Logger::global().info("hls: artifact store hit for " + node.name);
                outcome.storeHit = true;
                outcome.resumedFromJournal = committedAtOpen_.count(stage) > 0;
                if (cache_ != nullptr) {
                    cache_->store(key, *loaded);
                }
                return {std::move(*loaded), 0.0};
            }
            if (!whyMiss.empty()) {
                corruptDetected_.fetch_add(1);
                Logger::global().warn(format("hls: stored artifact of %s rejected (%s); "
                                             "re-synthesizing",
                                             node.name.c_str(), whyMiss.c_str()));
            }
        }
    }

    StageRun meta;
    std::pair<hls::HlsResult, double> out;
    try {
        hls::HlsResult synthesized = supervisor.run(
            stage,
            [this, &kernel, directives, stage, name = node.name] {
                maybeHang(stage);
                if (options_.injectHlsFailures.count(name) > 0) {
                    // Fires on every attempt so the failure is
                    // deterministic even when a previous architecture
                    // already synthesized this kernel.
                    throw HlsError(
                        format("injected HLS failure for kernel \"%s\"", name.c_str()));
                }
                if (consumeTransientFailure(name)) {
                    throw HlsError(format("injected transient HLS failure for kernel "
                                          "\"%s\"",
                                          name.c_str()));
                }
                return engine_.synthesize(kernel, directives);
            },
            &meta);
        out.second = synthesized.toolSeconds;
        if (cache_ != nullptr) {
            cache_->store(key, synthesized);
        }
        if (store_ != nullptr) {
            store_->store(key, synthesized);
        }
        out.first = std::move(synthesized);
    } catch (...) {
        outcome.attempts = static_cast<unsigned>(meta.attempts);
        nodeTimeouts_.fetch_add(static_cast<std::size_t>(meta.timeouts));
        throw;
    }
    outcome.attempts = static_cast<unsigned>(meta.attempts);
    nodeTimeouts_.fetch_add(static_cast<std::size_t>(meta.timeouts));
    return out;
}

void Flow::runAllHls(const TaskGraph& graph, FlowResult& result,
                     StageSupervisor& supervisor) {
    const auto& nodes = graph.nodes();
    std::vector<std::pair<hls::HlsResult, double>> results(nodes.size());
    std::vector<std::exception_ptr> errors(nodes.size());
    std::vector<FlowDiagnostics::NodeOutcome> outcomes(nodes.size());
    std::vector<double> hostMs(nodes.size(), 0.0);

    // Write-ahead discipline: every per-node begin record lands before
    // any node starts work, in node order; commits land after the
    // barrier, also in node order. The journal is therefore byte-
    // identical for any `jobs` setting.
    if (journal_ != nullptr) {
        for (const auto& node : nodes) {
            journal_->begin("hls:" + node.name);
        }
    }

    const auto runOne = [&](std::size_t i) {
        Stopwatch watch;
        try {
            results[i] = synthesizeNodeTracked(nodes[i], supervisor, outcomes[i]);
        } catch (...) {
            errors[i] = std::current_exception();
        }
        hostMs[i] = watch.elapsedMs();
    };

    const unsigned jobs = std::max(1u, options_.jobs);
    if (jobs == 1 || nodes.size() <= 1) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            runOne(i);
        }
    } else {
        // Independent per-node HLS runs on a worker pool; results land in
        // per-node slots so the merge is deterministic regardless of
        // scheduling.
        std::atomic<std::size_t> next{0};
        const auto worker = [&] {
            while (true) {
                const std::size_t i = next.fetch_add(1);
                if (i >= nodes.size()) {
                    return;
                }
                runOne(i);
            }
        };
        std::vector<std::thread> pool;
        const unsigned threadCount =
            std::min<unsigned>(jobs, static_cast<unsigned>(nodes.size()));
        pool.reserve(threadCount);
        for (unsigned t = 0; t < threadCount; ++t) {
            pool.emplace_back(worker);
        }
        for (auto& t : pool) {
            t.join();
        }
    }

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!errors[i]) {
            result.timeline.add("HLS " + nodes[i].name, hostMs[i], results[i].second);
        }
    }

    // An HlsError is an engine failure and a StageTimeoutError an engine
    // hang; under the Degrade policy the node is isolated instead of
    // sinking the whole flow. Anything else (DslError, FlowCrashError,
    // internal errors) always propagates.
    const auto markDegraded = [&](std::size_t i, const char* what) {
        Logger::global().info(format("hls: node %s degraded to software: %s",
                                     nodes[i].name.c_str(), what));
        outcomes[i].degraded = true;
        outcomes[i].error = what;
    };
    const auto degradeOrRethrow = [&](std::size_t i, const std::exception_ptr& error) {
        try {
            std::rethrow_exception(error);
        } catch (const HlsError& e) {
            if (options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                throw;
            }
            markDegraded(i, e.what());
        } catch (const StageTimeoutError& e) {
            if (options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                throw;
            }
            markDegraded(i, e.what());
        }
    };

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (errors[i]) {
            degradeOrRethrow(i, errors[i]);
        } else {
            outcomes[i].toolSeconds = results[i].second;
            result.programs.emplace(nodes[i].name, results[i].first.program);
            result.hlsResults.emplace(nodes[i].name, std::move(results[i].first));
        }
        result.diagnostics.nodes.push_back(std::move(outcomes[i]));
    }

    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const std::string stage = "hls:" + nodes[i].name;
        const FlowDiagnostics::NodeOutcome& outcome = result.diagnostics.nodes[i];
        if (outcome.degraded) {
            if (journal_ != nullptr) {
                journal_->noteEvent(stage, "degraded: " + outcome.error);
            }
            continue;
        }
        maybeCrash(stage, 1);
        if (journal_ != nullptr) {
            const auto it = digestsAtOpen_.find(stage);
            if (it != digestsAtOpen_.end() && it->second != outcome.artifactKey) {
                ++result.diagnostics.digestMismatches;
                Logger::global().warn("flow: stage " + stage +
                                      " artifact key differs from the journal's commit");
            }
            journal_->commit(stage, outcome.artifactKey);
        }
        maybeCorruptArtifact(nodes[i].name, outcome.artifactKey);
    }
}

Flow::Integration Flow::integrate(const std::string& projectName, const TaskGraph& graph,
                                  const FlowResult& result) const {
    soc::BlockDesign design(projectName, options_.device, options_.dmaPolicy);
    // Degraded nodes get no hardware instance; their links are rewired to
    // the PS ('soc endpoints) below so surviving cores stay fully
    // connected and the PS feeds/drains them in software.
    std::set<std::string> degraded;
    for (const std::string& name : result.diagnostics.degradedNodes()) {
        degraded.insert(name);
    }
    for (const auto& node : graph.nodes()) {
        if (degraded.count(node.name) > 0) {
            continue;
        }
        const hls::HlsResult& hlsResult = result.hlsResults.at(node.name);
        std::vector<soc::CorePort> streamPorts;
        for (const auto& kp : hlsResult.program.ports) {
            if (hls::isStreamPort(kp.kind)) {
                streamPorts.push_back(soc::CorePort{
                    kp.name, hls::InterfaceProtocol::AxiStream,
                    kp.kind == hls::PortKind::StreamIn, kp.width});
            }
        }
        design.addHlsCore(node.name, hlsResult.resources, std::move(streamPorts),
                          node.hasAxiLitePort());
    }
    for (const auto& link : graph.links()) {
        const bool fromDegraded = !link.from.soc && degraded.count(link.from.node) > 0;
        const bool toDegraded = !link.to.soc && degraded.count(link.to.node) > 0;
        // A link with no surviving hardware end disappears entirely.
        if ((fromDegraded || link.from.soc) && (toDegraded || link.to.soc)) {
            continue;
        }
        // Stream width comes from the hardware end(s); direction checks
        // happen inside BlockDesign::finalise().
        unsigned width = 32;
        const auto widthOf = [&](const TgEndpoint& ep, bool wantInput) -> unsigned {
            const hls::Program& p = result.programs.at(ep.node);
            for (const auto& kp : p.ports) {
                if (kp.name == ep.port) {
                    const bool isInput = kp.kind == hls::PortKind::StreamIn;
                    if (isInput != wantInput) {
                        throw DslError(format(
                            "link endpoint (\"%s\",\"%s\") has the wrong direction",
                            ep.node.c_str(), ep.port.c_str()));
                    }
                    return kp.width;
                }
            }
            throw DslError(format("link endpoint (\"%s\",\"%s\") not found on kernel",
                                  ep.node.c_str(), ep.port.c_str()));
        };
        if (!link.from.soc && !fromDegraded) {
            width = widthOf(link.from, false);
        }
        if (!link.to.soc && !toDegraded) {
            width = std::max(width, widthOf(link.to, true));
        }
        const auto toEndpoint = [](const TgEndpoint& ep, bool epDegraded) {
            return (ep.soc || epDegraded)
                       ? soc::StreamEndpoint{soc::StreamEndpoint::kSoc, ""}
                       : soc::StreamEndpoint{ep.node, ep.port};
        };
        design.connectStream(toEndpoint(link.from, fromDegraded),
                             toEndpoint(link.to, toDegraded), width);
    }
    for (const auto& connect : graph.connects()) {
        if (degraded.count(connect.node) > 0) {
            continue;
        }
        design.connectLite(connect.node);
    }
    design.finalise();
    Integration out;
    out.tclText = soc::TclEmitter{}.emitProject(design);
    out.design = std::move(design);
    return out;
}

FlowResult Flow::run(const std::string& projectName, const TaskGraph& graph) {
    Logger::global().info("flow: starting project " + projectName);
    FlowResult result;
    result.projectName = projectName;
    result.graph = graph;
    corruptDetected_.store(0);
    nodeTimeouts_.store(0);

    // Journal bring-up (outputDir flows only). A matching header means a
    // previous run — possibly one that crashed — left trustworthy commit
    // records; a mismatch means the flow inputs changed and the journal
    // is reset, which also invalidates any resume decisions (the store
    // stays: its keys are content-addressed, so stale entries are inert).
    std::optional<FlowJournal> journal;
    committedAtOpen_.clear();
    digestsAtOpen_.clear();
    journal_ = nullptr;
    if (!options_.outputDir.empty()) {
        journal.emplace(FlowJournal::open(options_.outputDir + "/.socgen/journal/" +
                                          projectName + ".jsonl"));
        const std::string fingerprint = flowFingerprint(projectName, graph);
        if (!journal->matchesHeader(fingerprint)) {
            journal->reset(fingerprint, "project=" + projectName);
        } else {
            for (const std::string& stage : journal->committedStages()) {
                committedAtOpen_.insert(stage);
                if (const auto digest = journal->committedDigest(stage)) {
                    digestsAtOpen_[stage] = *digest;
                }
            }
            if (!committedAtOpen_.empty()) {
                Logger::global().info(
                    format("flow: journal shows %zu committed stage(s); resuming",
                           committedAtOpen_.size()));
            }
        }
        journal_ = &*journal;
    }
    struct JournalScope {
        Flow& flow;
        ~JournalScope() {
            flow.journal_ = nullptr;
            flow.committedAtOpen_.clear();
            flow.digestsAtOpen_.clear();
        }
    } journalScope{*this};

    // Declared after everything its stage closures reference so its
    // destructor joins abandoned (timed-out) attempts first.
    StageSupervisor supervisor(options_.stagePolicy);

    FlowDiagnostics& diag = result.diagnostics;
    const auto stageBegin = [&](const std::string& stage) {
        if (journal_ != nullptr) {
            journal_->begin(stage);
        }
        maybeCrash(stage, 0);
    };
    const auto stageCommit = [&](const std::string& stage, const std::string& digest) {
        maybeCrash(stage, 1);
        if (journal_ == nullptr) {
            return;
        }
        const auto it = digestsAtOpen_.find(stage);
        if (it != digestsAtOpen_.end()) {
            // The stage was committed by a previous run; re-executing it
            // must reproduce the same output (the flow is deterministic).
            ++diag.resumedStages;
            if (it->second != digest) {
                ++diag.digestMismatches;
                Logger::global().warn("flow: stage " + stage +
                                      " recomputed output differs from the journal's "
                                      "committed digest");
            }
        }
        journal_->commit(stage, digest);
    };
    const auto absorb = [&](const StageRun& meta) {
        if (meta.attempts > 1) {
            diag.stageRetries += static_cast<std::size_t>(meta.attempts - 1);
        }
        diag.stageTimeouts += static_cast<std::size_t>(meta.timeouts);
    };

    // Phase 1 — "compile the Scala task graph" (paper: ~6 s).
    {
        stageBegin("scala");
        StageRun meta;
        Stopwatch watch;
        std::string dsl = supervisor.run(
            "scala",
            [this, &graph, &projectName] {
                maybeHang("scala");
                graph.validate();
                return graph.renderDsl(projectName);
            },
            &meta);
        result.dslText = std::move(dsl);
        result.timeline.add("SCALA", watch.elapsedMs(),
                            5.4 + 0.15 * static_cast<double>(graph.nodes().size()));
        absorb(meta);
        stageCommit("scala", digest128(result.dslText).hex());
    }

    // Phase 2 — per-node HLS (cached across architectures and, via the
    // artifact store, across runs and crashes).
    runAllHls(graph, result, supervisor);
    for (const auto& n : diag.nodes) {
        if (n.attempts > 1) {
            diag.stageRetries += static_cast<std::size_t>(n.attempts - 1);
        }
    }
    if (diag.anyDegraded()) {
        Logger::global().info(diag.render());
    }

    // Phase 3 — system integration / Vivado project generation (~50 s).
    {
        stageBegin("integrate");
        StageRun meta;
        Stopwatch watch;
        Integration integration = supervisor.run(
            "integrate",
            [this, &projectName, &graph, &result] {
                maybeHang("integrate");
                return integrate(projectName, graph, result);
            },
            &meta);
        result.tclText = std::move(integration.tclText);
        result.design = std::move(integration.design);
        result.timeline.add(
            "PROJECT " + projectName, watch.elapsedMs(),
            31.0 + 2.4 * static_cast<double>(result.design.instances().size()));
        absorb(meta);
        stageCommit("integrate", digest128(result.tclText).hex());
    }

    // Phase 4 — synthesis, implementation, bitstream.
    if (options_.runSynthesis) {
        stageBegin("synth");
        StageRun meta;
        Stopwatch watch;
        SynthOut synthOut = supervisor.run(
            "synth",
            [this, &result] {
                maybeHang("synth");
                SynthOut out;
                out.synthesis = soc::SynthesisModel{}.run(result.design);
                out.bitstream = soc::generateBitstream(result.design, out.synthesis);
                return out;
            },
            &meta);
        result.synthesis = std::move(synthOut.synthesis);
        result.bitstream = std::move(synthOut.bitstream);
        result.timeline.add("SYNTH " + projectName, watch.elapsedMs(),
                            result.synthesis.totalSeconds());
        absorb(meta);
        stageCommit("synth", digest128(result.bitstream.serialize()).hex());
    }

    // Phase 5 — software generation (device tree, drivers, boot files).
    if (options_.generateSoftware) {
        stageBegin("software");
        StageRun meta;
        Stopwatch watch;
        const bool withBoot = options_.runSynthesis;
        SoftwareOut swOut = supervisor.run(
            "software",
            [this, &result, withBoot] {
                maybeHang("software");
                SoftwareOut out;
                out.deviceTree = sw::DeviceTreeGenerator{}.generate(result.design);
                out.driverFiles =
                    sw::DriverGenerator{}.generate(result.design, result.programs);
                if (withBoot) {
                    out.bootImage = sw::makeBootImage(result.design, result.bitstream,
                                                      out.deviceTree);
                }
                return out;
            },
            &meta);
        result.deviceTree = std::move(swOut.deviceTree);
        result.driverFiles = std::move(swOut.driverFiles);
        if (withBoot) {
            result.bootImage = std::move(swOut.bootImage);
        }
        result.timeline.add(
            "SW " + projectName, watch.elapsedMs(),
            6.0 + 0.8 * static_cast<double>(result.design.lites().size()));
        absorb(meta);
        HashStream swHash;
        swHash.field(result.deviceTree);
        for (const auto& file : result.driverFiles) {
            swHash.field(file.path).field(file.content);
        }
        if (withBoot) {
            swHash.field(result.bootImage.serialize());
        }
        stageCommit("software", swHash.digest().hex());
    }

    // Phase 6 — write the project directory (atomic per file).
    if (!options_.outputDir.empty()) {
        stageBegin("artifacts");
        StageRun meta;
        supervisor.run(
            "artifacts",
            [this, &result] {
                maybeHang("artifacts");
                writeArtifacts(result);
            },
            &meta);
        absorb(meta);
        stageCommit("artifacts", digest128(result.dslText + result.tclText).hex());
    }

    diag.corruptArtifacts = corruptDetected_.load();
    diag.stageTimeouts += nodeTimeouts_.load();
    Logger::global().info(format("flow: project %s complete (%.1f simulated tool-seconds)",
                                 projectName.c_str(),
                                 result.timeline.totalToolSeconds()));
    return result;
}

void Flow::writeArtifacts(const FlowResult& result) const {
    // Atomic per-file writes: a crash mid-write leaves each artifact
    // either whole (old or new) or absent, never torn.
    const std::string dir = options_.outputDir + "/" + result.projectName;
    writeFileAtomic(dir + "/" + result.projectName + ".tg", result.dslText);
    writeFileAtomic(dir + "/" + result.projectName + ".tcl", result.tclText);
    for (const auto& [name, hlsResult] : result.hlsResults) {
        writeFileAtomic(dir + "/hls/" + name + ".vhd", hlsResult.vhdl);
        writeFileAtomic(dir + "/hls/" + name + ".v", hlsResult.verilog);
        writeFileAtomic(dir + "/hls/" + name + "_directives.tcl", hlsResult.directiveText);
        writeFileAtomic(dir + "/hls/" + name + "_report.txt", hlsResult.reportText);
    }
    if (options_.runSynthesis) {
        writeFileAtomic(dir + "/" + result.projectName + ".bit",
                        result.bitstream.serialize());
        writeFileAtomic(dir + "/utilisation.txt", result.synthesis.utilisationReport());
    }
    if (options_.generateSoftware) {
        writeFileAtomic(dir + "/devicetree.dts", result.deviceTree);
        for (const auto& file : result.driverFiles) {
            writeFileAtomic(dir + "/sw/" + file.path, file.content);
        }
        if (options_.runSynthesis) {
            writeFileAtomic(dir + "/boot.bin", result.bootImage.serialize());
        }
    }
    writeFileAtomic(dir + "/design.dot", result.design.toDot());
    writeFileAtomic(dir + "/REPORT.md", renderFlowReport(result));
}

} // namespace socgen::core
