#include "socgen/core/flow.hpp"

#include "socgen/common/env.hpp"
#include "socgen/common/error.hpp"
#include "socgen/common/hash.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"
#include "socgen/core/report.hpp"
#include "socgen/soc/tcl.hpp"
#include "socgen/sw/devicetree.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace socgen::core {
namespace {

struct SynthOut {
    soc::SynthesisResult synthesis;
    soc::Bitstream bitstream;
};

} // namespace

std::optional<hls::HlsResult> HlsCache::find(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = results_.find(key);
    if (it == results_.end()) {
        return std::nullopt;
    }
    // By value: a pointer into the map would dangle the moment another
    // stage inserts concurrently.
    return it->second;
}

void HlsCache::store(const std::string& key, hls::HlsResult result) {
    const std::lock_guard<std::mutex> lock(mutex_);
    results_.emplace(key, std::move(result));
}

std::size_t HlsCache::size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return results_.size();
}

Flow::Flow(FlowOptions options, const hls::KernelLibrary& kernels,
           std::shared_ptr<HlsCache> cache)
    : options_(std::move(options)), kernels_(kernels), cache_(std::move(cache)),
      faultHooks_(options_.flowFaults) {
    // Malformed values (SOCGEN_FLOW_JOBS=4x, =-1, =0) throw a
    // line-diagnostic Error instead of being silently ignored.
    if (const std::optional<unsigned> jobs = envUnsigned("SOCGEN_FLOW_JOBS")) {
        options_.jobs = *jobs;
    }
    if (options_.sharedStore != nullptr) {
        store_ = options_.sharedStore;
    } else if (!options_.outputDir.empty()) {
        store_ = std::make_shared<ArtifactStore>(options_.outputDir + "/.socgen/store");
    }
    transientRemaining_ = options_.transientHlsFailures;
}

hls::Directives Flow::directivesFor(const TgNode& node) const {
    hls::Directives d = options_.defaultDirectives;
    const auto it = options_.kernelDirectives.find(node.name);
    if (it != options_.kernelDirectives.end()) {
        d = it->second;
    }
    // The DSL `i`/`is` keywords inject interface directives (paper
    // Section IV-B step 3).
    for (const auto& port : node.ports) {
        d.interfaces[port.name] = port.protocol;
    }
    return d;
}

hls::Directives Flow::directivesForProcess(const TgNode& node,
                                           const hls::ProcessNetwork& network,
                                           const std::string& process) const {
    hls::Directives d = options_.defaultDirectives;
    const auto scoped = options_.kernelDirectives.find(node.name + "/" + process);
    if (scoped != options_.kernelDirectives.end()) {
        d = scoped->second;
    } else {
        const auto it = options_.kernelDirectives.find(node.name);
        if (it != options_.kernelDirectives.end()) {
            d = it->second;
        }
    }
    // Internal channel endpoints are AXI-Stream by construction — the
    // dataflow wrapper wires them straight into FIFO primitives.
    for (const auto& c : network.channels()) {
        if (c.fromProcess == process) {
            d.interfaces[c.fromPort] = hls::InterfaceProtocol::AxiStream;
        }
        if (c.toProcess == process) {
            d.interfaces[c.toPort] = hls::InterfaceProtocol::AxiStream;
        }
    }
    // Exported ports inherit the protocol the DSL declared on the
    // network-level port they surface as.
    for (const auto& b : network.bindings()) {
        if (b.process != process) {
            continue;
        }
        for (const auto& port : node.ports) {
            if (port.name == b.networkPort) {
                d.interfaces[b.processPort] = port.protocol;
            }
        }
    }
    return d;
}

const hls::ProcessNetwork& Flow::nodeNetwork(const TgNode& node) const {
    if (!kernels_.has(node.name)) {
        throw DslError(format("no kernel source registered for node \"%s\" (the flow "
                              "needs a synthesizable description per hardware task)",
                              node.name.c_str()));
    }
    return kernels_.network(node.name);
}

void Flow::validateNodeInterface(const TgNode& node,
                                 const hls::ProcessNetwork& network) const {
    // Structural checks first: dangling ports, scalar channels, token-free
    // cycles (ChannelDeadlockError) all abort the flow — they indicate a
    // broken project, not a flaky tool.
    network.verify();
    // Interface consistency: every DSL port must exist on the network's
    // external signature with a compatible kind.
    const std::vector<hls::KernelPort> external = network.externalPorts();
    for (const auto& port : node.ports) {
        const hls::KernelPort* found = nullptr;
        for (const auto& kp : external) {
            if (kp.name == port.name) {
                found = &kp;
                break;
            }
        }
        if (found == nullptr) {
            throw DslError(format("node \"%s\": kernel has no port '%s'",
                                  node.name.c_str(), port.name.c_str()));
        }
        const bool stream = hls::isStreamPort(found->kind);
        const bool wantStream = port.protocol == hls::InterfaceProtocol::AxiStream;
        if (stream != wantStream) {
            throw DslError(format("node \"%s\": port '%s' is declared %s in the DSL but "
                                  "the kernel exposes a %s interface",
                                  node.name.c_str(), port.name.c_str(),
                                  wantStream ? "is (AXI-Stream)" : "i (AXI-Lite)",
                                  std::string(hls::portKindName(found->kind)).c_str()));
        }
    }
}

std::string Flow::networkKeyFor(const TgNode& node,
                                const hls::ProcessNetwork& network) const {
    HashStream h;
    h.field(std::string_view("socgen-network-key-v1"));
    const Digest128 fp = hls::fingerprintNetwork(network);
    h.field(fp.hi);
    h.field(fp.lo);
    for (const auto& p : network.processes()) {
        h.field(ArtifactStore::deriveKey(p.kernel,
                                         directivesForProcess(node, network, p.name),
                                         options_.device, options_.toolVersion));
    }
    return h.digest().hex();
}

std::string Flow::flowFingerprint(const std::string& projectName,
                                  const TaskGraph& graph) const {
    // Everything that determines the flow's outputs; fault-injection
    // hooks, retry policy and `jobs` are deliberately excluded so a
    // crashed run and its recovery run agree on the fingerprint.
    HashStream h;
    h.field("socgen-flow-v5");
    // The resolved simulation engine configuration is part of the
    // identity of every sim-derived output: a journal written under one
    // backend must never be resumed under the other (Auto resolves to
    // the compiled engine, so unset and "compiled" agree). Thread and
    // lane counts are resolved the same way (env overrides applied, Auto
    // collapsed), so a recovery run launched with the same settings
    // replays while SOCGEN_SIM_THREADS=4 vs unset does not.
    h.field(rtl::simBackendName(rtl::resolveSimBackend(options_.simBackend)));
    h.field(static_cast<std::uint64_t>(rtl::resolveSimThreads(options_.simThreads)));
    h.field(static_cast<std::uint64_t>(rtl::resolveSimLanes(options_.simBatchLanes)));
    h.field(projectName);
    h.field(graph.renderDsl(projectName));
    h.field(options_.device.part).field(options_.device.board);
    h.field(options_.device.lut).field(options_.device.ff);
    h.field(options_.device.bram18).field(options_.device.dsp);
    h.field(options_.device.fabricClockMhz);
    h.field(static_cast<std::uint64_t>(options_.dmaPolicy));
    h.field(static_cast<std::uint64_t>(options_.runSynthesis ? 1 : 0));
    h.field(static_cast<std::uint64_t>(options_.generateSoftware ? 1 : 0));
    h.field(options_.toolVersion);
    h.field(hls::fingerprintDirectives(options_.defaultDirectives).hex());
    for (const auto& [name, directives] : options_.kernelDirectives) {
        h.field(name).field(hls::fingerprintDirectives(directives).hex());
    }
    return h.digest().hex();
}

void Flow::simulateToolWait(double toolSeconds) const {
    if (options_.toolLatencyMsPerToolSecond <= 0.0 || toolSeconds <= 0.0) {
        return;
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        toolSeconds * options_.toolLatencyMsPerToolSecond));
}

bool Flow::consumeTransientFailure(const std::string& kernel) {
    const std::lock_guard<std::mutex> lock(faultMutex_);
    const auto it = transientRemaining_.find(kernel);
    if (it == transientRemaining_.end() || it->second == 0) {
        return false;
    }
    --it->second;
    return true;
}

Flow::HlsAttemptOut Flow::hlsAttempt(const TgNode& node) {
    const hls::ProcessNetwork& net = nodeNetwork(node);
    validateNodeInterface(node, net);
    // Trivial network == the legacy single-kernel path: the node's sole
    // process IS the node, synthesized and keyed exactly as before the
    // process-network model existed. Multi-process networks go through
    // per-process stages instead (see run()).
    const hls::Kernel& kernel = net.processes().front().kernel;
    return hlsKernelAttempt(kernel, directivesFor(node), node.name, "hls:" + node.name,
                            node.name);
}

Flow::HlsAttemptOut Flow::hlsKernelAttempt(const hls::Kernel& kernel,
                                           const hls::Directives& directives,
                                           const std::string& label,
                                           const std::string& stageName,
                                           const std::string& nodeName) {
    HlsAttemptOut out;
    out.key =
        ArtifactStore::deriveKey(kernel, directives, options_.device, options_.toolVersion);

    // Reuse order: in-memory cache (same process), then the persistent
    // store (earlier run / crashed run). A store object that fails
    // validation is reported and rebuilt — never silently loaded.
    const auto tryReuse = [this, &label, &stageName, &out]() -> bool {
        if (cache_ != nullptr) {
            if (std::optional<hls::HlsResult> hit = cache_->find(out.key)) {
                Logger::global().info("hls: cache hit for " + label);
                out.cacheHit = true;
                out.result = std::move(*hit);
                return true;
            }
        }
        if (store_ != nullptr) {
            ArtifactStore::LoadDiag diag;
            if (std::optional<hls::HlsResult> loaded = store_->load(out.key, &diag)) {
                Logger::global().info("hls: artifact store hit for " + label);
                out.storeHit = true;
                out.resumedFromJournal = committedAtOpen_.count(stageName) > 0;
                out.result = std::move(*loaded);
                return true;
            }
            if (!diag.whyMiss.empty()) {
                out.rejectedWhy = diag.whyMiss;
                out.quarantined = diag.quarantined;
                Logger::global().warn(format("hls: stored artifact of %s rejected (%s); "
                                             "re-synthesizing",
                                             label.c_str(), diag.whyMiss.c_str()));
            }
        }
        return false;
    };

    // Fault hooks match either the exact label ("node/process") or the
    // node name — injecting by node fails every process of that node.
    const bool injected = options_.injectHlsFailures.count(label) > 0 ||
                          options_.injectHlsFailures.count(nodeName) > 0;
    if (!injected) {
        if (tryReuse()) {
            return out;
        }
        if (options_.synthGate != nullptr) {
            // Become (or wait for) the key's leader. The token rides in
            // `out` so leadership lasts until the commit has persisted
            // the result — followers then wake to a cache/store hit.
            SynthGate::Claim claim = options_.synthGate->claim(out.key);
            out.gateToken = std::move(claim.token);
            if (claim.waited) {
                out.dedupedInFlight = true;
                if (tryReuse()) {
                    // Release immediately: we are not going to synthesize,
                    // so other waiting followers can re-check right away.
                    out.gateToken.reset();
                    return out;
                }
                // The leader failed (nothing persisted): lead the
                // synthesis ourselves.
            }
        }
    }
    if (injected) {
        // Fires on every attempt so the failure is deterministic even when
        // a previous architecture already synthesized this kernel.
        throw HlsError(format("injected HLS failure for kernel \"%s\"", label.c_str()));
    }
    if (consumeTransientFailure(label) ||
        (label != nodeName && consumeTransientFailure(nodeName))) {
        throw HlsError(
            format("injected transient HLS failure for kernel \"%s\"", label.c_str()));
    }
    if (options_.remoteHls != nullptr) {
        // Dispatch to the out-of-process worker fleet. A fleet that
        // cannot serve (no spawnable workers, redispatch budget blown)
        // degrades gracefully to the in-process engine below; a genuine
        // synthesis failure (HlsError) propagates exactly like an
        // in-process one. Processes of a network ship as plain kernels,
        // so the wire protocol is untouched by the network model.
        try {
            RemoteSynthesis remote =
                options_.remoteHls->synthesize(kernel, directives, out.key);
            out.result = std::move(remote.result);
            out.leaseEpoch = remote.leaseEpoch;
            out.remoteWorker = true;
            out.toolSeconds = out.result.toolSeconds;
            out.fromEngine = true;
            simulateToolWait(out.toolSeconds);
            return out;
        } catch (const WorkerUnavailableError& e) {
            Logger::global().warn(format("hls: worker fleet unavailable for %s (%s); "
                                         "falling back to in-process synthesis",
                                         label.c_str(), e.what()));
        }
    }
    out.result = engine_.synthesize(kernel, directives);
    out.toolSeconds = out.result.toolSeconds;
    out.fromEngine = true;
    simulateToolWait(out.toolSeconds);
    return out;
}

void Flow::hlsPersist(const HlsAttemptOut& out) {
    if (cache_ != nullptr && (out.fromEngine || out.storeHit)) {
        cache_->store(out.key, out.result);
    }
    if (store_ != nullptr && out.fromEngine) {
        if (out.leaseEpoch > 0) {
            // Remote result: fenced commit. Only the epoch of the live
            // dispatch may land; a zombie worker's resurrected commit
            // throws StaleLeaseError instead of clobbering the artifact.
            store_->storeFenced(out.key, out.result, out.leaseEpoch);
        } else {
            store_->store(out.key, out.result);
        }
    }
}

std::pair<hls::HlsResult, double> Flow::synthesizeNode(const TgNode& node) {
    const hls::ProcessNetwork& net = nodeNetwork(node);
    if (net.trivial()) {
        StageSupervisor supervisor(options_.stagePolicy);
        HlsAttemptOut out =
            supervisor.run("hls:" + node.name, [this, &node] { return hlsAttempt(node); });
        hlsPersist(out);
        return {std::move(out.result), out.toolSeconds};
    }
    // Multi-process network: synthesize every process under its own
    // artifact key, then assemble the dataflow wrapper (cheap, never
    // cached). Tool time charged is the sum of process charges — 0 for
    // cache/store hits — plus the assembly cost.
    validateNodeInterface(node, net);
    std::vector<hls::HlsResult> parts;
    parts.reserve(net.processes().size());
    double charged = 0.0;
    StageSupervisor supervisor(options_.stagePolicy);
    for (const hls::Process& p : net.processes()) {
        const std::string stageName = "hls:" + node.name + "/" + p.name;
        HlsAttemptOut out = supervisor.run(stageName, [&, this] {
            return hlsKernelAttempt(p.kernel, directivesForProcess(node, net, p.name),
                                    node.name + "/" + p.name, stageName, node.name);
        });
        hlsPersist(out);
        charged += out.toolSeconds;
        parts.push_back(std::move(out.result));
    }
    std::vector<const hls::HlsResult*> ptrs;
    ptrs.reserve(parts.size());
    for (const hls::HlsResult& r : parts) {
        ptrs.push_back(&r);
    }
    hls::HlsResult assembled = engine_.assembleNetwork(net, ptrs);
    charged += assembled.toolSeconds;
    return {std::move(assembled), charged};
}

Flow::Integration Flow::integrate(const std::string& projectName, const TaskGraph& graph,
                                  const FlowResult& result,
                                  const std::set<std::string>& degraded) const {
    soc::BlockDesign design(projectName, options_.device, options_.dmaPolicy);
    // Degraded nodes get no hardware instance; their links are rewired to
    // the PS ('soc endpoints) below so surviving cores stay fully
    // connected and the PS feeds/drains them in software.
    for (const auto& node : graph.nodes()) {
        if (degraded.count(node.name) > 0) {
            continue;
        }
        const hls::HlsResult& hlsResult = result.hlsResults.at(node.name);
        std::vector<soc::CorePort> streamPorts;
        for (const auto& kp : hlsResult.program.ports) {
            if (hls::isStreamPort(kp.kind)) {
                streamPorts.push_back(soc::CorePort{
                    kp.name, hls::InterfaceProtocol::AxiStream,
                    kp.kind == hls::PortKind::StreamIn, kp.width});
            }
        }
        design.addHlsCore(node.name, hlsResult.resources, std::move(streamPorts),
                          node.hasAxiLitePort());
    }
    for (const auto& link : graph.links()) {
        const bool fromDegraded = !link.from.soc && degraded.count(link.from.node) > 0;
        const bool toDegraded = !link.to.soc && degraded.count(link.to.node) > 0;
        // A link with no surviving hardware end disappears entirely.
        if ((fromDegraded || link.from.soc) && (toDegraded || link.to.soc)) {
            continue;
        }
        // Stream width comes from the hardware end(s); direction checks
        // happen inside BlockDesign::finalise().
        unsigned width = 32;
        const auto widthOf = [&](const TgEndpoint& ep, bool wantInput) -> unsigned {
            const hls::Program& p = result.programs.at(ep.node);
            for (const auto& kp : p.ports) {
                if (kp.name == ep.port) {
                    const bool isInput = kp.kind == hls::PortKind::StreamIn;
                    if (isInput != wantInput) {
                        throw DslError(format(
                            "link endpoint (\"%s\",\"%s\") has the wrong direction",
                            ep.node.c_str(), ep.port.c_str()));
                    }
                    return kp.width;
                }
            }
            throw DslError(format("link endpoint (\"%s\",\"%s\") not found on kernel",
                                  ep.node.c_str(), ep.port.c_str()));
        };
        if (!link.from.soc && !fromDegraded) {
            width = widthOf(link.from, false);
        }
        if (!link.to.soc && !toDegraded) {
            width = std::max(width, widthOf(link.to, true));
        }
        const auto toEndpoint = [](const TgEndpoint& ep, bool epDegraded) {
            return (ep.soc || epDegraded)
                       ? soc::StreamEndpoint{soc::StreamEndpoint::kSoc, ""}
                       : soc::StreamEndpoint{ep.node, ep.port};
        };
        design.connectStream(toEndpoint(link.from, fromDegraded),
                             toEndpoint(link.to, toDegraded), width);
    }
    for (const auto& connect : graph.connects()) {
        if (degraded.count(connect.node) > 0) {
            continue;
        }
        design.connectLite(connect.node);
    }
    design.finalise();
    Integration out;
    out.tclText = soc::TclEmitter{}.emitProject(design);
    out.design = std::move(design);
    return out;
}

FlowResult Flow::run(const std::string& projectName, const TaskGraph& graph) {
    Logger::global().info("flow: starting project " + projectName);
    FlowResult result;
    result.projectName = projectName;
    result.graph = graph;

    // Journal bring-up (outputDir flows only). A matching header means a
    // previous run — possibly one that crashed — left trustworthy commit
    // records; a mismatch means the flow inputs changed and the journal
    // is reset, which also invalidates any resume decisions (the store
    // stays: its keys are content-addressed, so stale entries are inert).
    std::optional<FlowJournal> journal;
    committedAtOpen_.clear();
    digestsAtOpen_.clear();
    if (!options_.outputDir.empty()) {
        journal.emplace(FlowJournal::open(options_.outputDir + "/.socgen/journal/" +
                                          projectName + ".jsonl"));
        const std::string fingerprint = flowFingerprint(projectName, graph);
        if (!journal->matchesHeader(fingerprint)) {
            journal->reset(fingerprint, "project=" + projectName);
        } else {
            for (const std::string& stage : journal->committedStages()) {
                committedAtOpen_.insert(stage);
                if (const auto digest = journal->committedDigest(stage)) {
                    digestsAtOpen_[stage] = *digest;
                }
            }
            if (!committedAtOpen_.empty()) {
                Logger::global().info(
                    format("flow: journal shows %zu committed stage(s); resuming",
                           committedAtOpen_.size()));
            }
        }
    }
    struct OpenStateScope {
        Flow& flow;
        ~OpenStateScope() {
            flow.committedAtOpen_.clear();
            flow.digestsAtOpen_.clear();
        }
    } openScope{*this};

    // Event bus: built-in subscribers first (log lines, the per-stage
    // diagnostics table, the optional Chrome-trace timeline), then any
    // caller-provided ones.
    FlowEventBus bus;
    auto table = std::make_shared<StageTableSubscriber>();
    bus.subscribe(std::make_shared<LogSubscriber>());
    bus.subscribe(table);
    std::shared_ptr<ChromeTraceSubscriber> trace;
    if (!options_.traceOutPath.empty()) {
        trace = std::make_shared<ChromeTraceSubscriber>();
        bus.subscribe(trace);
    }
    for (const auto& subscriber : options_.subscribers) {
        bus.subscribe(subscriber);
    }

    const auto& nodes = graph.nodes();
    std::vector<FlowDiagnostics::NodeOutcome> outcomes(nodes.size());
    std::mutex resultMutex;

    // ----- The flow, declared as a stage graph. Each stage states its
    // dependencies and splits into a pure supervised `attempt` and a
    // winner-only `commit`; journaling, retry, fault hooks, events and
    // scheduling all live in the executor.
    StageGraph stages;

    const double scalaToolSeconds = 5.4 + 0.15 * static_cast<double>(nodes.size());
    stages.add(Stage{
        .name = "scala",  // "compile the Scala task graph" (paper: ~6 s)
        .deps = {},
        .attempt =
            [&](const StageContext&) -> std::any {
                graph.validate();
                std::string dsl = graph.renderDsl(projectName);
                simulateToolWait(scalaToolSeconds);
                return dsl;
            },
        .commit =
            [&](std::any&& value, const StageRun&) {
                result.dslText = std::any_cast<std::string>(std::move(value));
                StageOutput out;
                out.digest = digest128(result.dslText).hex();
                out.toolSeconds = scalaToolSeconds;
                out.timelineLabel = "SCALA";
                return out;
            },
    });

    // Per-node HLS: one graph stage per node, all depending only on
    // "scala", so they fan out across the worker pool. Cached across
    // architectures and, via the artifact store, across runs and crashes.
    //
    // A multi-process network node expands instead into one stage per
    // process ("hls:<node>/<proc>", independent — they fan out across the
    // pool and, under a service scheduler, across tenants) plus a cheap
    // assembly stage named "hls:<node>" so every downstream dependency
    // (integrate, journaling, diagnostics) is shape-agnostic.
    std::vector<std::vector<std::optional<hls::HlsResult>>> processResults(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const TgNode& node = nodes[i];
        const std::string stageName = "hls:" + node.name;
        if (kernels_.has(node.name) && !kernels_.network(node.name).trivial()) {
            const hls::ProcessNetwork& net = kernels_.network(node.name);
            const std::string networkKey = networkKeyFor(node, net);
            outcomes[i].node = node.name;
            outcomes[i].processes.resize(net.processes().size());
            processResults[i].resize(net.processes().size());
            std::vector<std::string> assembleDeps = {"scala"};
            for (std::size_t j = 0; j < net.processes().size(); ++j) {
                const std::string procName = net.processes()[j].name;
                const std::string procStage = stageName + "/" + procName;
                outcomes[i].processes[j].process = procName;
                assembleDeps.push_back(procStage);
                stages.add(Stage{
                    .name = procStage,
                    .deps = {"scala"},
                    .attempt =
                        [this, &node, &net, procName, procStage](
                            const StageContext&) -> std::any {
                            validateNodeInterface(node, net);
                            const hls::Process& p = net.process(procName);
                            return hlsKernelAttempt(
                                p.kernel, directivesForProcess(node, net, procName),
                                node.name + "/" + procName, procStage, node.name);
                        },
                    .commit =
                        [this, &node, i, j, &outcomes, &processResults, &resultMutex,
                         &bus, procStage](std::any&& value, const StageRun& meta) {
                            HlsAttemptOut a =
                                std::any_cast<HlsAttemptOut>(std::move(value));
                            FlowDiagnostics::ProcessOutcome& po =
                                outcomes[i].processes[j];
                            po.artifactKey = a.key;
                            po.cacheHit = a.cacheHit;
                            po.storeHit = a.storeHit;
                            po.resumedFromJournal = a.resumedFromJournal;
                            po.dedupedInFlight = a.dedupedInFlight;
                            po.remoteWorker = a.remoteWorker;
                            po.toolSeconds = a.toolSeconds;
                            po.attempts =
                                a.fromEngine ? static_cast<unsigned>(meta.attempts) : 0u;
                            FlowEvent event;
                            event.stage = procStage;
                            if (!a.rejectedWhy.empty()) {
                                event.kind = FlowEventKind::ArtifactRejected;
                                event.detail = a.rejectedWhy;
                                bus.publish(event);
                            }
                            if (a.quarantined) {
                                event.kind = FlowEventKind::ArtifactQuarantined;
                                event.detail = a.rejectedWhy;
                                bus.publish(event);
                            }
                            if (a.remoteWorker) {
                                event.kind = FlowEventKind::RemoteSynthesis;
                                event.detail =
                                    format("lease epoch %llu",
                                           static_cast<unsigned long long>(a.leaseEpoch));
                                bus.publish(event);
                            }
                            if (a.cacheHit || a.storeHit) {
                                event.kind = a.cacheHit ? FlowEventKind::CacheHit
                                                        : FlowEventKind::StoreHit;
                                event.detail = a.resumedFromJournal ? "journaled" : "";
                                bus.publish(event);
                            }
                            hlsPersist(a);
                            {
                                const std::lock_guard<std::mutex> lock(resultMutex);
                                processResults[i][j] = std::move(a.result);
                            }
                            StageOutput out;
                            out.digest = a.key;
                            out.toolSeconds = a.toolSeconds;
                            out.timelineLabel = "HLS " + node.name + "/" + po.process;
                            return out;
                        },
                    .absorbFailure =
                        [this, &node, i, j, &outcomes, procName](
                            const std::exception& e, const StageRun& meta) -> std::string {
                            const bool engineKind =
                                dynamic_cast<const HlsError*>(&e) != nullptr ||
                                dynamic_cast<const StageTimeoutError*>(&e) != nullptr;
                            if (!engineKind ||
                                options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                                return "";
                            }
                            Logger::global().info(
                                format("hls: process %s/%s degraded: %s",
                                       node.name.c_str(), procName.c_str(), e.what()));
                            FlowDiagnostics::ProcessOutcome& po =
                                outcomes[i].processes[j];
                            po.degraded = true;
                            po.error = e.what();
                            po.attempts = static_cast<unsigned>(meta.attempts);
                            return "degraded: " + po.error;
                        },
                    .trackResume = false,
                });
            }
            stages.add(Stage{
                .name = stageName,
                .deps = std::move(assembleDeps),
                .attempt =
                    [this, &node, &net, i, &outcomes, &processResults](
                        const StageContext&) -> std::any {
                        // Every process stage finished (committed or
                        // absorbed) before this attempt — the deps are a
                        // happens-before edge, like integrate's.
                        std::vector<const hls::HlsResult*> parts;
                        parts.reserve(processResults[i].size());
                        for (std::size_t j = 0; j < processResults[i].size(); ++j) {
                            if (outcomes[i].processes[j].degraded ||
                                !processResults[i][j].has_value()) {
                                throw HlsError(format(
                                    "network \"%s\": process \"%s\" has no synthesized "
                                    "core; the node degrades as a whole",
                                    node.name.c_str(),
                                    outcomes[i].processes[j].process.c_str()));
                            }
                            parts.push_back(&*processResults[i][j]);
                        }
                        return engine_.assembleNetwork(net, parts);
                    },
                .commit =
                    [this, &node, i, &outcomes, &result, &resultMutex, networkKey](
                        std::any&& value, const StageRun&) {
                        hls::HlsResult assembled =
                            std::any_cast<hls::HlsResult>(std::move(value));
                        FlowDiagnostics::NodeOutcome& outcome = outcomes[i];
                        outcome.node = node.name;
                        outcome.artifactKey = networkKey;
                        bool allCache = !outcome.processes.empty();
                        bool anyStore = false;
                        bool allJournal = true;
                        for (const auto& po : outcome.processes) {
                            allCache = allCache && po.cacheHit;
                            anyStore = anyStore || po.storeHit;
                            allJournal = allJournal &&
                                         (po.resumedFromJournal || po.cacheHit);
                            outcome.remoteWorker = outcome.remoteWorker || po.remoteWorker;
                            outcome.dedupedInFlight =
                                outcome.dedupedInFlight || po.dedupedInFlight;
                            outcome.toolSeconds += po.toolSeconds;
                            outcome.attempts += po.attempts;
                        }
                        // Node-level reuse flags are the conjunction over
                        // processes: the node was "a cache hit" only if no
                        // process touched the engine.
                        outcome.cacheHit = allCache;
                        outcome.storeHit = !allCache && outcome.attempts == 0 && anyStore;
                        outcome.resumedFromJournal = outcome.storeHit && allJournal;
                        const double assemblySeconds = assembled.toolSeconds;
                        outcome.toolSeconds += assemblySeconds;
                        {
                            const std::lock_guard<std::mutex> lock(resultMutex);
                            result.programs.emplace(node.name, assembled.program);
                            result.hlsResults.emplace(node.name, std::move(assembled));
                        }
                        StageOutput out;
                        out.digest = networkKey;
                        out.toolSeconds = assemblySeconds;
                        out.timelineLabel = "HLS " + node.name;
                        return out;
                    },
                .absorbFailure =
                    [this, &node, i, &outcomes](const std::exception& e,
                                                const StageRun& meta) -> std::string {
                        const bool engineKind =
                            dynamic_cast<const HlsError*>(&e) != nullptr ||
                            dynamic_cast<const StageTimeoutError*>(&e) != nullptr;
                        if (!engineKind ||
                            options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                            return "";
                        }
                        Logger::global().info(
                            format("hls: node %s degraded to software: %s",
                                   node.name.c_str(), e.what()));
                        FlowDiagnostics::NodeOutcome& outcome = outcomes[i];
                        outcome.node = node.name;
                        outcome.degraded = true;
                        outcome.error = e.what();
                        outcome.attempts += static_cast<unsigned>(meta.attempts);
                        return "degraded: " + outcome.error;
                    },
                .postCommit =
                    [this, &node, i, &outcomes] {
                        if (faultHooks_.consumeCorrupt(node.name)) {
                            // The network key names no store object;
                            // corrupt the first process artifact present.
                            for (const auto& po : outcomes[i].processes) {
                                if (store_ != nullptr && !po.artifactKey.empty() &&
                                    store_->contains(po.artifactKey)) {
                                    Logger::global().info(
                                        "fault: corrupting stored artifact of " +
                                        node.name + "/" + po.process);
                                    store_->corruptObject(po.artifactKey);
                                    break;
                                }
                            }
                        }
                    },
                .trackResume = false,
            });
            continue;
        }
        stages.add(Stage{
            .name = stageName,
            .deps = {"scala"},
            .attempt = [this, &node](const StageContext&) -> std::any {
                return hlsAttempt(node);
            },
            .commit =
                [this, &node, i, &outcomes, &result, &resultMutex, &bus, stageName](
                    std::any&& value, const StageRun& meta) {
                    HlsAttemptOut a = std::any_cast<HlsAttemptOut>(std::move(value));
                    FlowDiagnostics::NodeOutcome& outcome = outcomes[i];
                    outcome.node = node.name;
                    outcome.artifactKey = a.key;
                    outcome.cacheHit = a.cacheHit;
                    outcome.storeHit = a.storeHit;
                    outcome.resumedFromJournal = a.resumedFromJournal;
                    outcome.dedupedInFlight = a.dedupedInFlight;
                    outcome.remoteWorker = a.remoteWorker;
                    outcome.leaseEpoch = a.leaseEpoch;
                    outcome.toolSeconds = a.toolSeconds;
                    outcome.attempts =
                        a.fromEngine ? static_cast<unsigned>(meta.attempts) : 0u;
                    FlowEvent event;
                    event.stage = stageName;
                    if (!a.rejectedWhy.empty()) {
                        event.kind = FlowEventKind::ArtifactRejected;
                        event.detail = a.rejectedWhy;
                        bus.publish(event);
                    }
                    if (a.quarantined) {
                        event.kind = FlowEventKind::ArtifactQuarantined;
                        event.detail = a.rejectedWhy;
                        bus.publish(event);
                    }
                    if (a.remoteWorker) {
                        event.kind = FlowEventKind::RemoteSynthesis;
                        event.detail = format("lease epoch %llu",
                                              static_cast<unsigned long long>(a.leaseEpoch));
                        bus.publish(event);
                    }
                    if (a.cacheHit || a.storeHit) {
                        event.kind = a.cacheHit ? FlowEventKind::CacheHit
                                                : FlowEventKind::StoreHit;
                        event.detail = a.resumedFromJournal ? "journaled" : "";
                        bus.publish(event);
                    }
                    hlsPersist(a);
                    {
                        const std::lock_guard<std::mutex> lock(resultMutex);
                        result.programs.emplace(node.name, a.result.program);
                        result.hlsResults.emplace(node.name, std::move(a.result));
                    }
                    StageOutput out;
                    out.digest = a.key;
                    out.toolSeconds = a.toolSeconds;
                    out.timelineLabel = "HLS " + node.name;
                    return out;
                },
            .absorbFailure =
                [this, &node, i, &outcomes](const std::exception& e,
                                            const StageRun& meta) -> std::string {
                    // An HlsError is an engine failure and a
                    // StageTimeoutError an engine hang; under the Degrade
                    // policy the node is isolated instead of sinking the
                    // whole flow. Anything else (DslError, FlowCrashError,
                    // internal errors) always propagates.
                    const bool engineKind =
                        dynamic_cast<const HlsError*>(&e) != nullptr ||
                        dynamic_cast<const StageTimeoutError*>(&e) != nullptr;
                    if (!engineKind ||
                        options_.hlsFailurePolicy != HlsFailurePolicy::Degrade) {
                        return "";
                    }
                    Logger::global().info(format("hls: node %s degraded to software: %s",
                                                 node.name.c_str(), e.what()));
                    FlowDiagnostics::NodeOutcome& outcome = outcomes[i];
                    outcome.node = node.name;
                    outcome.degraded = true;
                    outcome.error = e.what();
                    outcome.attempts = static_cast<unsigned>(meta.attempts);
                    return "degraded: " + outcome.error;
                },
            .postCommit =
                [this, &node, i, &outcomes] {
                    if (faultHooks_.consumeCorrupt(node.name)) {
                        const std::string& key = outcomes[i].artifactKey;
                        if (store_ != nullptr && !key.empty() && store_->contains(key)) {
                            Logger::global().info("fault: corrupting stored artifact of " +
                                                  node.name);
                            store_->corruptObject(key);
                        }
                    }
                },
            .trackResume = false,  // HLS resume is tracked per node instead
        });
    }

    std::vector<std::string> integrateDeps = {"scala"};
    for (const auto& node : nodes) {
        integrateDeps.push_back("hls:" + node.name);
    }
    const auto projectToolSeconds = [](const soc::BlockDesign& design) {
        return 31.0 + 2.4 * static_cast<double>(design.instances().size());
    };
    stages.add(Stage{
        .name = "integrate",  // Vivado project generation (~50 s)
        .deps = std::move(integrateDeps),
        .attempt =
            [&](const StageContext&) -> std::any {
                std::set<std::string> degraded;
                for (const auto& outcome : outcomes) {
                    if (outcome.degraded) {
                        degraded.insert(outcome.node);
                    }
                }
                Integration integration = integrate(projectName, graph, result, degraded);
                simulateToolWait(projectToolSeconds(integration.design));
                return integration;
            },
        .commit =
            [&](std::any&& value, const StageRun&) {
                Integration integration = std::any_cast<Integration>(std::move(value));
                result.tclText = std::move(integration.tclText);
                result.design = std::move(integration.design);
                StageOutput out;
                out.digest = digest128(result.tclText).hex();
                out.toolSeconds = projectToolSeconds(result.design);
                out.timelineLabel = "PROJECT " + projectName;
                return out;
            },
    });

    if (options_.runSynthesis) {
        stages.add(Stage{
            .name = "synth",  // synthesis, implementation, bitstream
            .deps = {"integrate"},
            .attempt =
                [&](const StageContext&) -> std::any {
                    SynthOut out;
                    out.synthesis = soc::SynthesisModel{}.run(result.design);
                    out.bitstream = soc::generateBitstream(result.design, out.synthesis);
                    simulateToolWait(out.synthesis.totalSeconds());
                    return out;
                },
            .commit =
                [&](std::any&& value, const StageRun&) {
                    SynthOut synthOut = std::any_cast<SynthOut>(std::move(value));
                    result.synthesis = std::move(synthOut.synthesis);
                    result.bitstream = std::move(synthOut.bitstream);
                    StageOutput out;
                    out.digest = digest128(result.bitstream.serialize()).hex();
                    out.toolSeconds = result.synthesis.totalSeconds();
                    out.timelineLabel = "SYNTH " + projectName;
                    return out;
                },
        });
    }

    // Software generation rides alongside synthesis: the device tree and
    // the drivers need only the integrated design, so they overlap the
    // (long) synth stage; boot packaging waits for both inputs.
    if (options_.generateSoftware) {
        // `result.design` is written by integrate's commit, which
        // happens-before every dependent attempt runs.
        const auto deviceTreeToolSeconds = [&result] {
            return 2.5 + 0.3 * static_cast<double>(result.design.lites().size());
        };
        const auto driversToolSeconds = [&result] {
            return 2.0 + 0.5 * static_cast<double>(result.design.lites().size());
        };
        stages.add(Stage{
            .name = "devicetree",
            .deps = {"integrate"},
            .attempt =
                [&, deviceTreeToolSeconds](const StageContext&) -> std::any {
                    std::string tree = sw::DeviceTreeGenerator{}.generate(result.design);
                    simulateToolWait(deviceTreeToolSeconds());
                    return tree;
                },
            .commit =
                [&, deviceTreeToolSeconds](std::any&& value, const StageRun&) {
                    result.deviceTree = std::any_cast<std::string>(std::move(value));
                    StageOutput out;
                    out.digest = digest128(result.deviceTree).hex();
                    out.toolSeconds = deviceTreeToolSeconds();
                    out.timelineLabel = "SW devicetree";
                    return out;
                },
        });
        stages.add(Stage{
            .name = "drivers",
            .deps = {"integrate"},
            .attempt =
                [&, driversToolSeconds](const StageContext&) -> std::any {
                    auto files = sw::DriverGenerator{}.generate(result.design,
                                                                result.programs);
                    simulateToolWait(driversToolSeconds());
                    return files;
                },
            .commit =
                [&, driversToolSeconds](std::any&& value, const StageRun&) {
                    result.driverFiles =
                        std::any_cast<std::vector<sw::GeneratedFile>>(std::move(value));
                    HashStream h;
                    for (const auto& file : result.driverFiles) {
                        h.field(file.path).field(file.content);
                    }
                    StageOutput out;
                    out.digest = h.digest().hex();
                    out.toolSeconds = driversToolSeconds();
                    out.timelineLabel = "SW drivers";
                    return out;
                },
        });
        if (options_.runSynthesis) {
            stages.add(Stage{
                .name = "boot",
                .deps = {"synth", "devicetree"},
                .attempt = [&](const StageContext&) -> std::any {
                    sw::BootImage image = sw::makeBootImage(result.design, result.bitstream,
                                                            result.deviceTree);
                    simulateToolWait(1.5);
                    return image;
                },
                .commit =
                    [&](std::any&& value, const StageRun&) {
                        result.bootImage = std::any_cast<sw::BootImage>(std::move(value));
                        StageOutput out;
                        out.digest = digest128(result.bootImage.serialize()).hex();
                        out.toolSeconds = 1.5;
                        out.timelineLabel = "SW boot";
                        return out;
                    },
            });
        }
    }

    if (!options_.outputDir.empty()) {
        std::vector<std::string> artifactDeps = {"integrate"};
        if (options_.runSynthesis) {
            artifactDeps.push_back("synth");
        }
        if (options_.generateSoftware) {
            artifactDeps.push_back("devicetree");
            artifactDeps.push_back("drivers");
            if (options_.runSynthesis) {
                artifactDeps.push_back("boot");
            }
        }
        stages.add(Stage{
            .name = "artifacts",  // write the project directory (atomic per file)
            .deps = std::move(artifactDeps),
            .attempt =
                [&](const StageContext&) -> std::any {
                    writeArtifacts(result);
                    return std::any{};
                },
            .commit =
                [&](std::any&&, const StageRun&) {
                    StageOutput out;
                    out.digest = digest128(result.dslText + result.tclText).hex();
                    return out;
                },
        });
    }

    // ----- Execute.
    ExecutorConfig config;
    config.jobs = std::max(1u, options_.jobs);
    config.stagePolicy = options_.stagePolicy;
    config.journal = journal.has_value() ? &*journal : nullptr;
    config.scheduler = options_.stageScheduler.get();
    config.digestsAtOpen = digestsAtOpen_;
    StageGraphExecutor executor(config, &bus, &faultHooks_);

    std::vector<StageExecution> executions;
    try {
        executions = executor.execute(stages);
    } catch (...) {
        if (trace != nullptr) {
            trace->write(options_.traceOutPath);
        }
        throw;
    }

    // ----- Assemble the timeline and the diagnostics, in deterministic
    // topological order (never in completion order).
    for (const std::size_t index : stages.topologicalOrder()) {
        const StageExecution& exec = executions[index];
        if (exec.ran && !exec.absorbed && !exec.output.timelineLabel.empty()) {
            result.timeline.add(exec.output.timelineLabel, exec.hostMs,
                                exec.output.toolSeconds);
        }
    }
    FlowDiagnostics& diag = result.diagnostics;
    for (auto& outcome : outcomes) {
        diag.nodes.push_back(std::move(outcome));
    }
    diag.stages = table->orderedRows(stages.topologicalNames());
    diag.stageRetries = executor.stats().stageRetries;
    diag.stageTimeouts = executor.stats().stageTimeouts;
    diag.resumedStages = executor.stats().resumedStages;
    diag.digestMismatches = executor.stats().digestMismatches;
    diag.corruptArtifacts = table->artifactRejections();
    if (diag.anyDegraded()) {
        Logger::global().info(diag.render());
    }
    if (trace != nullptr) {
        trace->write(options_.traceOutPath);
    }
    Logger::global().info(format("flow: project %s complete (%.1f simulated tool-seconds)",
                                 projectName.c_str(),
                                 result.timeline.totalToolSeconds()));
    return result;
}

void Flow::writeArtifacts(const FlowResult& result) const {
    // Atomic per-file writes: a crash mid-write leaves each artifact
    // either whole (old or new) or absent, never torn.
    const std::string dir = options_.outputDir + "/" + result.projectName;
    writeFileAtomic(dir + "/" + result.projectName + ".tg", result.dslText);
    writeFileAtomic(dir + "/" + result.projectName + ".tcl", result.tclText);
    for (const auto& [name, hlsResult] : result.hlsResults) {
        writeFileAtomic(dir + "/hls/" + name + ".vhd", hlsResult.vhdl);
        writeFileAtomic(dir + "/hls/" + name + ".v", hlsResult.verilog);
        writeFileAtomic(dir + "/hls/" + name + "_directives.tcl", hlsResult.directiveText);
        writeFileAtomic(dir + "/hls/" + name + "_report.txt", hlsResult.reportText);
    }
    if (options_.runSynthesis) {
        writeFileAtomic(dir + "/" + result.projectName + ".bit",
                        result.bitstream.serialize());
        writeFileAtomic(dir + "/utilisation.txt", result.synthesis.utilisationReport());
    }
    if (options_.generateSoftware) {
        writeFileAtomic(dir + "/devicetree.dts", result.deviceTree);
        for (const auto& file : result.driverFiles) {
            writeFileAtomic(dir + "/sw/" + file.path, file.content);
        }
        if (options_.runSynthesis) {
            writeFileAtomic(dir + "/boot.bin", result.bootImage.serialize());
        }
    }
    writeFileAtomic(dir + "/design.dot", result.design.toDot());
    writeFileAtomic(dir + "/REPORT.md", renderFlowReport(result));
}

} // namespace socgen::core
