#include "socgen/core/htg.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace socgen::core {

bool operator==(const TgPort& a, const TgPort& b) {
    return a.name == b.name && a.protocol == b.protocol;
}
bool operator==(const TgNode& a, const TgNode& b) {
    return a.name == b.name && a.ports == b.ports;
}
bool operator==(const TgLink& a, const TgLink& b) {
    return a.from == b.from && a.to == b.to;
}
bool operator==(const TgConnect& a, const TgConnect& b) {
    return a.node == b.node;
}
bool operator==(const TaskGraph& a, const TaskGraph& b) {
    return a.nodes_ == b.nodes_ && a.links_ == b.links_ && a.connects_ == b.connects_;
}

bool TgNode::hasPort(std::string_view portName) const {
    return std::any_of(ports.begin(), ports.end(),
                       [&](const TgPort& p) { return p.name == portName; });
}

const TgPort& TgNode::port(std::string_view portName) const {
    for (const auto& p : ports) {
        if (p.name == portName) {
            return p;
        }
    }
    throw DslError(format("node %s has no port '%s'", name.c_str(),
                          std::string(portName).c_str()));
}

bool TgNode::hasAxiLitePort() const {
    return std::any_of(ports.begin(), ports.end(), [](const TgPort& p) {
        return p.protocol == hls::InterfaceProtocol::AxiLite;
    });
}

std::string TgEndpoint::str() const {
    return soc ? "'soc" : "(\"" + node + "\",\"" + port + "\")";
}

void TaskGraph::addNode(TgNode node) {
    if (hasNode(node.name)) {
        throw DslError("duplicate node: " + node.name);
    }
    nodes_.push_back(std::move(node));
}

void TaskGraph::addLink(TgLink link) {
    links_.push_back(std::move(link));
}

void TaskGraph::addConnect(TgConnect connect) {
    connects_.push_back(std::move(connect));
}

bool TaskGraph::hasNode(std::string_view name) const {
    return std::any_of(nodes_.begin(), nodes_.end(),
                       [&](const TgNode& n) { return n.name == name; });
}

const TgNode& TaskGraph::node(std::string_view name) const {
    for (const auto& n : nodes_) {
        if (n.name == name) {
            return n;
        }
    }
    throw DslError("no node named '" + std::string(name) + "'");
}

void TaskGraph::validate() const {
    std::set<std::string> streamUse;
    for (const auto& link : links_) {
        if (link.from.soc && link.to.soc) {
            throw DslError("link cannot connect 'soc to 'soc");
        }
        for (const TgEndpoint* ep : {&link.from, &link.to}) {
            if (ep->soc) {
                continue;
            }
            const TgNode& n = node(ep->node);  // throws if missing
            const TgPort& p = n.port(ep->port);
            if (p.protocol != hls::InterfaceProtocol::AxiStream) {
                throw DslError(format("link endpoint %s is not an AXI-Stream (is) port",
                                      ep->str().c_str()));
            }
            if (!streamUse.insert(ep->node + "/" + ep->port).second) {
                throw DslError(format("stream port %s used by more than one link",
                                      ep->str().c_str()));
            }
        }
    }
    for (const auto& c : connects_) {
        const TgNode& n = node(c.node);
        if (!n.hasAxiLitePort()) {
            throw DslError(format("tg connect %s: node has no AXI-Lite (i) port",
                                  c.node.c_str()));
        }
    }
    // Every stream port must appear in exactly one link (dangling stream
    // interfaces would leave unconnected AXI-Stream pins in the design).
    for (const auto& n : nodes_) {
        for (const auto& p : n.ports) {
            if (p.protocol == hls::InterfaceProtocol::AxiStream &&
                streamUse.find(n.name + "/" + p.name) == streamUse.end()) {
                throw DslError(format("stream port (\"%s\",\"%s\") is not linked",
                                      n.name.c_str(), p.name.c_str()));
            }
        }
    }
}

std::string TaskGraph::renderDsl(const std::string& projectName) const {
    std::ostringstream out;
    out << "object " << projectName << " extends App {\n";
    out << "  tg nodes;\n";
    for (const auto& n : nodes_) {
        out << "    tg node \"" << n.name << "\"";
        for (const auto& p : n.ports) {
            out << (p.protocol == hls::InterfaceProtocol::AxiStream ? " is \"" : " i \"")
                << p.name << "\"";
        }
        out << " end;\n";
    }
    out << "  tg end_nodes;\n";
    out << "  tg edges;\n";
    for (const auto& link : links_) {
        out << "    tg link " << link.from.str() << " to " << link.to.str() << " end;\n";
    }
    for (const auto& c : connects_) {
        out << "    tg connect \"" << c.node << "\";\n";
    }
    out << "  tg end_edges;\n";
    out << "}\n";
    return out.str();
}

// ---------------------------------------------------------------------------
// Htg

const HtgActor& HtgPhase::actor(std::string_view actorName) const {
    for (const auto& a : actors) {
        if (a.name == actorName) {
            return a;
        }
    }
    throw DslError(format("phase %s has no actor '%s'", name.c_str(),
                          std::string(actorName).c_str()));
}

bool HtgPhase::hasActor(std::string_view actorName) const {
    return std::any_of(actors.begin(), actors.end(),
                       [&](const HtgActor& a) { return a.name == actorName; });
}

void Htg::addTask(std::string name, bool hardwareCapable, std::vector<TgPort> hardwarePorts) {
    HtgNode node;
    node.name = std::move(name);
    node.kind = HtgNodeKind::Task;
    node.hardwareCapable = hardwareCapable;
    node.hardwarePorts = std::move(hardwarePorts);
    topNodes_.push_back(std::move(node));
}

int Htg::addPhase(HtgPhase phase) {
    HtgNode node;
    node.name = phase.name;
    node.kind = HtgNodeKind::Phase;
    node.phaseIndex = static_cast<int>(phases_.size());
    phases_.push_back(std::move(phase));
    topNodes_.push_back(std::move(node));
    return static_cast<int>(phases_.size() - 1);
}

void Htg::addEdge(std::string from, std::string to) {
    topEdges_.push_back(HtgEdge{std::move(from), std::move(to)});
}

const HtgNode& Htg::topNode(std::string_view name) const {
    for (const auto& n : topNodes_) {
        if (n.name == name) {
            return n;
        }
    }
    throw DslError("no top-level HTG node named '" + std::string(name) + "'");
}

std::vector<std::string> Htg::partitionableUnits() const {
    std::vector<std::string> units;
    for (const auto& n : topNodes_) {
        if (n.kind == HtgNodeKind::Task && n.hardwareCapable) {
            units.push_back(n.name);
        }
    }
    for (const auto& phase : phases_) {
        for (const auto& actor : phase.actors) {
            units.push_back(actor.name);
        }
    }
    return units;
}

void Htg::validate() const {
    std::set<std::string> names;
    for (const auto& n : topNodes_) {
        if (!names.insert(n.name).second) {
            throw DslError("duplicate HTG node: " + n.name);
        }
    }
    for (const auto& e : topEdges_) {
        (void)topNode(e.from);
        (void)topNode(e.to);
    }
    for (const auto& phase : phases_) {
        std::set<std::string> actorNames;
        for (const auto& a : phase.actors) {
            if (!actorNames.insert(a.name).second) {
                throw DslError(format("phase %s: duplicate actor %s", phase.name.c_str(),
                                      a.name.c_str()));
            }
        }
        for (const auto& e : phase.edges) {
            const HtgActor& from = phase.actor(e.fromActor);
            const HtgActor& to = phase.actor(e.toActor);
            const auto hasOut = std::any_of(
                from.outputs.begin(), from.outputs.end(),
                [&](const HtgActorPort& p) { return p.name == e.fromPort; });
            const auto hasIn = std::any_of(
                to.inputs.begin(), to.inputs.end(),
                [&](const HtgActorPort& p) { return p.name == e.toPort; });
            if (!hasOut || !hasIn) {
                throw DslError(format("phase %s: dataflow edge %s.%s -> %s.%s references "
                                      "unknown ports",
                                      phase.name.c_str(), e.fromActor.c_str(),
                                      e.fromPort.c_str(), e.toActor.c_str(),
                                      e.toPort.c_str()));
            }
        }
    }
}

std::string Htg::toDot() const {
    std::ostringstream out;
    out << "digraph HTG {\n  rankdir=TB;\n  node [shape=ellipse];\n";
    for (const auto& n : topNodes_) {
        if (n.kind == HtgNodeKind::Task) {
            out << "  \"" << n.name << "\";\n";
        } else {
            const HtgPhase& phase = phases_[static_cast<std::size_t>(n.phaseIndex)];
            out << "  subgraph \"cluster_" << n.name << "\" {\n    label=\"" << n.name
                << " (phase)\";\n";
            for (const auto& a : phase.actors) {
                out << "    \"" << a.name << "\" [shape=box];\n";
            }
            for (const auto& e : phase.edges) {
                out << "    \"" << e.fromActor << "\" -> \"" << e.toActor
                    << "\" [label=\"" << e.fromPort << "\"];\n";
            }
            out << "  }\n";
        }
    }
    for (const auto& e : topEdges_) {
        out << "  \"" << e.from << "\" -> \"" << e.to << "\" [style=bold];\n";
    }
    out << "}\n";
    return out.str();
}

// ---------------------------------------------------------------------------
// Partition + lowering

Mapping HtgPartition::of(const std::string& unit) const {
    const auto it = mapping.find(unit);
    return it == mapping.end() ? Mapping::Software : it->second;
}

std::vector<std::string> HtgPartition::hardwareUnits() const {
    std::vector<std::string> units;
    for (const auto& [name, m] : mapping) {
        if (m == Mapping::Hardware) {
            units.push_back(name);
        }
    }
    return units;
}

TaskGraph lowerToTaskGraph(const Htg& htg, const HtgPartition& partition) {
    htg.validate();
    TaskGraph tg;

    // Hardware-capable simple tasks: AXI-Lite nodes + connect.
    for (const auto& n : htg.topNodes()) {
        if (n.kind == HtgNodeKind::Task && n.hardwareCapable &&
            partition.of(n.name) == Mapping::Hardware) {
            tg.addNode(TgNode{n.name, n.hardwarePorts});
            tg.addConnect(TgConnect{n.name});
        }
    }

    for (const auto& phase : htg.phases()) {
        // Which actor input/output ports have an intra-phase edge.
        std::set<std::string> wiredInputs;   // "actor/port"
        std::set<std::string> wiredOutputs;
        for (const auto& e : phase.edges) {
            wiredOutputs.insert(e.fromActor + "/" + e.fromPort);
            wiredInputs.insert(e.toActor + "/" + e.toPort);
        }

        // Hardware actors become stream nodes.
        for (const auto& a : phase.actors) {
            if (partition.of(a.name) != Mapping::Hardware) {
                continue;
            }
            TgNode node;
            node.name = a.name;
            for (const auto& p : a.inputs) {
                node.ports.push_back(TgPort{p.name, hls::InterfaceProtocol::AxiStream});
            }
            for (const auto& p : a.outputs) {
                node.ports.push_back(TgPort{p.name, hls::InterfaceProtocol::AxiStream});
            }
            tg.addNode(std::move(node));
        }

        // Intra-phase edges: HW->HW stays direct; boundary crossings go
        // through 'soc (DMA).
        for (const auto& e : phase.edges) {
            const bool fromHw = partition.of(e.fromActor) == Mapping::Hardware;
            const bool toHw = partition.of(e.toActor) == Mapping::Hardware;
            if (fromHw && toHw) {
                tg.addLink(TgLink{TgEndpoint::of(e.fromActor, e.fromPort),
                                  TgEndpoint::of(e.toActor, e.toPort)});
            } else if (fromHw) {
                tg.addLink(
                    TgLink{TgEndpoint::of(e.fromActor, e.fromPort), TgEndpoint::socEnd()});
            } else if (toHw) {
                tg.addLink(
                    TgLink{TgEndpoint::socEnd(), TgEndpoint::of(e.toActor, e.toPort)});
            }
        }

        // Phase-boundary ports of hardware actors (no intra-phase edge):
        // the initial input / final output of the dataflow graph, fed and
        // drained by the PS (paper Section II-A).
        for (const auto& a : phase.actors) {
            if (partition.of(a.name) != Mapping::Hardware) {
                continue;
            }
            for (const auto& p : a.inputs) {
                if (wiredInputs.find(a.name + "/" + p.name) == wiredInputs.end()) {
                    tg.addLink(TgLink{TgEndpoint::socEnd(), TgEndpoint::of(a.name, p.name)});
                }
            }
            for (const auto& p : a.outputs) {
                if (wiredOutputs.find(a.name + "/" + p.name) == wiredOutputs.end()) {
                    tg.addLink(TgLink{TgEndpoint::of(a.name, p.name), TgEndpoint::socEnd()});
                }
            }
        }
    }

    tg.validate();
    return tg;
}

} // namespace socgen::core
