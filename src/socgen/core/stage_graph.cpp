#include "socgen/core/stage_graph.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/stopwatch.hpp"
#include "socgen/common/strings.hpp"

#include <atomic>
#include <condition_variable>
#include <thread>

namespace socgen::core {

// ---------------------------------------------------------------------------
// StageGraph

Stage& StageGraph::add(Stage stage) {
    if (stage.name.empty()) {
        throw StageGraphError("stage with an empty name");
    }
    if (index_.count(stage.name) > 0) {
        throw StageGraphError("duplicate stage \"" + stage.name + "\"");
    }
    index_.emplace(stage.name, stages_.size());
    stages_.push_back(std::move(stage));
    return stages_.back();
}

bool StageGraph::has(const std::string& name) const {
    return index_.count(name) > 0;
}

std::vector<std::size_t> StageGraph::topologicalOrder() const {
    const std::size_t n = stages_.size();
    std::vector<std::size_t> inDegree(n, 0);
    std::vector<std::vector<std::size_t>> dependents(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::string& dep : stages_[i].deps) {
            const auto it = index_.find(dep);
            if (it == index_.end()) {
                throw StageGraphError(format("stage \"%s\" depends on unknown stage "
                                             "\"%s\"",
                                             stages_[i].name.c_str(), dep.c_str()));
            }
            dependents[it->second].push_back(i);
            ++inDegree[i];
        }
    }
    // Kahn's algorithm with an insertion-ordered ready scan: the lowest
    // insertion index among ready stages goes next, making the order a
    // deterministic function of the graph alone.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<char> emitted(n, 0);
    for (std::size_t produced = 0; produced < n; ++produced) {
        std::size_t pick = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (!emitted[i] && inDegree[i] == 0) {
                pick = i;
                break;
            }
        }
        if (pick == n) {
            std::string cycle;
            for (std::size_t i = 0; i < n; ++i) {
                if (!emitted[i]) {
                    cycle += cycle.empty() ? "" : ", ";
                    cycle += stages_[i].name;
                }
            }
            throw StageGraphError("dependency cycle among stages: " + cycle);
        }
        emitted[pick] = 1;
        order.push_back(pick);
        for (const std::size_t dependent : dependents[pick]) {
            --inDegree[dependent];
        }
    }
    return order;
}

std::vector<std::string> StageGraph::topologicalNames() const {
    std::vector<std::string> names;
    for (const std::size_t index : topologicalOrder()) {
        names.push_back(stages_[index].name);
    }
    return names;
}

// ---------------------------------------------------------------------------
// StageFaultHooks

StageFaultHooks::StageFaultHooks(const sim::FaultPlan& plan) {
    for (const auto& event : plan.events()) {
        if (event.kind == sim::FaultKind::FlowCrash ||
            event.kind == sim::FaultKind::ArtifactCorrupt ||
            event.kind == sim::FaultKind::StageHang) {
            pending_.push_back(event);
        }
    }
}

void StageFaultHooks::maybeCrash(const std::string& stage, std::uint64_t phase) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->kind == sim::FaultKind::FlowCrash && it->target == stage &&
            it->a == phase) {
            pending_.erase(it);
            throw FlowCrashError(format("injected crash at stage %s (%s)", stage.c_str(),
                                        phase == 0 ? "at begin" : "pre-commit"));
        }
    }
}

void StageFaultHooks::maybeHang(const std::string& stage) {
    std::uint64_t milliseconds = 0;
    bool armed = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->kind == sim::FaultKind::StageHang && it->target == stage) {
                milliseconds = it->a;
                pending_.erase(it);
                armed = true;
                break;
            }
        }
    }
    if (armed) {
        Logger::global().info(format("fault: stage %s hanging for %llu ms", stage.c_str(),
                                     static_cast<unsigned long long>(milliseconds)));
        std::this_thread::sleep_for(std::chrono::milliseconds(milliseconds));
    }
}

bool StageFaultHooks::consumeCorrupt(const std::string& target) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->kind == sim::FaultKind::ArtifactCorrupt && it->target == target) {
            pending_.erase(it);
            return true;
        }
    }
    return false;
}

bool StageFaultHooks::empty() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pending_.empty();
}

// ---------------------------------------------------------------------------
// StageGraphExecutor

struct StageGraphExecutor::RunState {
    const StageGraph* graph = nullptr;
    std::vector<std::size_t> topo;            ///< rank -> stage index
    std::vector<std::size_t> rankOf;          ///< stage index -> rank
    std::vector<std::size_t> remainingDeps;
    std::vector<std::vector<std::size_t>> dependents;
    std::vector<StageExecution> executions;

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<char> completed;
    std::vector<char> scheduled;
    std::size_t completedCount = 0;
    std::size_t flushedPrefix = 0;            ///< topo ranks journal-flushed
    std::size_t tasksInFlight = 0;            ///< external-scheduler mode only
    bool aborted = false;
    std::exception_ptr firstError;
    std::size_t firstErrorRank = 0;
};

StageGraphExecutor::StageGraphExecutor(ExecutorConfig config, FlowEventBus* bus,
                                       StageFaultHooks* hooks)
    : config_(std::move(config)), bus_(bus), hooks_(hooks) {}

void StageGraphExecutor::runStage(RunState& state, std::size_t index, unsigned worker) {
    const Stage& stage = state.graph->stages()[index];
    StageExecution& exec = state.executions[index];
    exec.ran = true;

    if (bus_ != nullptr) {
        FlowEvent event;
        event.kind = FlowEventKind::StageBegin;
        event.stage = stage.name;
        event.worker = worker;
        bus_->publish(std::move(event));
    }

    Stopwatch watch;
    StageRun meta;
    StageOutput output;
    std::exception_ptr error;
    try {
        if (hooks_ != nullptr) {
            hooks_->maybeCrash(stage.name, 0);
        }
        // One supervisor per stage: its destructor joins abandoned
        // (timed-out) attempts before any stage-local state dies.
        StageSupervisor supervisor(config_.stagePolicy);
        std::atomic<int> attemptCounter{0};
        std::any value = supervisor.run(
            stage.name,
            [this, &stage, &attemptCounter] {
                const int attempt = attemptCounter.fetch_add(1) + 1;
                if (attempt > 1 && bus_ != nullptr) {
                    FlowEvent event;
                    event.kind = FlowEventKind::StageRetry;
                    event.stage = stage.name;
                    event.attempt = static_cast<unsigned>(attempt);
                    bus_->publish(std::move(event));
                }
                if (hooks_ != nullptr) {
                    hooks_->maybeHang(stage.name);
                }
                return stage.attempt ? stage.attempt(StageContext{attempt}) : std::any{};
            },
            &meta);
        output = stage.commit ? stage.commit(std::move(value), meta) : StageOutput{};
        if (hooks_ != nullptr) {
            hooks_->maybeCrash(stage.name, 1);
        }
    } catch (...) {
        error = std::current_exception();
    }
    const double hostMs = watch.elapsedMs();

    if (bus_ != nullptr) {
        for (int t = 0; t < meta.timeouts; ++t) {
            FlowEvent event;
            event.kind = FlowEventKind::StageTimeout;
            event.stage = stage.name;
            bus_->publish(std::move(event));
        }
    }

    std::string absorbedNote;
    if (error != nullptr && stage.absorbFailure) {
        try {
            std::rethrow_exception(error);
        } catch (const std::exception& e) {
            absorbedNote = stage.absorbFailure(e, meta);
        } catch (...) {
            // Non-std exceptions are never absorbable.
        }
    }

    const std::lock_guard<std::mutex> lock(state.mutex);
    exec.meta = meta;
    exec.hostMs = hostMs;
    stats_.stageTimeouts += static_cast<std::size_t>(meta.timeouts);
    if (meta.attempts > 1) {
        stats_.stageRetries += static_cast<std::size_t>(meta.attempts - 1);
    }

    if (error != nullptr && absorbedNote.empty()) {
        if (bus_ != nullptr) {
            FlowEvent event;
            event.kind = FlowEventKind::StageFailed;
            event.stage = stage.name;
            event.attempt = static_cast<unsigned>(meta.attempts);
            event.hostMs = hostMs;
            try {
                std::rethrow_exception(error);
            } catch (const std::exception& e) {
                event.detail = e.what();
            } catch (...) {
                event.detail = "non-standard exception";
            }
            bus_->publish(std::move(event));
        }
        // Keep the error of the lowest-ranked failing stage so the flow
        // rethrows deterministically even when siblings fail in parallel.
        if (state.firstError == nullptr || state.rankOf[index] < state.firstErrorRank) {
            state.firstError = error;
            state.firstErrorRank = state.rankOf[index];
        }
        state.aborted = true;
        state.cv.notify_all();
        return;
    }

    if (error != nullptr) {
        exec.absorbed = true;
        exec.absorbedNote = absorbedNote;
        if (bus_ != nullptr) {
            FlowEvent event;
            event.kind = FlowEventKind::StageDegraded;
            event.stage = stage.name;
            event.detail = absorbedNote;
            event.attempt = static_cast<unsigned>(meta.attempts);
            event.hostMs = hostMs;
            bus_->publish(std::move(event));
        }
    } else {
        exec.output = std::move(output);
        if (bus_ != nullptr) {
            FlowEvent event;
            event.kind = FlowEventKind::StageCommit;
            event.stage = stage.name;
            event.detail = exec.output.digest;
            event.attempt = static_cast<unsigned>(meta.attempts);
            event.toolSeconds = exec.output.toolSeconds;
            event.hostMs = hostMs;
            bus_->publish(std::move(event));
        }
    }

    state.completed[index] = 1;
    ++state.completedCount;
    for (const std::size_t dependent : state.dependents[index]) {
        --state.remainingDeps[dependent];
    }
    flushCommitted(state);
    state.cv.notify_all();
}

void StageGraphExecutor::flushCommitted(RunState& state) {
    // Journal discipline: commit (and degrade-note) records land in
    // topological order over the longest fully-completed prefix, under the
    // scheduler lock. The journal's bytes are therefore a function of the
    // graph and its outcomes alone — never of worker scheduling. A crash
    // can only lose trailing commits, which the next run re-derives from
    // the content-addressed store.
    while (state.flushedPrefix < state.topo.size()) {
        const std::size_t index = state.topo[state.flushedPrefix];
        if (!state.completed[index]) {
            return;
        }
        const Stage& stage = state.graph->stages()[index];
        const StageExecution& exec = state.executions[index];
        if (exec.absorbed) {
            if (config_.journal != nullptr) {
                config_.journal->noteEvent(stage.name, exec.absorbedNote);
            }
        } else {
            const auto it = config_.digestsAtOpen.find(stage.name);
            if (it != config_.digestsAtOpen.end()) {
                // The stage was committed by a previous run; re-executing
                // it must reproduce the same output (the flow is
                // deterministic).
                if (stage.trackResume) {
                    ++stats_.resumedStages;
                }
                if (it->second != exec.output.digest) {
                    ++stats_.digestMismatches;
                    if (bus_ != nullptr) {
                        FlowEvent event;
                        event.kind = FlowEventKind::DigestMismatch;
                        event.stage = stage.name;
                        event.detail = "recomputed output differs from the journal's "
                                       "committed digest";
                        bus_->publish(std::move(event));
                    }
                }
            }
            if (config_.journal != nullptr && !exec.output.digest.empty()) {
                config_.journal->commit(stage.name, exec.output.digest);
            }
        }
        if (stage.postCommit) {
            stage.postCommit();
        }
        ++state.flushedPrefix;
    }
}

void StageGraphExecutor::submitReady(RunState& state) {
    // Caller holds state.mutex. Ready stages go to the external scheduler
    // in topological order; the scheduler owns when and where they run.
    // tasksInFlight is incremented before submit and decremented as the
    // task's final locked action, so execute()'s wait on it proves no
    // task can still touch `state` after execute() returns.
    if (state.aborted) {
        return;
    }
    for (std::size_t rank = 0; rank < state.topo.size(); ++rank) {
        const std::size_t index = state.topo[rank];
        if (state.scheduled[index] || state.remainingDeps[index] != 0) {
            continue;
        }
        state.scheduled[index] = 1;
        ++state.tasksInFlight;
        config_.scheduler->submit([this, &state, index] {
            bool skip = false;
            {
                const std::lock_guard<std::mutex> lock(state.mutex);
                skip = state.aborted;
            }
            if (!skip) {
                runStage(state, index, 0);
            }
            const std::lock_guard<std::mutex> lock(state.mutex);
            --state.tasksInFlight;
            submitReady(state);
            state.cv.notify_all();
        });
    }
}

std::vector<StageExecution> StageGraphExecutor::execute(const StageGraph& graph) {
    RunState state;
    state.graph = &graph;
    state.topo = graph.topologicalOrder();
    const std::size_t n = graph.stages().size();
    state.rankOf.assign(n, 0);
    for (std::size_t rank = 0; rank < state.topo.size(); ++rank) {
        state.rankOf[state.topo[rank]] = rank;
    }
    state.remainingDeps.assign(n, 0);
    state.dependents.assign(n, {});
    std::map<std::string, std::size_t> byName;
    for (std::size_t i = 0; i < n; ++i) {
        byName.emplace(graph.stages()[i].name, i);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::string& dep : graph.stages()[i].deps) {
            state.dependents[byName.at(dep)].push_back(i);
            ++state.remainingDeps[i];
        }
    }
    state.executions.assign(n, {});
    state.completed.assign(n, 0);
    state.scheduled.assign(n, 0);
    stats_ = {};

    if (bus_ != nullptr) {
        FlowEvent event;
        event.kind = FlowEventKind::FlowBegin;
        event.detail = format("%zu stages, jobs=%u", n, config_.jobs);
        bus_->publish(std::move(event));
    }

    // Write-ahead discipline: every begin record lands before any stage
    // starts work, in topological order, so the journal prefix identifies
    // the run's shape regardless of scheduling.
    if (config_.journal != nullptr) {
        for (const std::size_t index : state.topo) {
            config_.journal->begin(graph.stages()[index].name);
        }
    }

    const unsigned jobs = config_.jobs < 1 ? 1 : config_.jobs;
    if (config_.scheduler != nullptr && n > 0) {
        // Shared-pool mode: ready stages are handed to the external
        // scheduler (one pool, many flows); this thread only tracks
        // completion. A task that observes `aborted` before running
        // skips its stage but still decrements tasksInFlight, so the
        // wait below terminates on both success and failure.
        std::unique_lock<std::mutex> lock(state.mutex);
        submitReady(state);
        state.cv.wait(lock, [&state, n] {
            return state.tasksInFlight == 0 &&
                   (state.aborted || state.completedCount == n);
        });
    } else if (jobs == 1 || n <= 1) {
        // Serial path: exact topological order, no worker threads — the
        // crash-recovery semantics of the historical sequential flow.
        for (std::size_t rank = 0; rank < state.topo.size(); ++rank) {
            {
                const std::lock_guard<std::mutex> lock(state.mutex);
                if (state.aborted) {
                    break;
                }
            }
            runStage(state, state.topo[rank], 0);
        }
    } else {
        const auto workerLoop = [this, &state, n](unsigned workerId) {
            std::unique_lock<std::mutex> lock(state.mutex);
            while (true) {
                std::size_t pick = n;
                if (!state.aborted) {
                    for (std::size_t rank = 0; rank < state.topo.size(); ++rank) {
                        const std::size_t index = state.topo[rank];
                        if (!state.scheduled[index] && state.remainingDeps[index] == 0) {
                            pick = index;
                            break;
                        }
                    }
                }
                if (pick == n) {
                    if (state.aborted || state.completedCount == n) {
                        return;
                    }
                    state.cv.wait(lock);
                    continue;
                }
                state.scheduled[pick] = 1;
                lock.unlock();
                runStage(state, pick, workerId);
                lock.lock();
            }
        };
        const unsigned threadCount = std::min<unsigned>(jobs, static_cast<unsigned>(n));
        std::vector<std::thread> pool;
        pool.reserve(threadCount);
        for (unsigned t = 0; t < threadCount; ++t) {
            pool.emplace_back(workerLoop, t);
        }
        for (auto& thread : pool) {
            thread.join();
        }
    }

    if (bus_ != nullptr) {
        FlowEvent event;
        event.kind = FlowEventKind::FlowEnd;
        event.detail = state.firstError == nullptr ? "ok" : "failed";
        bus_->publish(std::move(event));
    }
    if (state.firstError != nullptr) {
        std::rethrow_exception(state.firstError);
    }
    return std::move(state.executions);
}

} // namespace socgen::core
