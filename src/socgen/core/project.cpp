#include "socgen/core/project.hpp"

#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

namespace socgen::core {

FlowResult runDslText(std::string_view source, const hls::KernelLibrary& kernels,
                      FlowOptions options, std::shared_ptr<HlsCache> cache) {
    ParsedDsl parsed = parseDsl(source);
    Flow flow(std::move(options), kernels, std::move(cache));
    return flow.run(parsed.projectName, parsed.graph);
}

FlowResult runDslFile(const std::string& path, const hls::KernelLibrary& kernels,
                      FlowOptions options, std::shared_ptr<HlsCache> cache) {
    return runDslText(readTextFile(path), kernels, std::move(options), std::move(cache));
}

DslTclComparison compareDslToTcl(const FlowResult& result) {
    DslTclComparison cmp;
    cmp.dslLines = countLines(result.dslText);
    cmp.dslChars = countNonSpaceChars(result.dslText);
    cmp.tclLines = countLines(result.tclText);
    cmp.tclChars = countNonSpaceChars(result.tclText);
    return cmp;
}

} // namespace socgen::core
