#include "socgen/core/lexer.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

#include <cctype>

namespace socgen::core {

std::string_view tokenKindName(TokenKind kind) {
    switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::String: return "string";
    case TokenKind::SocQuote: return "'soc";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::EndOfFile: return "end of input";
    }
    return "?";
}

namespace {

class Lexer {
public:
    explicit Lexer(std::string_view source) : src_(source) {}

    std::vector<Token> run() {
        std::vector<Token> tokens;
        while (true) {
            skipTrivia();
            Token token;
            token.line = line_;
            token.column = column_;
            if (atEnd()) {
                token.kind = TokenKind::EndOfFile;
                tokens.push_back(std::move(token));
                return tokens;
            }
            const char c = peek();
            if (c == '{') {
                token.kind = TokenKind::LBrace;
                advance();
            } else if (c == '}') {
                token.kind = TokenKind::RBrace;
                advance();
            } else if (c == '(') {
                token.kind = TokenKind::LParen;
                advance();
            } else if (c == ')') {
                token.kind = TokenKind::RParen;
                advance();
            } else if (c == ',') {
                token.kind = TokenKind::Comma;
                advance();
            } else if (c == ';') {
                token.kind = TokenKind::Semicolon;
                advance();
            } else if (c == '"') {
                token.kind = TokenKind::String;
                token.text = lexString();
            } else if (c == '\'') {
                token.kind = TokenKind::SocQuote;
                lexSocQuote();
            } else if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
                token.kind = TokenKind::Identifier;
                token.text = lexIdentifier();
            } else {
                fail(format("unexpected character '%c'", c));
            }
            tokens.push_back(std::move(token));
        }
    }

private:
    [[nodiscard]] bool atEnd() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek() const { return src_[pos_]; }
    [[nodiscard]] char peekNext() const {
        return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
    }

    void advance() {
        if (src_[pos_] == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        ++pos_;
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw DslError(format("%d:%d: %s", line_, column_, what.c_str()));
    }

    void skipTrivia() {
        while (!atEnd()) {
            const char c = peek();
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                advance();
            } else if (c == '/' && peekNext() == '/') {
                while (!atEnd() && peek() != '\n') {
                    advance();
                }
            } else if (c == '/' && peekNext() == '*') {
                advance();
                advance();
                while (!atEnd() && !(peek() == '*' && peekNext() == '/')) {
                    advance();
                }
                if (atEnd()) {
                    fail("unterminated block comment");
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    std::string lexString() {
        advance();  // opening quote
        std::string text;
        while (!atEnd() && peek() != '"') {
            if (peek() == '\n') {
                fail("unterminated string literal");
            }
            text.push_back(peek());
            advance();
        }
        if (atEnd()) {
            fail("unterminated string literal");
        }
        advance();  // closing quote
        return text;
    }

    void lexSocQuote() {
        advance();  // '
        std::string word;
        while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
                            peek() == '_')) {
            word.push_back(peek());
            advance();
        }
        if (word != "soc") {
            fail("expected 'soc after quote, got '" + word + "'");
        }
    }

    std::string lexIdentifier() {
        std::string text;
        while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) != 0 ||
                            peek() == '_')) {
            text.push_back(peek());
            advance();
        }
        return text;
    }

    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
};

} // namespace

std::vector<Token> tokenize(std::string_view source) {
    return Lexer(source).run();
}

} // namespace socgen::core
