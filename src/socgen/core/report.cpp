#include "socgen/core/report.hpp"

#include "socgen/common/strings.hpp"

#include <sstream>

namespace socgen::core {

std::string renderFlowReport(const FlowResult& result) {
    std::ostringstream out;
    out << "# Flow report — " << result.projectName << "\n\n";

    out << "## Task graph\n\n";
    out << "Nodes: " << result.graph.nodes().size()
        << ", stream links: " << result.graph.links().size()
        << ", AXI-Lite attachments: " << result.graph.connects().size() << "\n\n";
    out << "```\n" << result.dslText << "```\n\n";

    out << "## Hardware cores\n\n";
    out << "| core | latency (cycles) | worst II | LUT | FF | RAMB18 | DSP | HLS s |\n";
    out << "|------|-----------------:|---------:|----:|---:|-------:|----:|------:|\n";
    for (const auto& [name, hlsResult] : result.hlsResults) {
        std::int64_t worstIi = 0;
        std::int64_t cycles = 0;
        for (const auto& loop : hlsResult.schedule.loops) {
            worstIi = std::max(worstIi, loop.ii);
            cycles += loop.totalCycles;
        }
        const auto& r = hlsResult.resources;
        out << format("| %s | %lld | %lld | %lld | %lld | %lld | %lld | %.1f |\n",
                      name.c_str(), static_cast<long long>(cycles),
                      static_cast<long long>(worstIi), static_cast<long long>(r.lut),
                      static_cast<long long>(r.ff), static_cast<long long>(r.bram18),
                      static_cast<long long>(r.dsp), hlsResult.toolSeconds);
    }
    out << '\n';

    if (!result.synthesis.perInstance.empty()) {
        out << "## Synthesis\n\n```\n" << result.synthesis.utilisationReport()
            << "```\n\n";
    }

    out << "## Generation timeline\n\n";
    out << "| phase | simulated tool s | host ms |\n|-------|----------------:|--------:|\n";
    for (const auto& phase : result.timeline.phases()) {
        out << format("| %s | %.1f | %.3f |\n", phase.name.c_str(), phase.toolSeconds,
                      phase.hostMs);
    }
    out << format("| **total** | **%.1f** | **%.3f** |\n\n",
                  result.timeline.totalToolSeconds(), result.timeline.totalHostMs());

    out << "## Artifacts\n\n";
    out << "- `" << result.projectName << ".tg` — DSL description ("
        << countLines(result.dslText) << " lines)\n";
    out << "- `" << result.projectName << ".tcl` — Vivado project script ("
        << countLines(result.tclText) << " lines)\n";
    for (const auto& [name, hlsResult] : result.hlsResults) {
        out << "- `hls/" << name << ".vhd`, `hls/" << name << ".v` — generated RTL ("
            << hlsResult.netlist.cells().size() << " cells)\n";
    }
    if (!result.bitstream.configRecords.empty()) {
        out << "- `" << result.projectName << ".bit` — bitstream ("
            << result.bitstream.serialize().size() << " bytes)\n";
        out << "- `boot.bin` — boot image (" << result.bootImage.partitions.size()
            << " partitions)\n";
    }
    if (!result.deviceTree.empty()) {
        out << "- `devicetree.dts`, `sw/" << result.projectName << "_api.{h,c}` — "
            << "software artifacts\n";
    }
    return out.str();
}

} // namespace socgen::core
