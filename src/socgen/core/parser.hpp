#pragma once

#include "socgen/core/htg.hpp"
#include "socgen/core/lexer.hpp"

#include <string>

namespace socgen::core {

/// Result of parsing a DSL source file.
struct ParsedDsl {
    std::string projectName;
    TaskGraph graph;
};

/// Recursive-descent parser for the grammar of paper Listing 1:
///
///   DSL        ::= object Project extends App { Nodes Edges }
///   Nodes      ::= tg nodes; Node+ tg end_nodes;
///   Edges      ::= tg edges; Edge+ tg end_edges;
///   Node       ::= tg node "Name" Interface+ end;
///   Interface  ::= i "Port" | is "Port"
///   Edge       ::= AXI-Lite | AXI-Stream
///   AXI-Lite   ::= tg connect "Name";
///   AXI-Stream ::= tg link Port to Port end;
///   Port       ::= 'soc | ( "Node", "Port" )
///
/// The parsed graph is validated before returning. Throws DslError with
/// source positions on syntax errors.
[[nodiscard]] ParsedDsl parseDsl(std::string_view source);

} // namespace socgen::core
