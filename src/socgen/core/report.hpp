#pragma once

#include "socgen/core/flow.hpp"

#include <string>

namespace socgen::core {

/// Renders a human-readable Markdown report of one flow run: the task
/// graph, per-core HLS results (latency, II, resources), the synthesis
/// utilisation table, the phase timeline (Figure 9 data), and the list
/// of generated artifacts. Written as REPORT.md next to the other
/// project outputs.
[[nodiscard]] std::string renderFlowReport(const FlowResult& result);

} // namespace socgen::core
