#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace socgen::core {

/// In-flight HLS dedupe across concurrent flows sharing one artifact
/// store: the first flow to claim an artifact key becomes its *leader*
/// and synthesizes; any other flow claiming the same key blocks until
/// the leader releases, then re-checks the cache/store instead of
/// paying for the same synthesis twice. The persistent store dedupes
/// *across* runs; this gate dedupes *within* a run, where two tenants
/// submit the identical kernel seconds apart and the store object does
/// not exist yet.
///
/// Deadlock freedom: a leader releases from its own stage task (or on
/// unwind, via the token's deleter) and never blocks on pool capacity
/// to do so, so a waiting follower always eventually proceeds. If a
/// leader *fails*, the follower finds no cached object and simply
/// becomes the next leader — dedupe is an optimisation, never a
/// correctness dependency.
class SynthGate {
public:
    struct Claim {
        /// Leadership token for the key. Destroying the last copy
        /// releases the key, so an exception anywhere on the leader's
        /// path can never strand followers. The happy path resets it
        /// explicitly right after persisting the artifact, so followers
        /// wake to a store hit.
        std::shared_ptr<void> token;
        /// True when a leader held the key while we arrived: the caller
        /// should re-check its reuse paths before synthesizing.
        bool waited = false;
    };

    /// Blocks while another flow leads `key`; returns with the caller
    /// as the key's new leader.
    [[nodiscard]] Claim claim(const std::string& key);

    /// Number of claims that had to wait for a leader — the in-flight
    /// dedupe opportunities observed so far.
    [[nodiscard]] std::size_t waits() const;

private:
    void release(const std::string& key);

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::set<std::string> leaders_;
    std::size_t waits_ = 0;
};

} // namespace socgen::core
