#include "socgen/core/parser.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"

namespace socgen::core {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    ParsedDsl run() {
        ParsedDsl out;
        expectIdentifier("object");
        out.projectName = expect(TokenKind::Identifier).text;
        expectIdentifier("extends");
        expectIdentifier("App");
        expect(TokenKind::LBrace);
        parseNodes(out.graph);
        parseEdges(out.graph);
        expect(TokenKind::RBrace);
        expect(TokenKind::EndOfFile);
        out.graph.validate();
        return out;
    }

private:
    [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }

    const Token& advance() { return tokens_[pos_++]; }

    [[noreturn]] void fail(const std::string& what) const {
        const Token& t = peek();
        throw DslError(format("%d:%d: %s (found %s%s%s)", t.line, t.column, what.c_str(),
                              std::string(tokenKindName(t.kind)).c_str(),
                              t.text.empty() ? "" : " ", t.text.c_str()));
    }

    const Token& expect(TokenKind kind) {
        if (peek().kind != kind) {
            fail("expected " + std::string(tokenKindName(kind)));
        }
        return advance();
    }

    void expectIdentifier(std::string_view word) {
        if (peek().kind != TokenKind::Identifier || peek().text != word) {
            fail("expected keyword '" + std::string(word) + "'");
        }
        advance();
    }

    [[nodiscard]] bool atIdentifier(std::string_view word) const {
        return peek().kind == TokenKind::Identifier && peek().text == word;
    }

    /// True if the next two tokens are `tg <word>`.
    [[nodiscard]] bool atTg(std::string_view word) const {
        return atIdentifier("tg") && pos_ + 1 < tokens_.size() &&
               tokens_[pos_ + 1].kind == TokenKind::Identifier &&
               tokens_[pos_ + 1].text == word;
    }

    void expectTg(std::string_view word) {
        expectIdentifier("tg");
        expectIdentifier(word);
    }

    void parseNodes(TaskGraph& graph) {
        expectTg("nodes");
        expect(TokenKind::Semicolon);
        bool any = false;
        while (atTg("node")) {
            parseNode(graph);
            any = true;
        }
        if (!any) {
            fail("expected at least one 'tg node'");
        }
        expectTg("end_nodes");
        expect(TokenKind::Semicolon);
    }

    void parseNode(TaskGraph& graph) {
        expectTg("node");
        TgNode node;
        node.name = expect(TokenKind::String).text;
        bool any = false;
        while (atIdentifier("i") || atIdentifier("is")) {
            const bool stream = peek().text == "is";
            advance();
            const std::string portName = expect(TokenKind::String).text;
            node.ports.push_back(TgPort{portName, stream
                                                      ? hls::InterfaceProtocol::AxiStream
                                                      : hls::InterfaceProtocol::AxiLite});
            any = true;
        }
        if (peek().kind == TokenKind::Identifier && peek().text != "end") {
            fail("unknown port kind '" + peek().text + "' (expected 'i', 'is', or 'end')");
        }
        if (!any) {
            fail("node needs at least one interface (i/is)");
        }
        expectIdentifier("end");
        expect(TokenKind::Semicolon);
        graph.addNode(std::move(node));
    }

    void parseEdges(TaskGraph& graph) {
        expectTg("edges");
        expect(TokenKind::Semicolon);
        while (atTg("link") || atTg("connect")) {
            if (atTg("link")) {
                parseLink(graph);
            } else {
                parseConnect(graph);
            }
        }
        expectTg("end_edges");
        expect(TokenKind::Semicolon);
    }

    TgEndpoint parsePort() {
        if (peek().kind == TokenKind::SocQuote) {
            advance();
            return TgEndpoint::socEnd();
        }
        expect(TokenKind::LParen);
        std::string node = expect(TokenKind::String).text;
        expect(TokenKind::Comma);
        std::string port = expect(TokenKind::String).text;
        expect(TokenKind::RParen);
        return TgEndpoint::of(std::move(node), std::move(port));
    }

    void parseLink(TaskGraph& graph) {
        expectTg("link");
        TgLink link;
        link.from = parsePort();
        expectIdentifier("to");
        link.to = parsePort();
        expectIdentifier("end");
        expect(TokenKind::Semicolon);
        graph.addLink(std::move(link));
    }

    void parseConnect(TaskGraph& graph) {
        expectTg("connect");
        TgConnect connect;
        connect.node = expect(TokenKind::String).text;
        // The grammar in Listing 1 shows no trailing `end` for connect;
        // accept an optional one for robustness with hand-written files.
        if (atIdentifier("end")) {
            advance();
        }
        expect(TokenKind::Semicolon);
        graph.addConnect(std::move(connect));
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

} // namespace

ParsedDsl parseDsl(std::string_view source) {
    return Parser(tokenize(source)).run();
}

} // namespace socgen::core
