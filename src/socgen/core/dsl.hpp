#pragma once

#include "socgen/core/flow.hpp"
#include "socgen/core/htg.hpp"

#include <memory>
#include <optional>
#include <string>

namespace socgen::core {

/// The embedded DSL: a C++ mirror of the paper's Scala API where *each
/// keyword is an executable function* (Section IV-B). The call sequence
/// follows the grammar of Listing 1:
///
///   SocProject p("otsu", kernels, options);
///   p.tg_nodes();
///     p.tg_node("grayScale").is("imageIn").is("imageOut").end();
///   p.tg_end_nodes();
///   p.tg_edges();
///     p.tg_link(SocProject::soc()).to(SocProject::port("grayScale","imageIn")).end();
///   p.tg_end_edges();          // integration -> synthesis -> bitstream -> APIs
///   const FlowResult& r = p.result();
///
/// Keyword side effects match the paper's step list: `tg_nodes` opens the
/// project, `tg_node` opens a per-node HLS project, `i`/`is` add
/// interface directives, `end` runs HLS for the node, `tg_connect` /
/// `tg_link ... to` record the integration commands, and `tg_end_edges`
/// executes the whole backend.
class SocProject {
public:
    class NodeScope;
    class LinkScope;

    SocProject(std::string name, const hls::KernelLibrary& kernels,
               FlowOptions options = {}, std::shared_ptr<HlsCache> cache = nullptr);

    // -- keyword functions -----------------------------------------------------
    SocProject& tg_nodes();
    [[nodiscard]] NodeScope tg_node(std::string name);
    SocProject& tg_end_nodes();
    SocProject& tg_edges();
    SocProject& tg_connect(const std::string& nodeName);
    [[nodiscard]] LinkScope tg_link(TgEndpoint from);
    SocProject& tg_end_edges();

    /// Endpoint helpers mirroring the DSL's 'soc and ("node","port").
    [[nodiscard]] static TgEndpoint soc() { return TgEndpoint::socEnd(); }
    [[nodiscard]] static TgEndpoint port(std::string node, std::string portName) {
        return TgEndpoint::of(std::move(node), std::move(portName));
    }

    // -- results ---------------------------------------------------------------
    [[nodiscard]] const TaskGraph& graph() const { return graph_; }
    [[nodiscard]] const FlowResult& result() const;
    [[nodiscard]] bool executed() const { return result_.has_value(); }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// The per-node HLS runs already performed by `end` keywords.
    [[nodiscard]] std::size_t hlsRunsCompleted() const { return hlsRuns_; }

    /// Builder scope for one `tg node` element.
    class NodeScope {
    public:
        NodeScope& i(std::string portName);    ///< AXI-Lite interface keyword
        NodeScope& is(std::string portName);   ///< AXI-Stream interface keyword
        SocProject& end();                     ///< runs HLS for this node

    private:
        friend class SocProject;
        NodeScope(SocProject& project, std::string name);
        SocProject& project_;
        TgNode node_;
        bool ended_ = false;
    };

    /// Builder scope for one `tg link A to B end` element.
    class LinkScope {
    public:
        LinkScope& to(TgEndpoint destination);  ///< step 7: stream connection
        SocProject& end();

    private:
        friend class SocProject;
        LinkScope(SocProject& project, TgEndpoint from);
        SocProject& project_;
        TgLink link_;
        bool hasTo_ = false;
    };

private:
    enum class Section { Start, Nodes, BetweenSections, Edges, Done };

    void requireSection(Section expected, const char* keyword) const;
    void finishNode(TgNode node);
    void finishLink(TgLink link);

    std::string name_;
    FlowOptions options_;
    std::shared_ptr<HlsCache> cache_;
    Flow flow_;
    TaskGraph graph_;
    Section section_ = Section::Start;
    std::size_t hlsRuns_ = 0;
    std::optional<FlowResult> result_;
};

} // namespace socgen::core
