#pragma once

#include "socgen/common/blob_store.hpp"
#include "socgen/hls/serialize.hpp"
#include "socgen/soc/device.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace socgen::core {

/// Persistent, content-addressed store of HLS results, mirroring the
/// paper's "generate each hardware core only once" caching across runs
/// and across crashes. An object's key is a digest of everything that
/// determines the synthesis output — kernel source, directives, target
/// device, and tool version — so a stale hit is impossible by
/// construction: change any input and the key changes.
///
/// The bytes-on-disk machinery (sharded layout, atomic writes, digest
/// verification, quarantine, temp reclamation, flat-object migration)
/// lives in the generic socgen::BlobStore; this class layers the
/// HlsResult codec, key derivation, and worker-fleet lease fencing on
/// top of it. The on-disk format is unchanged from before the split.
///
/// Durability contract:
///  - writes are atomic (temp file + rename), so a crash mid-store leaves
///    either no object or a complete object, never a torn one;
///  - every object embeds a digest of its payload, verified on load; a
///    corrupted object is *quarantined* (moved to `quarantine/<key>.art`,
///    recorded as a QuarantineRecord) and reported as a miss, so the
///    caller transparently re-synthesizes — corruption is never silently
///    loaded and never silently discarded;
///  - commits from the out-of-process worker fleet are fenced by lease
///    epochs: acquireLease() hands out a per-key monotonic epoch at each
///    dispatch, and storeFenced() rejects (StaleLeaseError) any commit
///    bearing an epoch older than the key's current lease — a zombie
///    worker resurrected after its kill cannot clobber the retried
///    attempt's artifact.
class ArtifactStore {
public:
    /// Opens (and lazily creates) a store rooted at `rootDir`. Opening
    /// garbage-collects orphaned write-then-rename temporaries
    /// (`*.art.tmp<serial>` files a crashed writer left behind) — they
    /// are never valid objects, and without collection a crash loop
    /// would leak them forever — and migrates flat pre-sharding objects
    /// into their digest-prefix shard directories.
    explicit ArtifactStore(std::string rootDir);

    /// Derives the content key for one (kernel, directives, device, tool)
    /// combination: 32 hex characters.
    [[nodiscard]] static std::string deriveKey(const hls::Kernel& kernel,
                                               const hls::Directives& directives,
                                               const soc::FpgaDevice& device,
                                               std::string_view toolVersion);

    /// Validation diagnostics for one load.
    using LoadDiag = BlobStore::LoadDiag;

    /// Loads and validates the object under `key`. Returns nullopt on
    /// miss or on any validation failure (bad magic, digest mismatch,
    /// undecodable payload); a validation failure also quarantines the
    /// object. When `diag` is non-null it receives the reason and the
    /// quarantine outcome.
    [[nodiscard]] std::optional<hls::HlsResult> load(const std::string& key,
                                                     LoadDiag* diag) const;

    /// Back-compat overload: `whyMiss` receives LoadDiag::whyMiss.
    [[nodiscard]] std::optional<hls::HlsResult> load(const std::string& key,
                                                     std::string* whyMiss = nullptr) const;

    /// Like load(), but a named error instead of a silent miss: throws
    /// ArtifactError when the object is absent and ArtifactCorruptError
    /// (after quarantining) when it exists but fails validation.
    [[nodiscard]] hls::HlsResult loadOrThrow(const std::string& key) const;

    /// Atomically stores `result` under `key`, overwriting any previous
    /// object (including a corrupt one).
    void store(const std::string& key, const hls::HlsResult& result) const;

    /// Hands out the next lease epoch for `key` (1, 2, 3, ...). Every
    /// dispatch of an attempt to an out-of-process worker takes a fresh
    /// lease; a re-dispatch after a kill takes a newer one, fencing off
    /// the corpse's eventual commit.
    [[nodiscard]] std::uint64_t acquireLease(const std::string& key) const;

    /// The most recently issued lease epoch for `key` (0 if none).
    [[nodiscard]] std::uint64_t currentLease(const std::string& key) const;

    /// Fenced store: commits only if `leaseEpoch` is the key's current
    /// lease; otherwise counts the rejection, logs it, and throws
    /// StaleLeaseError without touching the object.
    void storeFenced(const std::string& key, const hls::HlsResult& result,
                     std::uint64_t leaseEpoch) const;

    [[nodiscard]] bool contains(const std::string& key) const;

    /// Number of objects currently on disk.
    [[nodiscard]] std::size_t objectCount() const;

    /// Keys of all objects on disk, sorted.
    [[nodiscard]] std::vector<std::string> keys() const;

    /// Walks every shard and validates every object; corrupt objects are
    /// quarantined. Self-healing pass run by the flow service at open.
    using ScrubReport = BlobStore::ScrubReport;
    [[nodiscard]] ScrubReport scrub() const;

    /// One quarantined object (this store instance's lifetime).
    using QuarantineRecord = BlobStore::QuarantineRecord;
    [[nodiscard]] std::size_t quarantinedObjects() const;
    [[nodiscard]] std::vector<QuarantineRecord> quarantineRecords() const;

    /// Fenced commits rejected as stale (this store instance's lifetime).
    [[nodiscard]] std::size_t staleCommitsRejected() const;

    /// Test/fault-injection hook: flips one payload byte of the stored
    /// object so the next load fails digest validation. Throws
    /// ArtifactError if the object does not exist.
    void corruptObject(const std::string& key) const;

    /// Removes the object under `key` if present.
    void removeObject(const std::string& key) const;

    /// Orphaned temporaries reclaimed when this store was opened.
    [[nodiscard]] std::size_t reclaimedTempFiles() const {
        return blobs_.reclaimedTempFiles();
    }

    /// Flat legacy objects moved into shard directories at open.
    [[nodiscard]] std::size_t migratedObjects() const { return blobs_.migratedObjects(); }

    [[nodiscard]] const std::string& root() const { return blobs_.root(); }

    /// Digest-prefix length of the shard layout (hex characters).
    static constexpr std::size_t kShardPrefixLen = BlobStore::kShardPrefixLen;

private:
    BlobStore blobs_;

    mutable std::mutex mutex_;
    mutable std::map<std::string, std::uint64_t> leases_;
    mutable std::size_t staleCommitsRejected_ = 0;
};

} // namespace socgen::core
