#pragma once

#include "socgen/hls/serialize.hpp"
#include "socgen/soc/device.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace socgen::core {

/// Persistent, content-addressed store of HLS results, mirroring the
/// paper's "generate each hardware core only once" caching across runs
/// and across crashes. An object's key is a digest of everything that
/// determines the synthesis output — kernel source, directives, target
/// device, and tool version — so a stale hit is impossible by
/// construction: change any input and the key changes.
///
/// Durability contract:
///  - writes are atomic (temp file + rename), so a crash mid-store leaves
///    either no object or a complete object, never a torn one;
///  - every object embeds a digest of its payload, verified on load, so a
///    corrupted object is detected and reported as a miss (the caller
///    re-synthesizes and overwrites it) — never silently loaded.
class ArtifactStore {
public:
    /// Opens (and lazily creates) a store rooted at `rootDir`. Opening
    /// garbage-collects orphaned write-then-rename temporaries
    /// (`*.art.tmp<serial>` files a crashed writer left behind) — they
    /// are never valid objects, and without collection a crash loop
    /// would leak them forever.
    explicit ArtifactStore(std::string rootDir);

    /// Derives the content key for one (kernel, directives, device, tool)
    /// combination: 32 hex characters.
    [[nodiscard]] static std::string deriveKey(const hls::Kernel& kernel,
                                               const hls::Directives& directives,
                                               const soc::FpgaDevice& device,
                                               std::string_view toolVersion);

    /// Loads and validates the object under `key`. Returns nullopt on
    /// miss or on any validation failure (bad magic, digest mismatch,
    /// undecodable payload); when `whyMiss` is non-null it receives a
    /// human-readable reason for a validation miss ("" for a plain miss).
    [[nodiscard]] std::optional<hls::HlsResult> load(const std::string& key,
                                                     std::string* whyMiss = nullptr) const;

    /// Atomically stores `result` under `key`, overwriting any previous
    /// object (including a corrupt one).
    void store(const std::string& key, const hls::HlsResult& result) const;

    [[nodiscard]] bool contains(const std::string& key) const;

    /// Number of objects currently on disk.
    [[nodiscard]] std::size_t objectCount() const;

    /// Keys of all objects on disk, sorted.
    [[nodiscard]] std::vector<std::string> keys() const;

    /// Test/fault-injection hook: flips one payload byte of the stored
    /// object so the next load fails digest validation. Throws
    /// ArtifactError if the object does not exist.
    void corruptObject(const std::string& key) const;

    /// Removes the object under `key` if present.
    void removeObject(const std::string& key) const;

    /// Orphaned temporaries reclaimed when this store was opened.
    [[nodiscard]] std::size_t reclaimedTempFiles() const { return reclaimedTempFiles_; }

    [[nodiscard]] const std::string& root() const { return root_; }

private:
    [[nodiscard]] std::string objectPath(const std::string& key) const;

    std::string root_;
    std::size_t reclaimedTempFiles_ = 0;
};

} // namespace socgen::core
