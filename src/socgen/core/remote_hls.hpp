#pragma once

#include "socgen/hls/directives.hpp"
#include "socgen/hls/engine.hpp"

#include <cstdint>
#include <string>

namespace socgen::core {

/// One remote synthesis outcome: the result plus the lease epoch of the
/// dispatch that produced it. The epoch travels with the result into the
/// commit phase, where ArtifactStore::storeFenced() rejects it if a
/// newer dispatch of the same key has since been issued (zombie-worker
/// fence).
struct RemoteSynthesis {
    hls::HlsResult result;
    std::uint64_t leaseEpoch = 0;
};

/// Out-of-process synthesis hook. The flow's HLS attempt dispatches
/// through this interface when FlowOptions::remoteHls is set (the
/// service installs its WorkerFleet); implementations throw
///  - HlsError for a structured synthesis failure (same as in-process),
///  - WorkerUnavailableError when no worker can serve the dispatch — the
///    flow catches that one and falls back to in-process synthesis, so a
///    dead fleet degrades throughput, never correctness.
/// The interface lives in core so core keeps zero dependency on svc.
class RemoteHlsExecutor {
public:
    virtual ~RemoteHlsExecutor() = default;

    [[nodiscard]] virtual RemoteSynthesis synthesize(const hls::Kernel& kernel,
                                                     const hls::Directives& directives,
                                                     const std::string& key) = 0;
};

} // namespace socgen::core
