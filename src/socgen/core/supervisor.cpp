#include "socgen/core/supervisor.hpp"

#include "socgen/common/hash.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"

#include <algorithm>
#include <cmath>

namespace socgen::core {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

double StageSupervisor::backoffDelayMs(const StagePolicy& policy, const std::string& stage,
                                       int attempt) {
    double delayMs = policy.backoffBaseMs;
    for (int i = 1; i < attempt; ++i) {
        delayMs *= policy.backoffFactor;
    }
    if (policy.jitterFraction > 0.0) {
        // Deterministic jitter: the same (seed, stage, attempt) always
        // sleeps the same amount, so retried runs stay reproducible —
        // while different seeds (one per tenant) or different stages
        // spread colliding retries apart instead of re-synchronizing.
        const std::uint64_t r = splitmix64(splitmix64(policy.seed ^ fnv1a64(stage)) ^
                                           static_cast<std::uint64_t>(attempt));
        const double unit = static_cast<double>(r % 10'000) / 10'000.0;  // [0, 1)
        delayMs *= 1.0 + policy.jitterFraction * (2.0 * unit - 1.0);
    }
    return std::max(0.0, delayMs);
}

void StageSupervisor::sleepBackoff(const std::string& stage, int attempt) {
    const double delayMs = backoffDelayMs(policy_, stage, attempt);
    Logger::global().info(format("supervisor: stage %s attempt %d failed; backing off "
                                 "%.2f ms",
                                 stage.c_str(), attempt, delayMs));
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delayMs));
}

} // namespace socgen::core
