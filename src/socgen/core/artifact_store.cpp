#include "socgen/core/artifact_store.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <algorithm>
#include <filesystem>

namespace socgen::core {
namespace {

/// On-disk object framing: a text header (magic line, payload digest
/// line, key line) followed by the binary payload. The digest protects
/// the payload; the key line lets `fsck`-style tooling spot objects
/// renamed to the wrong key.
constexpr const char* kMagic = "SOCGENART1";

} // namespace

ArtifactStore::ArtifactStore(std::string rootDir) : root_(std::move(rootDir)) {
    // Reclaim write-then-rename leftovers: a writer that died between
    // writing its temporary and renaming it over the object leaves a
    // `<key>.art.tmp<serial>` sibling that no reader ever consults.
    // Collecting at open keeps the objects directory bounded across
    // crash loops; a temporary belonging to a *live* writer of another
    // store instance could in principle be swept too, in which case that
    // writer's rename fails with an ArtifactError and the supervisor
    // retries the store — detected, never silent.
    const std::filesystem::path dir = std::filesystem::path(root_) / "objects";
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file()) {
            continue;
        }
        if (entry.path().filename().string().find(".tmp") != std::string::npos) {
            std::error_code removeEc;
            if (std::filesystem::remove(entry.path(), removeEc)) {
                ++reclaimedTempFiles_;
            }
        }
    }
}

std::string ArtifactStore::deriveKey(const hls::Kernel& kernel,
                                     const hls::Directives& directives,
                                     const soc::FpgaDevice& device,
                                     std::string_view toolVersion) {
    HashStream h;
    h.field(std::string_view("socgen-artifact-key-v1"));
    const Digest128 kernelFp = hls::fingerprintKernel(kernel);
    const Digest128 directivesFp = hls::fingerprintDirectives(directives);
    h.field(kernelFp.hi);
    h.field(kernelFp.lo);
    h.field(directivesFp.hi);
    h.field(directivesFp.lo);
    h.field(device.part);
    h.field(device.board);
    h.field(toolVersion);
    return h.digest().hex();
}

std::string ArtifactStore::objectPath(const std::string& key) const {
    return root_ + "/objects/" + key + ".art";
}

std::optional<hls::HlsResult> ArtifactStore::load(const std::string& key,
                                                  std::string* whyMiss) const {
    if (whyMiss != nullptr) {
        whyMiss->clear();
    }
    const std::string path = objectPath(key);
    if (!fileExists(path)) {
        return std::nullopt;
    }
    const auto miss = [&](const std::string& reason) -> std::optional<hls::HlsResult> {
        if (whyMiss != nullptr) {
            *whyMiss = reason;
        }
        return std::nullopt;
    };
    std::string image;
    try {
        image = readTextFile(path);
    } catch (const Error& e) {
        return miss(e.what());
    }
    // Header: magic '\n' digest-hex '\n' key '\n' payload.
    const std::size_t magicEnd = image.find('\n');
    if (magicEnd == std::string::npos || image.substr(0, magicEnd) != kMagic) {
        return miss("bad magic (not a socgen artifact)");
    }
    const std::size_t digestEnd = image.find('\n', magicEnd + 1);
    if (digestEnd == std::string::npos) {
        return miss("truncated header (no digest line)");
    }
    const std::size_t keyEnd = image.find('\n', digestEnd + 1);
    if (keyEnd == std::string::npos) {
        return miss("truncated header (no key line)");
    }
    const std::string storedDigest = image.substr(magicEnd + 1, digestEnd - magicEnd - 1);
    const std::string storedKey = image.substr(digestEnd + 1, keyEnd - digestEnd - 1);
    if (storedKey != key) {
        return miss(format("object key mismatch: header says %s", storedKey.c_str()));
    }
    const std::string_view payload = std::string_view(image).substr(keyEnd + 1);
    const std::string actualDigest = digest128(payload).hex();
    if (actualDigest != storedDigest) {
        return miss(format("payload digest mismatch (stored %s, actual %s) — corrupt "
                           "artifact, rebuilding",
                           storedDigest.c_str(), actualDigest.c_str()));
    }
    try {
        return hls::decodeHlsResult(payload);
    } catch (const Error& e) {
        return miss(e.what());
    }
}

void ArtifactStore::store(const std::string& key, const hls::HlsResult& result) const {
    const std::string payload = hls::encodeHlsResult(result);
    std::string image;
    image.reserve(payload.size() + 64);
    image += kMagic;
    image += '\n';
    image += digest128(payload).hex();
    image += '\n';
    image += key;
    image += '\n';
    image += payload;
    try {
        writeFileAtomic(objectPath(key), image);
    } catch (const Error& e) {
        // Store failures are transient to the stage supervisor (retried),
        // so surface them under the store's own error type.
        throw ArtifactError(format("storing %s failed: %s", key.c_str(), e.what()));
    }
}

bool ArtifactStore::contains(const std::string& key) const {
    return fileExists(objectPath(key));
}

std::size_t ArtifactStore::objectCount() const {
    return keys().size();
}

std::vector<std::string> ArtifactStore::keys() const {
    std::vector<std::string> out;
    const std::filesystem::path dir = std::filesystem::path(root_) / "objects";
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".art") {
            out.push_back(entry.path().stem().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void ArtifactStore::corruptObject(const std::string& key) const {
    const std::string path = objectPath(key);
    if (!fileExists(path)) {
        throw ArtifactError("cannot corrupt missing object " + key);
    }
    std::string image = readTextFile(path);
    // Flip a bit in the middle of the payload (past the header lines) so
    // the framing survives but the digest check must fail.
    const std::size_t pos = image.size() - 1 - image.size() / 4;
    image[pos] = static_cast<char>(image[pos] ^ 0x40);
    writeFileAtomic(path, image);
}

void ArtifactStore::removeObject(const std::string& key) const {
    std::error_code ec;
    std::filesystem::remove(objectPath(key), ec);
}

} // namespace socgen::core
