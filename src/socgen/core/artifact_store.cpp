#include "socgen/core/artifact_store.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/log.hpp"
#include "socgen/common/strings.hpp"

#include <utility>

namespace socgen::core {
namespace {

/// On-disk object framing: a text header (magic line, payload digest
/// line, key line) followed by the binary payload. The digest protects
/// the payload; the key line lets `fsck`-style tooling spot objects
/// renamed to the wrong key.
constexpr const char* kMagic = "SOCGENART1";

} // namespace

ArtifactStore::ArtifactStore(std::string rootDir)
    : blobs_(std::move(rootDir), kMagic) {}

std::string ArtifactStore::deriveKey(const hls::Kernel& kernel,
                                     const hls::Directives& directives,
                                     const soc::FpgaDevice& device,
                                     std::string_view toolVersion) {
    HashStream h;
    // v2: HlsResult payloads carry the Program network tables, so keys
    // derived before the process-network model must not alias new ones.
    h.field(std::string_view("socgen-artifact-key-v2"));
    const Digest128 kernelFp = hls::fingerprintKernel(kernel);
    const Digest128 directivesFp = hls::fingerprintDirectives(directives);
    h.field(kernelFp.hi);
    h.field(kernelFp.lo);
    h.field(directivesFp.hi);
    h.field(directivesFp.lo);
    h.field(device.part);
    h.field(device.board);
    h.field(toolVersion);
    return h.digest().hex();
}

std::optional<hls::HlsResult> ArtifactStore::load(const std::string& key,
                                                  LoadDiag* diag) const {
    LoadDiag local;
    LoadDiag* d = diag != nullptr ? diag : &local;
    std::optional<std::string> payload = blobs_.load(key, d);
    if (!payload.has_value()) {
        return std::nullopt;
    }
    try {
        return hls::decodeHlsResult(*payload);
    } catch (const Error& e) {
        // The bytes round-tripped intact but do not decode as an
        // HlsResult: same quarantine pipeline as a digest mismatch.
        d->whyMiss = e.what();
        blobs_.quarantineObject(key, e.what(), d);
        return std::nullopt;
    }
}

std::optional<hls::HlsResult> ArtifactStore::load(const std::string& key,
                                                  std::string* whyMiss) const {
    LoadDiag diag;
    std::optional<hls::HlsResult> result = load(key, &diag);
    if (whyMiss != nullptr) {
        *whyMiss = diag.whyMiss;
    }
    return result;
}

hls::HlsResult ArtifactStore::loadOrThrow(const std::string& key) const {
    LoadDiag diag;
    std::optional<hls::HlsResult> result = load(key, &diag);
    if (result.has_value()) {
        return std::move(*result);
    }
    if (diag.whyMiss.empty()) {
        throw ArtifactError(format("no object %s", key.c_str()));
    }
    throw ArtifactCorruptError(format("%s: %s", key.c_str(), diag.whyMiss.c_str()));
}

void ArtifactStore::store(const std::string& key, const hls::HlsResult& result) const {
    const std::string payload = hls::encodeHlsResult(result);
    try {
        blobs_.store(key, payload);
    } catch (const Error& e) {
        // Store failures are transient to the stage supervisor (retried),
        // so surface them under the store's own error type.
        throw ArtifactError(format("storing %s failed: %s", key.c_str(), e.what()));
    }
}

std::uint64_t ArtifactStore::acquireLease(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return ++leases_[key];
}

std::uint64_t ArtifactStore::currentLease(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = leases_.find(key);
    return it == leases_.end() ? 0 : it->second;
}

void ArtifactStore::storeFenced(const std::string& key, const hls::HlsResult& result,
                                std::uint64_t leaseEpoch) const {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = leases_.find(key);
        const std::uint64_t current = it == leases_.end() ? 0 : it->second;
        if (leaseEpoch < current) {
            ++staleCommitsRejected_;
            Logger::global().warn(format("store: rejected stale commit of %s "
                                         "(lease epoch %llu < current %llu) — zombie "
                                         "worker fenced off",
                                         key.c_str(),
                                         static_cast<unsigned long long>(leaseEpoch),
                                         static_cast<unsigned long long>(current)));
            throw StaleLeaseError(format("commit of %s carries epoch %llu, current "
                                         "lease is %llu",
                                         key.c_str(),
                                         static_cast<unsigned long long>(leaseEpoch),
                                         static_cast<unsigned long long>(current)));
        }
    }
    store(key, result);
}

bool ArtifactStore::contains(const std::string& key) const {
    return blobs_.contains(key);
}

std::size_t ArtifactStore::objectCount() const {
    return blobs_.objectCount();
}

std::vector<std::string> ArtifactStore::keys() const {
    return blobs_.keys();
}

ArtifactStore::ScrubReport ArtifactStore::scrub() const {
    // Own loop rather than BlobStore::scrub so decode validation (the
    // typed layer's half of the contract) is part of the pass.
    ScrubReport report;
    for (const std::string& key : keys()) {
        ++report.scanned;
        LoadDiag diag;
        (void)load(key, &diag);
        if (diag.quarantined) {
            report.quarantined.emplace_back(key, diag.whyMiss);
        }
    }
    if (!report.quarantined.empty()) {
        Logger::global().warn(format("store: scrub quarantined %zu of %zu objects",
                                     report.quarantined.size(), report.scanned));
    }
    return report;
}

std::size_t ArtifactStore::quarantinedObjects() const {
    return blobs_.quarantinedObjects();
}

std::vector<ArtifactStore::QuarantineRecord> ArtifactStore::quarantineRecords() const {
    return blobs_.quarantineRecords();
}

std::size_t ArtifactStore::staleCommitsRejected() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return staleCommitsRejected_;
}

void ArtifactStore::corruptObject(const std::string& key) const {
    if (!blobs_.contains(key)) {
        throw ArtifactError("cannot corrupt missing object " + key);
    }
    blobs_.corruptObject(key);
}

void ArtifactStore::removeObject(const std::string& key) const {
    blobs_.removeObject(key);
}

} // namespace socgen::core
