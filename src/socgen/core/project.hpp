#pragma once

#include "socgen/core/flow.hpp"
#include "socgen/core/parser.hpp"

#include <memory>
#include <string>

namespace socgen::core {

/// Runs the complete flow on a textual DSL description (paper Section
/// IV-A: "we provide as input a file compliant with the DSL ... and a
/// synthesizable C/C++ file ... for each node, then we execute the Scala
/// program"). Returns the full flow result.
[[nodiscard]] FlowResult runDslText(std::string_view source,
                                    const hls::KernelLibrary& kernels,
                                    FlowOptions options = {},
                                    std::shared_ptr<HlsCache> cache = nullptr);

/// Same, reading the DSL from a file.
[[nodiscard]] FlowResult runDslFile(const std::string& path,
                                    const hls::KernelLibrary& kernels,
                                    FlowOptions options = {},
                                    std::shared_ptr<HlsCache> cache = nullptr);

/// Size metrics of the §VI-C comparison: the generated Tcl against the
/// DSL description that produced it.
struct DslTclComparison {
    std::size_t dslLines = 0;
    std::size_t dslChars = 0;   ///< non-whitespace characters
    std::size_t tclLines = 0;
    std::size_t tclChars = 0;

    [[nodiscard]] double lineRatio() const {
        return dslLines == 0 ? 0.0
                             : static_cast<double>(tclLines) /
                                   static_cast<double>(dslLines);
    }
    [[nodiscard]] double charRatio() const {
        return dslChars == 0 ? 0.0
                             : static_cast<double>(tclChars) /
                                   static_cast<double>(dslChars);
    }
};

[[nodiscard]] DslTclComparison compareDslToTcl(const FlowResult& result);

} // namespace socgen::core
