#include "socgen/core/journal.hpp"

#include "socgen/common/error.hpp"
#include "socgen/common/strings.hpp"
#include "socgen/common/textfile.hpp"

#include <filesystem>
#include <sstream>

namespace socgen::core {
namespace {

void appendEscaped(std::string& out, std::string_view text) {
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
            } else {
                out += c;
            }
        }
    }
}

/// Extracts the string value of `"key":"..."` from a JSON line produced
/// by renderJson(). Returns nullopt if the key is absent or the value is
/// torn (no closing quote) — good enough for our fixed, self-produced
/// schema; this is not a general JSON parser.
std::optional<std::string> extractString(std::string_view line, std::string_view key) {
    const std::string needle = "\"" + std::string(key) + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string_view::npos) {
        return std::nullopt;
    }
    std::string out;
    for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '"') {
            return out;
        }
        if (c == '\\') {
            if (i + 1 >= line.size()) {
                return std::nullopt;
            }
            const char esc = line[++i];
            switch (esc) {
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (i + 4 >= line.size()) {
                    return std::nullopt;
                }
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = line[i + 1 + static_cast<std::size_t>(k)];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else {
                        return std::nullopt;
                    }
                }
                i += 4;
                out += static_cast<char>(code);
                break;
            }
            default: out += esc;
            }
        } else {
            out += c;
        }
    }
    return std::nullopt;  // no closing quote: torn line
}

std::optional<std::uint64_t> extractSeq(std::string_view line) {
    const std::string_view needle = "\"seq\":";
    const std::size_t at = line.find(needle);
    if (at == std::string_view::npos) {
        return std::nullopt;
    }
    std::uint64_t value = 0;
    bool any = false;
    for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c < '0' || c > '9') {
            break;
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
        any = true;
    }
    return any ? std::optional<std::uint64_t>(value) : std::nullopt;
}

} // namespace

std::string JournalRecord::renderJson() const {
    std::string out;
    out += format("{\"seq\":%llu,\"event\":\"", static_cast<unsigned long long>(seq));
    appendEscaped(out, event);
    out += "\",\"stage\":\"";
    appendEscaped(out, stage);
    out += "\",\"digest\":\"";
    appendEscaped(out, digest);
    out += "\",\"note\":\"";
    appendEscaped(out, note);
    out += "\"}";
    return out;
}

std::optional<JournalRecord> JournalRecord::parseJson(std::string_view line) {
    if (line.empty() || line.front() != '{' || line.back() != '}') {
        return std::nullopt;
    }
    const auto seq = extractSeq(line);
    const auto event = extractString(line, "event");
    const auto stage = extractString(line, "stage");
    const auto digest = extractString(line, "digest");
    const auto note = extractString(line, "note");
    if (!seq || !event || !stage || !digest || !note) {
        return std::nullopt;
    }
    JournalRecord record;
    record.seq = *seq;
    record.event = *event;
    record.stage = *stage;
    record.digest = *digest;
    record.note = *note;
    return record;
}

FlowJournal FlowJournal::open(std::string path) {
    FlowJournal journal(std::move(path));
    if (!fileExists(journal.path_)) {
        return journal;
    }
    const std::string text = readTextFile(journal.path_);
    std::size_t lineStart = 0;
    bool torn = false;
    while (lineStart < text.size()) {
        const std::size_t lineEnd = text.find('\n', lineStart);
        if (lineEnd == std::string::npos) {
            // No trailing newline: the writer died mid-append. Drop the
            // fragment.
            torn = true;
            break;
        }
        const std::string_view line =
            std::string_view(text).substr(lineStart, lineEnd - lineStart);
        const auto record = JournalRecord::parseJson(line);
        if (!record) {
            // A complete but unparseable line means corruption mid-file;
            // everything after it is untrustworthy.
            torn = true;
            break;
        }
        if (record->event == "commit") {
            if (journal.committed_.find(record->stage) == journal.committed_.end()) {
                journal.commitOrder_.push_back(record->stage);
            }
            journal.committed_[record->stage] = record->digest;
        }
        journal.nextSeq_ = record->seq + 1;
        journal.records_.push_back(*record);
        lineStart = lineEnd + 1;
    }
    if (torn) {
        // Compact to the valid prefix so future appends produce a clean
        // file again.
        journal.rewrite();
    }
    return journal;
}

void FlowJournal::rewrite() {
    std::string text;
    for (const auto& record : records_) {
        text += record.renderJson();
        text += '\n';
    }
    writeFileAtomic(path_, text);
}

bool FlowJournal::matchesHeader(const std::string& flowFingerprint) const {
    for (const auto& record : records_) {
        if (record.event == "header") {
            return record.digest == flowFingerprint;
        }
    }
    return false;
}

void FlowJournal::reset(const std::string& flowFingerprint, const std::string& note) {
    records_.clear();
    committed_.clear();
    commitOrder_.clear();
    nextSeq_ = 0;
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    JournalRecord header;
    header.event = "header";
    header.digest = flowFingerprint;
    header.note = note;
    append(std::move(header));
}

void FlowJournal::begin(const std::string& stage) {
    JournalRecord record;
    record.event = "begin";
    record.stage = stage;
    append(std::move(record));
}

void FlowJournal::commit(const std::string& stage, const std::string& digest,
                         const std::string& note) {
    JournalRecord record;
    record.event = "commit";
    record.stage = stage;
    record.digest = digest;
    record.note = note;
    if (committed_.find(stage) == committed_.end()) {
        commitOrder_.push_back(stage);
    }
    committed_[stage] = digest;
    append(std::move(record));
}

void FlowJournal::noteEvent(const std::string& stage, const std::string& note) {
    JournalRecord record;
    record.event = "note";
    record.stage = stage;
    record.note = note;
    append(std::move(record));
}

bool FlowJournal::isCommitted(const std::string& stage) const {
    return committed_.find(stage) != committed_.end();
}

std::optional<std::string> FlowJournal::committedDigest(const std::string& stage) const {
    const auto it = committed_.find(stage);
    return it == committed_.end() ? std::nullopt : std::optional<std::string>(it->second);
}

std::vector<std::string> FlowJournal::committedStages() const {
    return commitOrder_;
}

std::string FlowJournal::renderText() const {
    std::string out;
    for (const auto& record : records_) {
        out += record.renderJson();
        out += '\n';
    }
    return out;
}

void FlowJournal::append(JournalRecord record) {
    record.seq = nextSeq_++;
    appendLineDurable(path_, record.renderJson());
    records_.push_back(std::move(record));
}

} // namespace socgen::core
