#pragma once

#include "socgen/core/diagnostics.hpp"

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace socgen::core {

/// Everything observable about a flow run, published as it happens. The
/// executor emits the lifecycle kinds; stage bodies emit the reuse kinds
/// (CacheHit/StoreHit/ArtifactRejected) because only they know where a
/// result came from.
enum class FlowEventKind {
    FlowBegin,         ///< executor accepted the graph; detail = project
    FlowEnd,           ///< all stages finished (or the flow aborted)
    StageBegin,        ///< a worker picked the stage up
    StageRetry,        ///< a transient failure was absorbed; detail = error
    StageTimeout,      ///< an attempt was abandoned at the deadline
    StageCommit,       ///< stage completed; detail = output digest
    StageDegraded,     ///< failure absorbed (no commit); detail = error
    StageFailed,       ///< failure propagated; detail = error
    CacheHit,          ///< served from the in-memory HlsCache
    StoreHit,          ///< served from the persistent ArtifactStore
    ArtifactRejected,  ///< a stored object failed validation; detail = why
    DigestMismatch,    ///< recomputed output differs from the journal's commit
    ArtifactQuarantined, ///< a corrupt object was moved to quarantine/; detail = why
    RemoteSynthesis,   ///< served by an out-of-process worker; detail = lease epoch
};

[[nodiscard]] const char* toString(FlowEventKind kind);

struct FlowEvent {
    FlowEventKind kind = FlowEventKind::StageBegin;
    std::string stage;        ///< stage name ("" for flow-level events)
    std::string detail;       ///< digest / error text / source, kind-specific
    unsigned attempt = 0;     ///< supervised attempt count at publish time
    unsigned worker = 0;      ///< executor worker index (0 when serial)
    double toolSeconds = 0.0; ///< simulated tool time (commit events)
    double hostMs = 0.0;      ///< stage wall time (commit/degraded/failed)
    std::uint64_t seq = 0;    ///< bus-assigned publish sequence number
    double wallMs = 0.0;      ///< bus-assigned ms since the bus was created

    [[nodiscard]] std::string render() const;
};

/// Subscriber interface. Delivery is serialized by the bus's lock, so a
/// subscriber needs no locking of its own, but it must not publish back
/// into the bus from onEvent (the lock is held).
class FlowEventSubscriber {
public:
    virtual ~FlowEventSubscriber() = default;
    virtual void onEvent(const FlowEvent& event) = 0;
};

/// Fan-out bus connecting the stage-graph executor (and stage bodies) to
/// any number of subscribers. Thread-safe: publish() may be called from
/// any worker; events are stamped with a sequence number and a wall-clock
/// offset and delivered synchronously, one at a time.
class FlowEventBus {
public:
    FlowEventBus();

    void subscribe(std::shared_ptr<FlowEventSubscriber> subscriber);

    void publish(FlowEvent event);

    [[nodiscard]] std::uint64_t published() const;

private:
    mutable std::mutex mutex_;
    std::vector<std::shared_ptr<FlowEventSubscriber>> subscribers_;
    std::uint64_t nextSeq_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

/// Bundled subscriber: structured log lines through Logger::global().
/// Begin/commit land at Debug, reuse at Info, retries/timeouts/degrades
/// and digest mismatches at Warn — the Logger level does the filtering.
class LogSubscriber : public FlowEventSubscriber {
public:
    void onEvent(const FlowEvent& event) override;
};

/// Bundled subscriber: accumulates the per-stage wall-clock table
/// (FlowDiagnostics::StageOutcome) keyed by stage name. Event arrival
/// order is scheduling-dependent; orderedRows() re-imposes the caller's
/// deterministic stage order so the table is jobs-invariant.
class StageTableSubscriber : public FlowEventSubscriber {
public:
    void onEvent(const FlowEvent& event) override;

    /// Rows for `stageOrder`, skipping stages that never began.
    [[nodiscard]] std::vector<FlowDiagnostics::StageOutcome> orderedRows(
        const std::vector<std::string>& stageOrder) const;

    [[nodiscard]] std::size_t cacheHits() const { return cacheHits_; }
    [[nodiscard]] std::size_t storeHits() const { return storeHits_; }
    [[nodiscard]] std::size_t artifactRejections() const { return rejections_; }
    [[nodiscard]] std::size_t artifactQuarantines() const { return quarantines_; }
    [[nodiscard]] std::size_t remoteSyntheses() const { return remoteSyntheses_; }

private:
    std::map<std::string, FlowDiagnostics::StageOutcome> rows_;
    std::size_t cacheHits_ = 0;
    std::size_t storeHits_ = 0;
    std::size_t rejections_ = 0;
    std::size_t quarantines_ = 0;
    std::size_t remoteSyntheses_ = 0;
};

/// Bundled subscriber: records one complete ("ph":"X") span per stage and
/// writes a chrome://tracing / Perfetto compatible JSON timeline. The
/// trace is wall-clock truth — it is the one output that is *meant* to
/// differ between jobs=1 and jobs=N, showing the overlap the DAG
/// executor found.
class ChromeTraceSubscriber : public FlowEventSubscriber {
public:
    void onEvent(const FlowEvent& event) override;

    /// The trace as a JSON string (traceEvents array form).
    [[nodiscard]] std::string renderJson() const;

    /// Writes renderJson() to `path` (atomic whole-file write).
    void write(const std::string& path) const;

private:
    struct Span {
        std::string name;
        unsigned worker = 0;
        double beginMs = 0.0;
        double endMs = 0.0;
        std::string outcome;  ///< "commit", "degraded", "failed"
    };
    std::map<std::string, double> openBegins_;  ///< stage -> begin wallMs
    std::map<std::string, unsigned> openWorkers_;
    std::vector<Span> spans_;
};

} // namespace socgen::core
