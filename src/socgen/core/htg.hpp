#pragma once

#include "socgen/hls/directives.hpp"

#include <map>
#include <string>
#include <vector>

namespace socgen::core {

/// -- The DSL-level task graph G = {N, E} (paper Section III) --------------
///
/// Nodes are the hardware cores to generate; edges are either AXI-Lite
/// attachments (`tg connect`) or AXI-Stream links (`tg link ... to ...`),
/// where one side of a link may be 'soc (the processing system through
/// the DMA core).

struct TgPort {
    std::string name;
    hls::InterfaceProtocol protocol = hls::InterfaceProtocol::AxiStream;  ///< i / is
};

struct TgNode {
    std::string name;
    std::vector<TgPort> ports;

    [[nodiscard]] bool hasPort(std::string_view port) const;
    [[nodiscard]] const TgPort& port(std::string_view port) const;
    [[nodiscard]] bool hasAxiLitePort() const;
};

struct TgEndpoint {
    bool soc = false;
    std::string node;
    std::string port;

    [[nodiscard]] static TgEndpoint socEnd() { return TgEndpoint{true, {}, {}}; }
    [[nodiscard]] static TgEndpoint of(std::string node, std::string port) {
        return TgEndpoint{false, std::move(node), std::move(port)};
    }
    [[nodiscard]] std::string str() const;
    friend bool operator==(const TgEndpoint&, const TgEndpoint&) = default;
};

struct TgLink {
    TgEndpoint from;
    TgEndpoint to;
};

struct TgConnect {
    std::string node;
};

/// The lowered task graph the DSL front ends produce and the flow
/// consumes.
class TaskGraph {
public:
    void addNode(TgNode node);
    void addLink(TgLink link);
    void addConnect(TgConnect connect);

    [[nodiscard]] const std::vector<TgNode>& nodes() const { return nodes_; }
    [[nodiscard]] const std::vector<TgLink>& links() const { return links_; }
    [[nodiscard]] const std::vector<TgConnect>& connects() const { return connects_; }

    [[nodiscard]] bool hasNode(std::string_view name) const;
    [[nodiscard]] const TgNode& node(std::string_view name) const;

    /// Structural validation: endpoints exist, protocols match edge kinds
    /// (links touch `is` ports, connects touch nodes with `i` ports),
    /// stream ports used exactly once. Throws DslError.
    void validate() const;

    /// Renders the graph in the paper's concrete DSL syntax (Listing 2-4
    /// style). parseDsl(renderDsl(g)) == g (round-trip tested).
    [[nodiscard]] std::string renderDsl(const std::string& projectName) const;

    friend bool operator==(const TaskGraph&, const TaskGraph&);

private:
    std::vector<TgNode> nodes_;
    std::vector<TgLink> links_;
    std::vector<TgConnect> connects_;
};

bool operator==(const TgPort&, const TgPort&);
bool operator==(const TgNode&, const TgNode&);
bool operator==(const TgLink&, const TgLink&);
bool operator==(const TgConnect&, const TgConnect&);

/// -- The two-level Hierarchical Task Graph (paper Section II-A) -----------
///
/// Top-level nodes are either simple tasks or phases; a phase contains a
/// dataflow graph of actors exchanging data over streams. HW/SW
/// partitioning happens at this level; lowering produces the DSL task
/// graph for the hardware side.

enum class Mapping { Software, Hardware };

struct HtgActorPort {
    std::string name;
    unsigned width = 32;
};

/// A dataflow actor inside a phase (stream interfaces only).
struct HtgActor {
    std::string name;
    std::vector<HtgActorPort> inputs;
    std::vector<HtgActorPort> outputs;
};

/// Stream edge between two actors of the same phase.
struct HtgDataflowEdge {
    std::string fromActor;
    std::string fromPort;
    std::string toActor;
    std::string toPort;
};

struct HtgPhase {
    std::string name;
    std::vector<HtgActor> actors;
    std::vector<HtgDataflowEdge> edges;

    [[nodiscard]] const HtgActor& actor(std::string_view name) const;
    [[nodiscard]] bool hasActor(std::string_view name) const;
};

enum class HtgNodeKind { Task, Phase };

struct HtgNode {
    std::string name;
    HtgNodeKind kind = HtgNodeKind::Task;
    int phaseIndex = -1;                 ///< into Htg::phases() when kind==Phase
    bool hardwareCapable = false;        ///< simple tasks only
    std::vector<TgPort> hardwarePorts;   ///< interface if mapped to hardware
};

/// Top-level precedence edge (data through shared memory).
struct HtgEdge {
    std::string from;
    std::string to;
};

class Htg {
public:
    void addTask(std::string name, bool hardwareCapable = false,
                 std::vector<TgPort> hardwarePorts = {});
    int addPhase(HtgPhase phase);  ///< also adds a top node; returns phase index
    void addEdge(std::string from, std::string to);

    [[nodiscard]] const std::vector<HtgNode>& topNodes() const { return topNodes_; }
    [[nodiscard]] const std::vector<HtgEdge>& topEdges() const { return topEdges_; }
    [[nodiscard]] const std::vector<HtgPhase>& phases() const { return phases_; }

    [[nodiscard]] const HtgNode& topNode(std::string_view name) const;

    /// All partitionable unit names: hardware-capable tasks plus every
    /// phase actor.
    [[nodiscard]] std::vector<std::string> partitionableUnits() const;

    /// Validation: unique names, edges reference nodes, phase edges
    /// reference actor ports. Throws DslError.
    void validate() const;

    /// Graphviz rendering of the two-level structure (Figure 1 / 8).
    [[nodiscard]] std::string toDot() const;

private:
    std::vector<HtgNode> topNodes_;
    std::vector<HtgEdge> topEdges_;
    std::vector<HtgPhase> phases_;
};

/// HW/SW assignment of partitionable units (missing entries = Software).
struct HtgPartition {
    std::map<std::string, Mapping> mapping;

    [[nodiscard]] Mapping of(const std::string& unit) const;
    [[nodiscard]] std::vector<std::string> hardwareUnits() const;
};

/// Lowers a partitioned HTG to the DSL task graph (paper Section III:
/// "the actual DSL will reflect more the expected output than the HTG"):
///  - hardware phase actors become nodes with `is` ports;
///  - dataflow edges between two hardware actors become direct links;
///  - edges crossing the HW/SW boundary become links to/from 'soc;
///  - hardware-capable simple tasks become nodes with `i` ports plus a
///    `tg connect`.
[[nodiscard]] TaskGraph lowerToTaskGraph(const Htg& htg, const HtgPartition& partition);

} // namespace socgen::core
