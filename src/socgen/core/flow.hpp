#pragma once

#include "socgen/common/stopwatch.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/block_design.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/sw/boot.hpp"
#include "socgen/sw/drivers.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace socgen::core {

/// Shared HLS result cache: the paper generates each hardware core only
/// once across the four case-study architectures ("for efficiency, we
/// first generated Arch4 that has all the functions implemented in
/// hardware"). Keyed by kernel name; thread-safe.
class HlsCache {
public:
    [[nodiscard]] const hls::HlsResult* find(const std::string& kernelName) const;
    void store(const std::string& kernelName, hls::HlsResult result);
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, hls::HlsResult> results_;
};

/// What the flow does when HLS fails for one node. Degrade isolates the
/// failure: the node is dropped from the hardware design (its links are
/// rewired to the PS so partner cores stay connected) and recorded in
/// FlowDiagnostics as a software-fallback candidate; the flow completes.
/// Configuration errors (DslError) always abort regardless of policy —
/// they indicate a broken project, not a flaky tool.
enum class HlsFailurePolicy { Abort, Degrade };

struct FlowOptions {
    soc::FpgaDevice device = soc::zedboard();
    soc::DmaPolicy dmaPolicy = soc::DmaPolicy::SharedDma;
    unsigned jobs = 1;            ///< parallel per-node HLS runs
    bool runSynthesis = true;     ///< stop after integration when false
    bool generateSoftware = true;
    std::string outputDir;        ///< write artifacts when non-empty

    hls::Directives defaultDirectives;
    /// Per-kernel directive overrides (trip counts, unit limits, ...).
    std::map<std::string, hls::Directives> kernelDirectives;

    HlsFailurePolicy hlsFailurePolicy = HlsFailurePolicy::Degrade;
    /// Fault hook: kernels listed here fail HLS with an injected HlsError
    /// (bypassing the cache), exercising the degrade path in tests.
    std::set<std::string> injectHlsFailures;
};

/// Per-node outcome record for one flow run, carried by FlowResult so
/// callers can tell a clean all-hardware build from a degraded one.
struct FlowDiagnostics {
    struct NodeOutcome {
        std::string node;
        bool degraded = false;  ///< HLS failed; node needs software fallback
        std::string error;      ///< failure text when degraded
        double toolSeconds = 0.0;
    };

    std::vector<NodeOutcome> nodes;

    [[nodiscard]] bool anyDegraded() const;
    [[nodiscard]] std::vector<std::string> degradedNodes() const;
    [[nodiscard]] std::string render() const;
};

/// Everything one flow run produces — the contents of the generated
/// project directory.
struct FlowResult {
    std::string projectName;
    TaskGraph graph;
    std::string dslText;   ///< canonical DSL rendering (the §VI-C numerator)
    std::map<std::string, hls::HlsResult> hlsResults;
    std::map<std::string, hls::Program> programs;
    soc::BlockDesign design{"uninitialised"};
    std::string tclText;   ///< generated Vivado script (the §VI-C denominator)
    soc::SynthesisResult synthesis;
    soc::Bitstream bitstream;
    std::string deviceTree;
    std::vector<sw::GeneratedFile> driverFiles;
    sw::BootImage bootImage;
    PhaseTimeline timeline;
    FlowDiagnostics diagnostics;
};

/// The flow orchestrator behind the DSL: HLS per node, system
/// integration, synthesis/bitstream, and software generation — the
/// right-hand side of the paper's Figure 3.
class Flow {
public:
    Flow(FlowOptions options, const hls::KernelLibrary& kernels,
         std::shared_ptr<HlsCache> cache = nullptr);

    /// Runs the complete flow on a validated task graph.
    [[nodiscard]] FlowResult run(const std::string& projectName, const TaskGraph& graph);

    /// Runs HLS for a single node (used by the step-by-step DSL execution;
    /// consults/updates the cache). Returns the result and the tool time
    /// charged (0 on cache hit).
    [[nodiscard]] std::pair<hls::HlsResult, double> synthesizeNode(const TgNode& node);

    [[nodiscard]] const FlowOptions& options() const { return options_; }

private:
    [[nodiscard]] hls::Directives directivesFor(const TgNode& node) const;
    void runAllHls(const TaskGraph& graph, FlowResult& result);
    void integrate(const std::string& projectName, const TaskGraph& graph,
                   FlowResult& result) const;
    void writeArtifacts(const FlowResult& result) const;

    FlowOptions options_;
    const hls::KernelLibrary& kernels_;
    std::shared_ptr<HlsCache> cache_;
    hls::HlsEngine engine_;
};

} // namespace socgen::core
