#pragma once

#include "socgen/common/stopwatch.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/supervisor.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/sim/fault.hpp"
#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/block_design.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/sw/boot.hpp"
#include "socgen/sw/drivers.hpp"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace socgen::core {

/// Shared in-memory HLS result cache: the paper generates each hardware
/// core only once across the four case-study architectures ("for
/// efficiency, we first generated Arch4 that has all the functions
/// implemented in hardware"). Keyed by the same content key as the
/// persistent ArtifactStore — a digest of (kernel source, directives,
/// device, tool version) — so a lookup can never return a result
/// synthesized under different directives or for a different part.
/// Thread-safe.
class HlsCache {
public:
    [[nodiscard]] const hls::HlsResult* find(const std::string& key) const;
    void store(const std::string& key, hls::HlsResult result);
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, hls::HlsResult> results_;
};

/// What the flow does when HLS fails for one node. Degrade isolates the
/// failure: the node is dropped from the hardware design (its links are
/// rewired to the PS so partner cores stay connected) and recorded in
/// FlowDiagnostics as a software-fallback candidate; the flow completes.
/// Configuration errors (DslError) always abort regardless of policy —
/// they indicate a broken project, not a flaky tool.
enum class HlsFailurePolicy { Abort, Degrade };

struct FlowOptions {
    soc::FpgaDevice device = soc::zedboard();
    soc::DmaPolicy dmaPolicy = soc::DmaPolicy::SharedDma;
    unsigned jobs = 1;            ///< parallel per-node HLS runs
    bool runSynthesis = true;     ///< stop after integration when false
    bool generateSoftware = true;
    std::string outputDir;        ///< write artifacts when non-empty

    hls::Directives defaultDirectives;
    /// Per-kernel directive overrides (trip counts, unit limits, ...).
    std::map<std::string, hls::Directives> kernelDirectives;

    HlsFailurePolicy hlsFailurePolicy = HlsFailurePolicy::Degrade;
    /// Fault hook: kernels listed here fail HLS with an injected HlsError
    /// on every attempt (bypassing the cache), exercising retry
    /// exhaustion and the degrade path in tests.
    std::set<std::string> injectHlsFailures;
    /// Fault hook: kernel -> number of initial HLS attempts that fail
    /// before one succeeds, exercising the retry-recovers path.
    std::map<std::string, unsigned> transientHlsFailures;

    /// Tool identity folded into artifact keys: bumping it invalidates
    /// every stored artifact, like moving to a new Vivado release.
    std::string toolVersion = "socgen-hls-1";

    /// Retry/deadline policy applied to every supervised flow stage.
    StagePolicy stagePolicy;

    /// Flow-level fault events (FlowCrash, ArtifactCorrupt, StageHang)
    /// consumed by the flow itself; cycle-level kinds in this plan are
    /// ignored here.
    sim::FaultPlan flowFaults;
};

/// Per-node outcome record for one flow run, carried by FlowResult so
/// callers can tell a clean all-hardware build from a degraded one and a
/// cold build from a resumed one.
struct FlowDiagnostics {
    struct NodeOutcome {
        std::string node;
        bool degraded = false;  ///< HLS failed; node needs software fallback
        std::string error;      ///< failure text when degraded
        double toolSeconds = 0.0;
        unsigned attempts = 0;     ///< HLS engine attempts this run (0 = reused)
        bool cacheHit = false;     ///< served from the in-memory HlsCache
        bool storeHit = false;     ///< served from the persistent ArtifactStore
        bool resumedFromJournal = false;  ///< store hit confirmed by a prior
                                          ///< run's journal commit record
        std::string artifactKey;   ///< content key (empty if key not derived)
    };

    std::vector<NodeOutcome> nodes;

    std::size_t stageRetries = 0;      ///< extra attempts across all stages
    std::size_t stageTimeouts = 0;     ///< deadline expiries across all stages
    std::size_t resumedStages = 0;     ///< non-HLS stages re-verified against a
                                       ///< prior run's journal commit
    std::size_t digestMismatches = 0;  ///< journal digest disagreements (should
                                       ///< stay 0 for deterministic flows)
    std::size_t corruptArtifacts = 0;  ///< store objects rejected by validation

    [[nodiscard]] bool anyDegraded() const;
    [[nodiscard]] std::vector<std::string> degradedNodes() const;
    /// Number of nodes actually synthesized by the HLS engine this run.
    [[nodiscard]] std::size_t engineRuns() const;
    [[nodiscard]] std::size_t cacheHits() const;
    [[nodiscard]] std::size_t storeHits() const;
    [[nodiscard]] std::string render() const;
};

/// Everything one flow run produces — the contents of the generated
/// project directory.
struct FlowResult {
    std::string projectName;
    TaskGraph graph;
    std::string dslText;   ///< canonical DSL rendering (the §VI-C numerator)
    std::map<std::string, hls::HlsResult> hlsResults;
    std::map<std::string, hls::Program> programs;
    soc::BlockDesign design{"uninitialised"};
    std::string tclText;   ///< generated Vivado script (the §VI-C denominator)
    soc::SynthesisResult synthesis;
    soc::Bitstream bitstream;
    std::string deviceTree;
    std::vector<sw::GeneratedFile> driverFiles;
    sw::BootImage bootImage;
    PhaseTimeline timeline;
    FlowDiagnostics diagnostics;
};

/// The flow orchestrator behind the DSL: HLS per node, system
/// integration, synthesis/bitstream, and software generation — the
/// right-hand side of the paper's Figure 3 — run as a sequence of
/// journaled, supervised, individually committed stages.
///
/// Crash recovery: when `outputDir` is set, the flow keeps a journal
/// (`outputDir/.socgen/journal/<project>.jsonl`) recording each stage's
/// begin/commit, and a content-addressed artifact store
/// (`outputDir/.socgen/store`) holding every synthesized HLS core. A
/// re-run after a crash reloads committed cores from the store (zero
/// re-synthesis), re-executes the cheap deterministic stages, and
/// verifies their outputs against the journal's committed digests.
class Flow {
public:
    Flow(FlowOptions options, const hls::KernelLibrary& kernels,
         std::shared_ptr<HlsCache> cache = nullptr);

    /// Runs the complete flow on a validated task graph.
    [[nodiscard]] FlowResult run(const std::string& projectName, const TaskGraph& graph);

    /// Runs HLS for a single node (used by the step-by-step DSL execution;
    /// consults/updates the cache and the artifact store). Returns the
    /// result and the tool time charged (0 on cache or store hit).
    [[nodiscard]] std::pair<hls::HlsResult, double> synthesizeNode(const TgNode& node);

    [[nodiscard]] const FlowOptions& options() const { return options_; }

    /// The persistent artifact store backing this flow (nullptr when
    /// `outputDir` is empty).
    [[nodiscard]] const ArtifactStore* artifactStore() const { return store_.get(); }

private:
    struct Integration {
        soc::BlockDesign design{"uninitialised"};
        std::string tclText;
    };

    [[nodiscard]] hls::Directives directivesFor(const TgNode& node) const;
    [[nodiscard]] std::string flowFingerprint(const std::string& projectName,
                                              const TaskGraph& graph) const;
    [[nodiscard]] std::pair<hls::HlsResult, double> synthesizeNodeTracked(
        const TgNode& node, StageSupervisor& supervisor,
        FlowDiagnostics::NodeOutcome& outcome);
    void runAllHls(const TaskGraph& graph, FlowResult& result,
                   StageSupervisor& supervisor);
    [[nodiscard]] Integration integrate(const std::string& projectName,
                                        const TaskGraph& graph,
                                        const FlowResult& result) const;
    void writeArtifacts(const FlowResult& result) const;

    /// Throws FlowCrashError if a FlowCrash event is armed for this
    /// (stage, phase) boundary. Thread-safe; events are one-shot.
    void maybeCrash(const std::string& stage, std::uint64_t phase);
    /// Sleeps if a StageHang event is armed for this stage (one-shot).
    void maybeHang(const std::string& stage);
    /// Corrupts the stored artifact of `kernel` if an ArtifactCorrupt
    /// event is armed for it (one-shot).
    void maybeCorruptArtifact(const std::string& kernel, const std::string& key);
    /// True if an injected transient failure should fire for `kernel`
    /// (decrements the per-kernel budget).
    [[nodiscard]] bool consumeTransientFailure(const std::string& kernel);

    FlowOptions options_;
    const hls::KernelLibrary& kernels_;
    std::shared_ptr<HlsCache> cache_;
    hls::HlsEngine engine_;
    std::unique_ptr<ArtifactStore> store_;

    std::mutex faultMutex_;
    std::vector<sim::FaultEvent> pendingFlowFaults_;
    std::map<std::string, unsigned> transientRemaining_;
    std::atomic<std::size_t> corruptDetected_{0};
    std::atomic<std::size_t> nodeTimeouts_{0};

    // Per-run journal state (valid only inside run()).
    FlowJournal* journal_ = nullptr;
    std::set<std::string> committedAtOpen_;
    std::map<std::string, std::string> digestsAtOpen_;
};

} // namespace socgen::core
