#pragma once

#include "socgen/common/stopwatch.hpp"
#include "socgen/core/artifact_store.hpp"
#include "socgen/core/diagnostics.hpp"
#include "socgen/core/event_bus.hpp"
#include "socgen/core/htg.hpp"
#include "socgen/core/journal.hpp"
#include "socgen/core/remote_hls.hpp"
#include "socgen/core/stage_graph.hpp"
#include "socgen/core/supervisor.hpp"
#include "socgen/core/synth_gate.hpp"
#include "socgen/hls/engine.hpp"
#include "socgen/rtl/sim_backend.hpp"
#include "socgen/sim/fault.hpp"
#include "socgen/soc/bitstream.hpp"
#include "socgen/soc/block_design.hpp"
#include "socgen/soc/synthesis.hpp"
#include "socgen/sw/boot.hpp"
#include "socgen/sw/drivers.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace socgen::core {

/// Shared in-memory HLS result cache: the paper generates each hardware
/// core only once across the four case-study architectures ("for
/// efficiency, we first generated Arch4 that has all the functions
/// implemented in hardware"). Keyed by the same content key as the
/// persistent ArtifactStore — a digest of (kernel source, directives,
/// device, tool version) — so a lookup can never return a result
/// synthesized under different directives or for a different part.
/// Thread-safe: find() returns a copy, never a pointer into the map, so
/// a hit stays valid while concurrent stages insert.
class HlsCache {
public:
    [[nodiscard]] std::optional<hls::HlsResult> find(const std::string& key) const;
    void store(const std::string& key, hls::HlsResult result);
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::map<std::string, hls::HlsResult> results_;
};

/// What the flow does when HLS fails for one node. Degrade isolates the
/// failure: the node is dropped from the hardware design (its links are
/// rewired to the PS so partner cores stay connected) and recorded in
/// FlowDiagnostics as a software-fallback candidate; the flow completes.
/// Configuration errors (DslError) always abort regardless of policy —
/// they indicate a broken project, not a flaky tool.
enum class HlsFailurePolicy { Abort, Degrade };

struct FlowOptions {
    soc::FpgaDevice device = soc::zedboard();
    soc::DmaPolicy dmaPolicy = soc::DmaPolicy::SharedDma;
    /// Worker threads over the whole stage graph: per-node HLS runs AND
    /// independent downstream stages (device tree / drivers alongside
    /// synthesis) execute concurrently. Overridable via the
    /// SOCGEN_FLOW_JOBS environment variable.
    unsigned jobs = 1;
    bool runSynthesis = true;     ///< stop after integration when false
    bool generateSoftware = true;
    std::string outputDir;        ///< write artifacts when non-empty

    hls::Directives defaultDirectives;
    /// Per-kernel directive overrides (trip counts, unit limits, ...).
    std::map<std::string, hls::Directives> kernelDirectives;

    HlsFailurePolicy hlsFailurePolicy = HlsFailurePolicy::Degrade;
    /// Fault hook: kernels listed here fail HLS with an injected HlsError
    /// on every attempt (bypassing the cache), exercising retry
    /// exhaustion and the degrade path in tests.
    std::set<std::string> injectHlsFailures;
    /// Fault hook: kernel -> number of initial HLS attempts that fail
    /// before one succeeds, exercising the retry-recovers path.
    std::map<std::string, unsigned> transientHlsFailures;

    /// Tool identity folded into artifact keys: bumping it invalidates
    /// every stored artifact, like moving to a new Vivado release.
    std::string toolVersion = "socgen-hls-1";

    /// RTL simulation backend used for sim-derived flow outputs (core
    /// hosting, traces, timing reports). Auto resolves through the
    /// SOCGEN_SIM_BACKEND environment override, then to Compiled. The
    /// resolved name is folded into the flow fingerprint — switching the
    /// backend resets the journal instead of replaying artifacts that
    /// were derived under the other engine. Excluded from the HLS
    /// artifact key on purpose: generated netlists do not depend on how
    /// they are later simulated.
    rtl::SimBackend simBackend = rtl::SimBackend::Auto;

    /// Worker threads for the compiled backend's partitioned level-band
    /// evaluation. 0 (Auto) resolves through SOCGEN_SIM_THREADS, then 1.
    /// Fingerprint-relevant like the backend: partitioned evaluation is
    /// bit-identical by construction, but the fingerprint records the
    /// resolved count so any divergence a future change introduced would
    /// reset the journal instead of silently replaying artifacts.
    unsigned simThreads = 0;

    /// Stimulus lanes for batched co-simulation sweeps (1..64; 0 = 1).
    /// Folded into the flow fingerprint for the same reason.
    unsigned simBatchLanes = 0;

    /// Retry/deadline policy applied to every supervised flow stage.
    StagePolicy stagePolicy;

    /// Flow-level fault events (FlowCrash, ArtifactCorrupt, StageHang)
    /// consumed by the flow itself; cycle-level kinds in this plan are
    /// ignored here.
    sim::FaultPlan flowFaults;

    /// Write a chrome://tracing / Perfetto JSON timeline of the stage
    /// graph here when non-empty (one span per stage, worker as tid).
    std::string traceOutPath;

    /// Model the external vendor tools' wall-clock cost: each stage
    /// attempt blocks for its simulated tool-seconds times this many
    /// milliseconds, standing in for the subprocess wait (a real Vivado
    /// run is minutes of blocked wall-clock, not host CPU). Reused HLS
    /// artifacts never wait — a cache or store hit means the tool never
    /// ran. 0 disables the wait; like `jobs`, the knob is excluded from
    /// the flow fingerprint because it cannot change any output.
    double toolLatencyMsPerToolSecond = 0.0;

    /// Extra event-bus subscribers attached for the run, after the
    /// built-in log/table/trace subscribers.
    std::vector<std::shared_ptr<FlowEventSubscriber>> subscribers;

    /// Shared persistent artifact store. When set, the flow uses it
    /// instead of creating a private store under outputDir — the flow
    /// service points every tenant at one store so identical HLS work
    /// is paid for once across the fleet. Content-addressed keys make
    /// this safe: a hit is valid no matter which tenant produced it.
    std::shared_ptr<ArtifactStore> sharedStore;

    /// In-flight synthesis dedupe across concurrent flows (see
    /// SynthGate). Only useful together with a shared store or cache;
    /// nullptr disables gating (single-flow runs need none).
    std::shared_ptr<SynthGate> synthGate;

    /// External stage scheduler: when set, the executor submits ready
    /// stages to it instead of spawning a private worker pool and
    /// `jobs` is ignored — the service's shared pool owns concurrency
    /// and cross-tenant fairness.
    std::shared_ptr<StageScheduler> stageScheduler;

    /// Out-of-process synthesis: when set, HLS attempts dispatch to this
    /// executor (the service's worker fleet) instead of the in-process
    /// engine. WorkerUnavailableError from the executor degrades the
    /// attempt back to in-process synthesis — the fleet accelerates and
    /// crash-isolates, it never gates correctness.
    std::shared_ptr<RemoteHlsExecutor> remoteHls;
};

/// Everything one flow run produces — the contents of the generated
/// project directory.
struct FlowResult {
    std::string projectName;
    TaskGraph graph;
    std::string dslText;   ///< canonical DSL rendering (the §VI-C numerator)
    std::map<std::string, hls::HlsResult> hlsResults;
    std::map<std::string, hls::Program> programs;
    soc::BlockDesign design{"uninitialised"};
    std::string tclText;   ///< generated Vivado script (the §VI-C denominator)
    soc::SynthesisResult synthesis;
    soc::Bitstream bitstream;
    std::string deviceTree;
    std::vector<sw::GeneratedFile> driverFiles;
    sw::BootImage bootImage;
    PhaseTimeline timeline;
    FlowDiagnostics diagnostics;
};

/// The flow orchestrator behind the DSL: HLS per node, system
/// integration, synthesis/bitstream, and software generation — the
/// right-hand side of the paper's Figure 3 — declared as a stage graph
/// and executed by the generic StageGraphExecutor, which owns journaling,
/// supervision, fault hooks, event publication and the worker pool.
///
/// The graph: scala → hls:<node> (one stage per node) → integrate →
/// {synth, devicetree, drivers} in parallel → boot(synth, devicetree) →
/// artifacts. `jobs` governs concurrency across the whole graph, not
/// just the HLS fan-out.
///
/// Crash recovery: when `outputDir` is set, the flow keeps a journal
/// (`outputDir/.socgen/journal/<project>.jsonl`) recording each stage's
/// begin/commit, and a content-addressed artifact store
/// (`outputDir/.socgen/store`) holding every synthesized HLS core. A
/// re-run after a crash reloads committed cores from the store (zero
/// re-synthesis), re-executes the cheap deterministic stages, and
/// verifies their outputs against the journal's committed digests.
class Flow {
public:
    Flow(FlowOptions options, const hls::KernelLibrary& kernels,
         std::shared_ptr<HlsCache> cache = nullptr);

    /// Runs the complete flow on a validated task graph.
    [[nodiscard]] FlowResult run(const std::string& projectName, const TaskGraph& graph);

    /// Runs HLS for a single node (used by the step-by-step DSL execution;
    /// consults/updates the cache and the artifact store). Returns the
    /// result and the tool time charged (0 on cache or store hit).
    [[nodiscard]] std::pair<hls::HlsResult, double> synthesizeNode(const TgNode& node);

    [[nodiscard]] const FlowOptions& options() const { return options_; }

    /// The persistent artifact store backing this flow (nullptr when
    /// `outputDir` is empty).
    [[nodiscard]] const ArtifactStore* artifactStore() const { return store_.get(); }

private:
    struct Integration {
        soc::BlockDesign design{"uninitialised"};
        std::string tclText;
    };

    /// Outcome of one HLS attempt body: the result plus where it came
    /// from. Produced inside the supervised attempt (pure — no shared
    /// writes); consumed by the commit phase, which persists the result
    /// and publishes the reuse events exactly once.
    struct HlsAttemptOut {
        hls::HlsResult result;
        std::string key;           ///< content-addressed artifact key
        double toolSeconds = 0.0;  ///< tool time charged (0 on reuse)
        bool cacheHit = false;
        bool storeHit = false;
        bool resumedFromJournal = false;
        bool fromEngine = false;   ///< synthesized by the engine this attempt
        bool dedupedInFlight = false;  ///< waited on another flow's synthesis
        bool remoteWorker = false; ///< synthesized by an out-of-process worker
        /// Lease epoch of the remote dispatch that produced the result;
        /// 0 for in-process synthesis. Non-zero makes the commit use
        /// ArtifactStore::storeFenced, which rejects zombie commits.
        std::uint64_t leaseEpoch = 0;
        std::string rejectedWhy;   ///< non-empty: a stored object failed validation
        bool quarantined = false;  ///< the rejected object was quarantined
        /// SynthGate leadership token, held until this value is
        /// destroyed after the commit persisted the result — so waiting
        /// followers wake to a store hit, and an exception on any path
        /// releases leadership via the token's deleter.
        std::shared_ptr<void> gateToken;
    };

    [[nodiscard]] hls::Directives directivesFor(const TgNode& node) const;
    /// Directives for one process of a network node. Lookup order:
    /// kernelDirectives["node/process"] (per-process override), then
    /// kernelDirectives["node"], then the flow default. Channel-connected
    /// ports are forced AXI-Stream; exported ports inherit the protocol
    /// the DSL declared on their network port.
    [[nodiscard]] hls::Directives directivesForProcess(const TgNode& node,
                                                       const hls::ProcessNetwork& network,
                                                       const std::string& process) const;
    /// The node's process network (a single kernel registers as a trivial
    /// one-process network); throws DslError when nothing is registered.
    [[nodiscard]] const hls::ProcessNetwork& nodeNetwork(const TgNode& node) const;
    /// Structural network verification plus DSL-port/interface-kind
    /// consistency against the network's external signature.
    void validateNodeInterface(const TgNode& node,
                               const hls::ProcessNetwork& network) const;
    /// Content key of a whole network node: the network fingerprint plus
    /// every per-process artifact key. Not a store key — assembly is
    /// recomputed each run — but the digest the node stage journals.
    [[nodiscard]] std::string networkKeyFor(const TgNode& node,
                                            const hls::ProcessNetwork& network) const;
    [[nodiscard]] std::string flowFingerprint(const std::string& projectName,
                                              const TaskGraph& graph) const;
    /// The supervised HLS attempt body: validate, consult cache/store,
    /// synthesize on miss. Never writes shared state.
    [[nodiscard]] HlsAttemptOut hlsAttempt(const TgNode& node);
    /// Kernel-granular attempt body shared by single-kernel nodes and the
    /// per-process stages of a network node. `label` names the work in
    /// logs and fault hooks ("node" or "node/process"); `stageName` is
    /// the journal stage consulted for resume attribution; `nodeName`
    /// lets node-scoped fault injections hit every process of the node.
    [[nodiscard]] HlsAttemptOut hlsKernelAttempt(const hls::Kernel& kernel,
                                                 const hls::Directives& directives,
                                                 const std::string& label,
                                                 const std::string& stageName,
                                                 const std::string& nodeName);
    /// The HLS commit half: persists an engine result to the cache and
    /// the store (winning attempt only).
    void hlsPersist(const HlsAttemptOut& out);
    [[nodiscard]] Integration integrate(const std::string& projectName,
                                        const TaskGraph& graph, const FlowResult& result,
                                        const std::set<std::string>& degraded) const;
    void writeArtifacts(const FlowResult& result) const;

    /// True if an injected transient failure should fire for `kernel`
    /// (decrements the per-kernel budget).
    [[nodiscard]] bool consumeTransientFailure(const std::string& kernel);

    /// Blocks for `toolSeconds` × options_.toolLatencyMsPerToolSecond
    /// milliseconds — the simulated external-tool wait. No-op at 0.
    void simulateToolWait(double toolSeconds) const;

    FlowOptions options_;
    const hls::KernelLibrary& kernels_;
    std::shared_ptr<HlsCache> cache_;
    hls::HlsEngine engine_;
    std::shared_ptr<ArtifactStore> store_;

    /// Flow-level fault delivery (crash/hang/corrupt), consumed by the
    /// stage-graph executor and stage postCommit hooks.
    StageFaultHooks faultHooks_;
    std::mutex faultMutex_;
    std::map<std::string, unsigned> transientRemaining_;

    // Per-run journal state (valid only inside run()).
    std::set<std::string> committedAtOpen_;
    std::map<std::string, std::string> digestsAtOpen_;
};

} // namespace socgen::core
