#include "socgen/core/synth_gate.hpp"

namespace socgen::core {

SynthGate::Claim SynthGate::claim(const std::string& key) {
    std::unique_lock<std::mutex> lock(mutex_);
    Claim out;
    if (leaders_.count(key) > 0) {
        ++waits_;
        out.waited = true;
        cv_.wait(lock, [this, &key] { return leaders_.count(key) == 0; });
    }
    leaders_.insert(key);
    // The token's payload is irrelevant (only the deleter matters); it
    // aliases `this` so the pointer is non-null and trivially valid for
    // the gate's lifetime, which callers are required to outlive anyway.
    out.token = std::shared_ptr<void>(static_cast<void*>(this),
                                      [this, key](void*) { release(key); });
    return out;
}

void SynthGate::release(const std::string& key) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        leaders_.erase(key);
    }
    cv_.notify_all();
}

std::size_t SynthGate::waits() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return waits_;
}

} // namespace socgen::core
