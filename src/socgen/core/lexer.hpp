#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace socgen::core {

/// Tokens of the textual DSL (the concrete syntax of paper Listing 1).
enum class TokenKind {
    Identifier,  ///< object, extends, App, tg, nodes, node, i, is, ...
    String,      ///< "MUL"
    SocQuote,    ///< 'soc
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semicolon,
    EndOfFile,
};

struct Token {
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;   ///< identifier name or string contents
    int line = 1;
    int column = 1;
};

/// Tokenises DSL source. `//` and Scala-style `/* */` comments are
/// skipped. Throws DslError with line/column on bad input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

[[nodiscard]] std::string_view tokenKindName(TokenKind kind);

} // namespace socgen::core
