#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace socgen::core {

/// One journal record. `event` is "header", "begin", "commit", or
/// "note"; `stage` names the flow stage ("scala", "hls:GAUSS",
/// "integrate", "synth", "software", "artifacts"); `digest` carries the
/// stage's output digest on commit (and the flow fingerprint on the
/// header record). Records are deliberately wall-clock-free so two runs
/// of the same flow produce byte-identical journals regardless of
/// machine speed or `jobs` setting.
struct JournalRecord {
    std::uint64_t seq = 0;
    std::string event;
    std::string stage;
    std::string digest;
    std::string note;

    /// Stable single-line JSON form (the on-disk format).
    [[nodiscard]] std::string renderJson() const;

    /// Parses one JSONL line; returns nullopt on malformed input (the
    /// caller treats that as a truncated tail and recovers).
    [[nodiscard]] static std::optional<JournalRecord> parseJson(std::string_view line);
};

/// Append-only stage journal for one flow run directory — the flow's
/// write-ahead log. Every stage appends a `begin` record before doing
/// work and a `commit` record (with an output digest) after the work's
/// artifacts are durably stored, so after a crash the next run can see
/// exactly which stages completed and verify its recomputed outputs
/// against the committed digests.
///
/// Crash tolerance on open: a torn final line (the writer died mid-
/// append) is dropped and the file is compacted to the valid prefix.
class FlowJournal {
public:
    /// Opens `path`, loading any valid records already present.
    static FlowJournal open(std::string path);

    /// True if the journal's header record matches `flowFingerprint`
    /// (false when empty or when the flow inputs changed).
    [[nodiscard]] bool matchesHeader(const std::string& flowFingerprint) const;

    /// Truncates the journal and writes a fresh header. Called when the
    /// flow fingerprint does not match — committed stages of a different
    /// flow configuration must not be trusted.
    void reset(const std::string& flowFingerprint, const std::string& note);

    void begin(const std::string& stage);
    void commit(const std::string& stage, const std::string& digest,
                const std::string& note = "");
    void noteEvent(const std::string& stage, const std::string& note);

    /// True if `stage` has a commit record.
    [[nodiscard]] bool isCommitted(const std::string& stage) const;

    /// Digest of the last commit record for `stage`, or nullopt.
    [[nodiscard]] std::optional<std::string> committedDigest(const std::string& stage) const;

    /// Stages with a commit record, in first-commit order.
    [[nodiscard]] std::vector<std::string> committedStages() const;

    [[nodiscard]] const std::vector<JournalRecord>& records() const { return records_; }
    [[nodiscard]] const std::string& path() const { return path_; }

    /// The full journal as text — byte-comparable across runs.
    [[nodiscard]] std::string renderText() const;

private:
    explicit FlowJournal(std::string path) : path_(std::move(path)) {}

    void append(JournalRecord record);
    void rewrite();

    std::string path_;
    std::vector<JournalRecord> records_;
    std::map<std::string, std::string> committed_;  ///< stage -> last digest
    std::vector<std::string> commitOrder_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace socgen::core
