// Design-space exploration over the Otsu pipeline — the integration the
// paper leaves as future work (Section II-C). Exhaustively evaluates all
// 16 HW/SW partitions of the four pipeline stages: PL resources from the
// synthesis model and end-to-end cycles from system simulation, then
// reports the Pareto front.

#include "socgen/apps/otsu_project.hpp"
#include "socgen/dse/explorer.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Warn);
    constexpr unsigned kWidth = 64;
    constexpr unsigned kHeight = 64;
    constexpr std::int64_t kPixels = static_cast<std::int64_t>(kWidth) * kHeight;

    const apps::RgbImage scene = apps::makeSyntheticScene(kWidth, kHeight);
    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    const core::Htg htg = apps::makeOtsuHtg();
    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    auto cache = std::make_shared<core::HlsCache>();

    const auto evaluate = [&](unsigned mask) {
        dse::DsePoint point;
        point.partition = apps::otsuMaskPartition(mask);
        std::string label = "HW{";
        for (std::size_t i = 0; i < apps::kOtsuStages.size(); ++i) {
            if ((mask & (1u << i)) != 0) {
                if (label.size() > 3) {
                    label += ",";
                }
                label += apps::kOtsuStages[i];
            }
        }
        point.label = label + "}";

        core::FlowOptions options = apps::otsuFlowOptions();
        // Per-link DMA keeps every partition feasible with small FIFOs
        // (see the DMA-sharing ablation bench for the comparison).
        options.dmaPolicy = soc::DmaPolicy::DmaPerLink;
        core::Flow flow(options, kernels, cache);
        const core::TaskGraph graph = core::lowerToTaskGraph(htg, point.partition);
        const core::FlowResult result = flow.run(format("dse_%u", mask), graph);
        point.resources = result.synthesis.total;

        apps::OtsuSystemRunner runner(result, point.partition);
        const auto run = runner.run(scene);
        if (!(run.output == reference)) {
            throw Error("output mismatch vs software reference");
        }
        point.cycles = run.cycles;
        return point;
    };

    const auto points =
        dse::exploreExhaustive(static_cast<unsigned>(apps::kOtsuStages.size()), evaluate);
    std::printf("%s\n", dse::renderTable(points).c_str());

    std::printf("Pareto front (resources vs cycles):\n");
    for (const auto& p : dse::paretoFront(points)) {
        std::printf("  mask %2u %-34s LUT=%lld cycles=%llu\n", p.mask, p.label.c_str(),
                    static_cast<long long>(p.resources.lut),
                    static_cast<unsigned long long>(p.cycles));
    }
    return 0;
}
