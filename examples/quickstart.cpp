// Quickstart: the paper's running example (Figure 4).
//
// Builds an SoC with four accelerators using the embedded DSL — ADD and
// MUL on AXI-Lite, a GAUSS -> EDGE streaming pipeline on AXI-Stream —
// then runs the generated system on the simulated Zedboard: the ARM PS
// programs ADD/MUL through their control registers and pushes a signal
// through the filter pipeline via the DMA engine.

#include "socgen/apps/kernels.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>
#include <vector>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Warn);
    constexpr std::int64_t kSamples = 1024;

    // The "synthesizable C/C++ per node" input of the flow.
    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    kernels.add(apps::makeMulKernel());
    kernels.add(apps::makeGaussKernel(kSamples));
    kernels.add(apps::makeEdgeKernel(kSamples));

    core::FlowOptions options;
    options.outputDir = "out_quickstart";

    // The DSL description (paper Listings 2 and 3).
    core::SocProject project("quickstart", kernels, options);
    project.tg_nodes();
    project.tg_node("MUL").i("A").i("B").i("return").end();
    project.tg_node("ADD").i("A").i("B").i("return").end();
    project.tg_node("GAUSS").is("in").is("out").end();
    project.tg_node("EDGE").is("in").is("out").end();
    project.tg_end_nodes();
    project.tg_edges();
    project.tg_link(core::SocProject::soc())
        .to(core::SocProject::port("GAUSS", "in"))
        .end();
    project.tg_link(core::SocProject::port("GAUSS", "out"))
        .to(core::SocProject::port("EDGE", "in"))
        .end();
    project.tg_link(core::SocProject::port("EDGE", "out"))
        .to(core::SocProject::soc())
        .end();
    project.tg_connect("MUL");
    project.tg_connect("ADD");
    project.tg_end_edges();

    const core::FlowResult& result = project.result();
    std::printf("=== generated DSL ===\n%s\n", result.dslText.c_str());
    std::printf("=== synthesis ===\n%s\n", result.synthesis.utilisationReport().c_str());

    // ---- run the generated system on the simulated board -------------------
    soc::SystemSimulator sim(result.design, result.programs);

    // ADD / MUL via their generated AXI-Lite APIs.
    sim.psSetCoreArg("ADD", "A", 20);
    sim.psSetCoreArg("ADD", "B", 22);
    sim.psStartCore("ADD");
    sim.psWaitCore("ADD");
    sim.psSetCoreArg("MUL", "A", 6);
    sim.psSetCoreArg("MUL", "B", 7);
    sim.psStartCore("MUL");
    sim.psWaitCore("MUL");

    // Stream a test signal through GAUSS -> EDGE via the DMA core.
    std::vector<std::uint32_t> signal(kSamples);
    for (std::size_t i = 0; i < signal.size(); ++i) {
        signal[i] = (i / 128) % 2 == 0 ? 40 : 200;  // square wave
    }
    sim.ps().task("stage input", 2 * kSamples, [signal](soc::Memory& mem) {
        mem.writeBlock(0x1000, signal);
    });
    // Find the DMA channels the flow assigned to the two 'soc links.
    const auto& streams = result.design.streams();
    for (const auto& s : streams) {
        if (s.to.isSoc()) {
            sim.psArmReadDma(s.dmaInstance, s.dmaRoute, 0x8000, kSamples);
        }
    }
    for (const auto& s : streams) {
        if (s.from.isSoc()) {
            sim.psWriteDma(s.dmaInstance, s.dmaRoute, 0x1000, kSamples);
        }
    }
    for (const auto& s : streams) {
        if (s.to.isSoc()) {
            sim.psWaitReadDma(s.dmaInstance);
        }
    }

    const std::uint64_t cycles = sim.run();
    std::printf("=== execution ===\n%s\n", sim.report().c_str());

    std::printf("ADD(20, 22) = %llu\n",
                static_cast<unsigned long long>(sim.core("ADD").result("return")));
    std::printf("MUL(6, 7)   = %llu\n",
                static_cast<unsigned long long>(sim.core("MUL").result("return")));

    // Check the pipeline against the software references.
    std::vector<std::uint8_t> input8(signal.begin(), signal.end());
    const auto expected = apps::edgeRef(apps::gaussRef(input8));
    const auto actual = sim.memory().readBlock(0x8000, kSamples);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        if (expected[i] != actual[i]) {
            ++mismatches;
        }
    }
    std::printf("GAUSS->EDGE pipeline: %zu samples, %zu mismatches vs software "
                "reference, %llu cycles total\n",
                expected.size(), mismatches, static_cast<unsigned long long>(cycles));
    std::printf("artifacts written to out_quickstart/quickstart/\n");
    return mismatches == 0 ? 0 : 1;
}
