// Runs the flow from a textual DSL file (the paper's input format: "a
// file compliant with the DSL described in Section III and a
// synthesizable C/C++ file for each node"), then prints the Section VI-C
// size comparison between the DSL description and the generated Tcl.

#include "socgen/apps/kernels.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

int main(int argc, char** argv) {
    Logger::global().setLevel(LogLevel::Warn);
    const std::string path = argc > 1 ? argv[1] : "dsl/quickstart.tg";
    constexpr std::int64_t kSamples = 1024;

    hls::KernelLibrary kernels;
    kernels.add(apps::makeAddKernel());
    kernels.add(apps::makeMulKernel());
    kernels.add(apps::makeGaussKernel(kSamples));
    kernels.add(apps::makeEdgeKernel(kSamples));

    std::printf("parsing %s\n", path.c_str());
    const core::FlowResult result = core::runDslFile(path, kernels);

    const core::DslTclComparison cmp = core::compareDslToTcl(result);
    std::printf("\n=== Section VI-C comparison ===\n");
    std::printf("DSL: %zu lines, %zu non-space chars\n", cmp.dslLines, cmp.dslChars);
    std::printf("Tcl: %zu lines, %zu non-space chars\n", cmp.tclLines, cmp.tclChars);
    std::printf("ratios: %.1fx lines, %.1fx chars (paper: ~4x lines, 4-10x chars)\n",
                cmp.lineRatio(), cmp.charRatio());

    std::printf("\n=== generated Tcl (head) ===\n");
    std::size_t printed = 0;
    for (char c : result.tclText) {
        std::putchar(c);
        if (c == '\n' && ++printed == 12) {
            break;
        }
    }
    std::printf("... (%zu lines total)\n", cmp.tclLines);
    std::printf("\n%s\n", result.synthesis.utilisationReport().c_str());
    return 0;
}
