// The paper's case study (Section VI): Otsu binary image segmentation.
//
// Generates all four architectures of Table I from the partitioned HTG,
// runs each on the simulated board against a synthetic bimodal scene
// (Figure 7), verifies the hardware output against the software
// reference, and writes the before/after images plus the Figure 8/10
// graphs as dot files.

#include "socgen/apps/otsu_project.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Warn);
    constexpr unsigned kWidth = 128;
    constexpr unsigned kHeight = 128;
    constexpr std::int64_t kPixels = static_cast<std::int64_t>(kWidth) * kHeight;

    const apps::RgbImage scene = apps::makeSyntheticScene(kWidth, kHeight);
    const apps::GrayImage reference = apps::otsuFilterRef(scene);
    apps::writePpm("otsu_input.ppm", scene);
    apps::writePgm("otsu_reference.pgm", reference);

    const core::Htg htg = apps::makeOtsuHtg();
    writeTextFile("otsu_htg.dot", htg.toDot());

    const hls::KernelLibrary kernels = apps::makeOtsuKernelLibrary(kPixels);
    auto cache = std::make_shared<core::HlsCache>();  // HLS runs once per core

    std::printf("%-6s %8s %8s %7s %5s %12s %9s %s\n", "arch", "LUT", "FF", "RAMB18",
                "DSP", "cycles", "ms@100MHz", "output");
    for (int arch = 1; arch <= 4; ++arch) {
        const core::HtgPartition partition = apps::otsuArchPartition(arch);
        const core::TaskGraph graph = core::lowerToTaskGraph(htg, partition);

        core::FlowOptions options = apps::otsuFlowOptions();
        options.outputDir = "out_otsu";
        core::Flow flow(options, kernels, cache);
        const core::FlowResult result = flow.run(format("Arch%d", arch), graph);
        writeTextFile(format("otsu_arch%d.dot", arch), result.design.toDot());

        apps::OtsuSystemRunner runner(result, partition);
        const auto run = runner.run(scene);
        const bool match = run.output == reference;
        if (arch == 4) {
            apps::writePgm("otsu_filtered.pgm", run.output);
        }
        const auto& r = result.synthesis.total;
        std::printf("Arch%-2d %8lld %8lld %7lld %5lld %12llu %9.3f %s\n", arch,
                    static_cast<long long>(r.lut), static_cast<long long>(r.ff),
                    static_cast<long long>(r.bram18), static_cast<long long>(r.dsp),
                    static_cast<unsigned long long>(run.cycles),
                    static_cast<double>(run.cycles) / 100000.0,
                    match ? "== software reference" : "MISMATCH");
        if (!match) {
            return 1;
        }
    }
    std::printf("\nwrote otsu_input.ppm, otsu_reference.pgm, otsu_filtered.pgm, "
                "otsu_htg.dot, otsu_arch{1..4}.dot and out_otsu/Arch*/\n");
    return 0;
}
