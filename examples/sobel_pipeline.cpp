// A domain-specific example beyond the paper's case study: a 2D Sobel
// edge detector with BRAM line buffers — the classic HLS streaming-
// filter structure. One DSL node, one stream in, one stream out; the
// generated system is run on the simulated board and checked against
// the software reference.

#include "socgen/apps/kernels.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>

using namespace socgen;

int main() {
    Logger::global().setLevel(LogLevel::Warn);
    constexpr unsigned kW = 96;
    constexpr unsigned kH = 96;
    constexpr std::uint32_t kPixels = kW * kH;

    hls::KernelLibrary kernels;
    kernels.add(apps::makeSobelKernel(kW, kH));

    core::FlowOptions options;
    options.outputDir = "out_sobel";
    core::SocProject project("sobel", kernels, options);
    project.tg_nodes();
    project.tg_node("SOBEL").is("in").is("out").end();
    project.tg_end_nodes();
    project.tg_edges();
    project.tg_link(core::SocProject::soc()).to(core::SocProject::port("SOBEL", "in")).end();
    project.tg_link(core::SocProject::port("SOBEL", "out"))
        .to(core::SocProject::soc())
        .end();
    project.tg_end_edges();
    const core::FlowResult& result = project.result();
    std::printf("%s\n", result.hlsResults.at("SOBEL").reportText.c_str());
    std::printf("%s\n", result.synthesis.utilisationReport().c_str());

    // Stream a synthetic scene through the generated system.
    const apps::GrayImage scene = apps::makeSyntheticGrayScene(kW, kH);
    const apps::GrayImage expected = apps::sobelRef(scene);
    soc::SystemSimulator sim(result.design, result.programs);
    std::vector<std::uint32_t> pixels(scene.pixels().begin(), scene.pixels().end());
    sim.ps().task("stage", 2 * kPixels, [pixels](soc::Memory& mem) {
        mem.writeBlock(0x1000, pixels);
    });
    sim.psArmReadDma("axi_dma_0", 0, 0x40000, kPixels);
    sim.psWriteDma("axi_dma_0", 0, 0x1000, kPixels);
    sim.psWaitReadDma("axi_dma_0");
    const std::uint64_t cycles = sim.run();

    apps::GrayImage actual(kW, kH);
    const auto words = sim.memory().readBlock(0x40000, kPixels);
    for (std::uint32_t i = 0; i < kPixels; ++i) {
        actual.pixels()[i] = static_cast<std::uint8_t>(words[i]);
    }
    const bool match = actual == expected;
    std::printf("SOBEL %ux%u: %llu cycles (%.2f cycles/pixel), output %s software "
                "reference\n",
                kW, kH, static_cast<unsigned long long>(cycles),
                static_cast<double>(cycles) / kPixels,
                match ? "MATCHES" : "DIFFERS FROM");
    apps::writePgm("sobel_input.pgm", scene);
    apps::writePgm("sobel_edges.pgm", actual);
    std::printf("wrote sobel_input.pgm, sobel_edges.pgm, out_sobel/sobel/\n");
    return match ? 0 : 1;
}
