// socgen_cli — command-line front end for the flow, the shape a
// downstream user drives the tool with:
//
//   socgen_cli --dsl design.tg [--out DIR] [--dma per-link] [--jobs N]
//              [--kernels quickstart|otsu|sobel] [--size N] [--report]
//
// Parses the textual DSL, runs the full flow against one of the built-in
// kernel libraries (standing in for the per-node C/C++ sources), writes
// every artifact, and prints the report.

#include "socgen/apps/kernels.hpp"
#include "socgen/apps/otsu_project.hpp"
#include "socgen/core/report.hpp"
#include "socgen/socgen.hpp"

#include <cstdio>
#include <cstring>

using namespace socgen;

namespace {

void usage(const char* argv0) {
    std::printf(
        "usage: %s --dsl FILE [options]\n"
        "  --dsl FILE          textual DSL description (paper Listing 1 grammar)\n"
        "  --kernels NAME      builtin kernel library: quickstart | otsu | sobel\n"
        "                      (default: quickstart)\n"
        "  --size N            stream length / pixel count for the kernels (default "
        "1024)\n"
        "  --out DIR           write artifacts under DIR (default: socgen_out)\n"
        "  --dma POLICY        shared | per-link (default: shared)\n"
        "  --jobs N            parallel HLS jobs (default 1)\n"
        "  --no-synth          stop after integration\n"
        "  --report            print the Markdown flow report to stdout\n"
        "  --verbose           info-level logging of every flow step\n",
        argv0);
}

hls::KernelLibrary builtinKernels(const std::string& name, std::int64_t size) {
    hls::KernelLibrary lib;
    if (name == "quickstart") {
        lib.add(apps::makeAddKernel());
        lib.add(apps::makeMulKernel());
        lib.add(apps::makeGaussKernel(size));
        lib.add(apps::makeEdgeKernel(size));
    } else if (name == "otsu") {
        lib.add(apps::makeGrayScaleKernel(size));
        lib.add(apps::makeHistogramKernel(size));
        lib.add(apps::makeOtsuKernel(size));
        lib.add(apps::makeBinarizationKernel(size));
    } else if (name == "sobel") {
        // Square image of `size` pixels.
        std::int64_t side = 1;
        while (side * side < size) {
            ++side;
        }
        lib.add(apps::makeSobelKernel(side, side));
    } else {
        throw Error("unknown kernel library: " + name +
                    " (expected quickstart | otsu | sobel)");
    }
    return lib;
}

} // namespace

int main(int argc, char** argv) {
    std::string dslPath;
    std::string kernelsName = "quickstart";
    std::string outDir = "socgen_out";
    std::int64_t size = 1024;
    core::FlowOptions options;
    bool printReport = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--dsl") {
            dslPath = next();
        } else if (arg == "--kernels") {
            kernelsName = next();
        } else if (arg == "--size") {
            size = std::atoll(next());
        } else if (arg == "--out") {
            outDir = next();
        } else if (arg == "--dma") {
            const std::string policy = next();
            options.dmaPolicy = policy == "per-link" ? soc::DmaPolicy::DmaPerLink
                                                     : soc::DmaPolicy::SharedDma;
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--no-synth") {
            options.runSynthesis = false;
        } else if (arg == "--report") {
            printReport = true;
        } else if (arg == "--verbose") {
            Logger::global().setLevel(LogLevel::Info);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (dslPath.empty()) {
        usage(argv[0]);
        return 2;
    }

    try {
        options.outputDir = outDir;
        if (kernelsName == "otsu") {
            options.kernelDirectives = apps::otsuKernelDirectives();
        }
        const hls::KernelLibrary kernels = builtinKernels(kernelsName, size);
        const core::FlowResult result = core::runDslFile(dslPath, kernels, options);

        const std::string report = core::renderFlowReport(result);
        writeTextFile(outDir + "/" + result.projectName + "/REPORT.md", report);
        if (printReport) {
            std::printf("%s", report.c_str());
        } else {
            std::printf("project %s: %zu cores, %s, %.1f simulated tool-seconds\n",
                        result.projectName.c_str(), result.hlsResults.size(),
                        options.runSynthesis ? result.synthesis.total.str().c_str()
                                             : "synthesis skipped",
                        result.timeline.totalToolSeconds());
            std::printf("artifacts written to %s/%s/\n", outDir.c_str(),
                        result.projectName.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "socgen: %s\n", e.what());
        return 1;
    }
}
